"""The always-on runtime safety monitor.

:class:`InvariantMonitor` is a *forwarding trace sink*: the chaos
harness interposes it between the tracer and the real sink, so every
structured record a protocol or site actor emits flows through the
monitor on its way to storage.  The monitor maintains a shadow model of
what the records imply — last committed ``(o, v)`` per replica, the
commit history per operation number, the last granted quorum, the
current up-set — and fails fast with a structured
:class:`InvariantViolation` the moment a record contradicts the
protocols' safety story:

* **non-monotone-state** — a replica's committed ``(o, v)`` moved
  backwards;
* **divergent-commit** — two different ``(v, P)`` bodies committed
  under one operation number (mutual exclusion was broken: two quorums
  ran the same operation);
* **quorum-escape** — a commit's partition-set members were not all
  inside the quorum that granted it;
* **carried-partitioned-vote** — a topological protocol claimed the
  vote of a site that is partitioned (up, in a *different* block than
  the claimants), not down.  A claimed site that is up in the *same*
  block is fine: its reply was merely lost, and being on the quorum's
  side of every partition it can never arm a rival quorum;
* **quorum-exclusion** — the active probe (:func:`check_exclusion`)
  found two disjoint partition blocks whose access would both be
  granted *right now*.

A violation carries the chaos seed, the step index, and the serialised
schedule, so ``repro chaos replay --seed N`` reproduces the offending
run deterministically.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Optional

from repro.errors import ReproError
from repro.net.views import NetworkView
from repro.obs.tracer import NullSink, TraceRecord
from repro.replica.state import ReplicaSet

__all__ = ["InvariantMonitor", "InvariantViolation", "check_exclusion"]


class InvariantViolation(ReproError):
    """A protocol safety invariant observably failed.

    Attributes:
        invariant: Short identifier (``"quorum-exclusion"`` etc.).
        detail: Human-readable account of the offending evidence.
        policy: Protocol under test, when known.
        seed: Chaos seed of the run, when known.
        step: Schedule step index at the time of the violation.
        record: The offending trace record's dictionary form, if one
            record is to blame.
        schedule: The serialised chaos schedule (replay material).
    """

    def __init__(
        self,
        invariant: str,
        detail: str,
        policy: Optional[str] = None,
        seed: Optional[int] = None,
        step: Optional[int] = None,
        record: Optional[dict] = None,
        schedule: Optional[dict] = None,
    ):
        self.invariant = invariant
        self.detail = detail
        self.policy = policy
        self.seed = seed
        self.step = step
        self.record = record
        self.schedule = schedule
        context = []
        if policy is not None:
            context.append(f"policy={policy}")
        if seed is not None:
            context.append(f"seed={seed}")
        if step is not None:
            context.append(f"step={step}")
        suffix = f" [{' '.join(context)}]" if context else ""
        super().__init__(f"invariant {invariant} violated: {detail}{suffix}")

    def to_dict(self) -> dict:
        """A JSON-serialisable violation report."""
        return {
            "invariant": self.invariant,
            "detail": self.detail,
            "policy": self.policy,
            "seed": self.seed,
            "step": self.step,
            "record": self.record,
            "schedule": self.schedule,
        }


def _as_set(value: Any) -> frozenset[int]:
    if value is None:
        return frozenset()
    return frozenset(int(v) for v in value)


class InvariantMonitor:
    """Forwarding sink that checks every record against the invariants.

    Args:
        inner: The sink records are forwarded to (default: discard).
        policy: Protocol name, stamped onto violations.  ``"MCV"``
            disables the quorum-escape containment check — the static
            protocol's partition set is a fixed denominator, not the
            granted quorum.
        seed: Chaos seed, stamped onto violations.
        bus: A :class:`~repro.obs.live.bus.TelemetryBus` receiving an
            ``invariant.violation`` event the instant a check trips —
            before the exception unwinds — so live watchers see the
            callout in real time.  ``None`` (the default) costs
            nothing.
    """

    def __init__(self, inner: Any = None, policy: Optional[str] = None,
                 seed: Optional[int] = None, bus: Optional[Any] = None):
        self._inner = inner if inner is not None else NullSink()
        self._policy = policy
        self._seed = seed
        self._bus = bus
        self._check_containment = policy != "MCV"
        self._last_state: dict[int, tuple[int, int]] = {}
        self._commit_bodies: dict[int, tuple[int, frozenset[int]]] = {}
        self._last_grant: Optional[Mapping[str, Any]] = None
        self._up: Optional[frozenset[int]] = None
        self._blocks: tuple[frozenset[int], ...] = ()
        self.step_index: Optional[int] = None
        self.records_seen = 0
        self.commits_seen = 0

    # ------------------------------------------------------------------
    # harness feed
    # ------------------------------------------------------------------
    def note_step(self, index: int) -> None:
        """Advance the schedule-step cursor (violation context)."""
        self.step_index = index

    def note_network(self, up: Iterable[int],
                     blocks: Iterable[frozenset[int]] = ()) -> None:
        """Update the up-set and partition blocks (the carried-vote
        check needs liveness and connectivity, which no trace record
        carries)."""
        self._up = frozenset(up)
        self._blocks = tuple(frozenset(block) for block in blocks)

    # ------------------------------------------------------------------
    # sink protocol
    # ------------------------------------------------------------------
    def emit(self, record: TraceRecord) -> None:
        """Forward *record*, then check it.

        Forwarding happens first so the offending record is already in
        the trace when the violation aborts the run.
        """
        self._inner.emit(record)
        self.records_seen += 1
        kind = record.kind
        if kind == "quorum.granted":
            self._last_grant = dict(record.fields)
        elif kind == "site.commit":
            self._check_site_commit(record)
        elif kind == "commit.applied":
            self._check_commit_body(
                record,
                int(record.fields["operation"]),
                int(record.fields["version"]),
                _as_set(record.fields["members"]),
            )
        elif kind == "votes.carried":
            self._check_carried(record)

    def close(self) -> None:
        """Close the wrapped sink."""
        self._inner.close()

    # ------------------------------------------------------------------
    # checks
    # ------------------------------------------------------------------
    def violation(self, invariant: str, detail: str,
                  record: Optional[TraceRecord] = None) -> None:
        """Record and raise an :class:`InvariantViolation`."""
        exc = InvariantViolation(
            invariant,
            detail,
            policy=self._policy,
            seed=self._seed,
            step=self.step_index,
            record=record.to_dict() if record is not None else None,
        )
        self._inner.emit(TraceRecord(
            seq=-1,
            kind="invariant.violation",
            time=None if self.step_index is None else float(self.step_index),
            fields={
                "invariant": invariant,
                "detail": detail,
                "policy": self._policy,
                "seed": self._seed,
                "step": self.step_index,
            },
        ))
        if self._bus is not None:
            self._bus.publish(
                "invariant.violation",
                invariant=invariant,
                detail=detail,
                policy=self._policy,
                seed=self._seed,
                step=self.step_index,
            )
        raise exc

    def _check_site_commit(self, record: TraceRecord) -> None:
        fields = record.fields
        site = int(fields["site"])
        operation = int(fields["operation"])
        version = int(fields["version"])
        members = _as_set(fields["partition_set"])
        previous = self._last_state.get(site)
        if previous is not None:
            prev_operation, prev_version = previous
            if operation < prev_operation or version < prev_version:
                self.violation(
                    "non-monotone-state",
                    f"site {site} moved from (o={prev_operation}, "
                    f"v={prev_version}) back to (o={operation}, "
                    f"v={version})",
                    record,
                )
        self._last_state[site] = (operation, version)
        self._check_commit_body(record, operation, version, members)

    def _check_commit_body(self, record: TraceRecord, operation: int,
                           version: int, members: frozenset[int]) -> None:
        self.commits_seen += 1
        body = (version, members)
        existing = self._commit_bodies.get(operation)
        if existing is None:
            self._commit_bodies[operation] = body
        elif existing != body:
            self.violation(
                "divergent-commit",
                f"operation {operation} committed twice with different "
                f"bodies: (v={existing[0]}, P={sorted(existing[1])}) vs "
                f"(v={version}, P={sorted(members)}) — two quorums ran "
                "the same operation",
                record,
            )
        if self._check_containment and self._last_grant is not None:
            quorum = _as_set(self._last_grant.get("reachable"))
            escaped = members - quorum
            if escaped:
                self.violation(
                    "quorum-escape",
                    f"commit of operation {operation} installed partition"
                    f"-set members {sorted(escaped)} outside the granting "
                    f"quorum {sorted(quorum)}",
                    record,
                )

    def _check_carried(self, record: TraceRecord) -> None:
        fields = record.fields
        if not fields.get("granted"):
            return
        if self._up is None:
            return
        carried = _as_set(fields.get("carried"))
        claimants = _as_set(fields.get("claimants"))
        partitioned = sorted(
            site
            for site in carried & self._up
            if not any(
                site in block and block & claimants
                for block in self._blocks
            )
        )
        if partitioned:
            self.violation(
                "carried-partitioned-vote",
                f"grant counted the votes of {partitioned}, which are up "
                "but partitioned away from the claimants — only votes of "
                "down or same-block sites may be carried",
                record,
            )


def check_exclusion(
    rules_factory: Callable[[ReplicaSet], Any],
    states: Mapping[int, tuple[int, int, frozenset[int]]],
    view: NetworkView,
    copy_sites: frozenset[int],
    monitor: Optional[InvariantMonitor] = None,
) -> tuple[frozenset[int], ...]:
    """The active mutual-exclusion probe.

    Rebuilds a :class:`ReplicaSet` from the actual per-site ``(o, v, P)``
    triples, evaluates the protocol's majority test in *every* partition
    block of *view*, and raises (via *monitor* when given) if two or
    more disjoint blocks would be granted simultaneously.  Returns the
    granting blocks otherwise (at most one for a safe protocol).
    """
    snapshot = ReplicaSet(states.keys())
    for sid, (operation, version, members) in states.items():
        snapshot.state(sid).commit(operation, version, members)
    rules = rules_factory(snapshot)
    granting = tuple(
        block
        for block in view.blocks
        if block & copy_sites and rules.evaluate_block(view, block).granted
    )
    if len(granting) >= 2:
        detail = (
            "disjoint partition blocks "
            + " and ".join(str(sorted(block)) for block in granting)
            + " would both be granted an access right now"
        )
        if monitor is not None:
            monitor.violation("quorum-exclusion", detail)
        raise InvariantViolation("quorum-exclusion", detail)
    return granting
