"""Per-copy protocol state: operation number, version number, partition set."""

from __future__ import annotations

from typing import AbstractSet, Iterable, Iterator, Mapping

from repro.errors import ConfigurationError, ProtocolError

__all__ = ["ReplicaState", "ReplicaSet"]


class ReplicaState:
    """The consistency-control state of one physical copy.

    Invariants (enforced on every :meth:`commit`):

    * ``operation`` and ``version`` are positive and never decrease;
    * ``version <= operation`` — a write is also an operation;
    * the partition set is never empty and always contains at least the
      sites that committed (the caller supplies it; emptiness is rejected
      here, membership soundness is checked by the engine tests).
    """

    __slots__ = ("site_id", "_operation", "_version", "_partition_set")

    def __init__(
        self,
        site_id: int,
        operation: int = 1,
        version: int = 1,
        partition_set: AbstractSet[int] = frozenset(),
    ):
        if operation < 1 or version < 1:
            raise ConfigurationError(
                f"operation and version numbers start at 1, got o={operation} v={version}"
            )
        if version > operation:
            raise ConfigurationError(
                f"version ({version}) cannot exceed operation number ({operation})"
            )
        if not partition_set:
            raise ConfigurationError("initial partition set must be non-empty")
        self.site_id = site_id
        self._operation = operation
        self._version = version
        self._partition_set = frozenset(partition_set)

    # ------------------------------------------------------------------
    @property
    def operation(self) -> int:
        """Operation number ``o_i`` — counts all successful operations."""
        return self._operation

    @property
    def version(self) -> int:
        """Version number ``v_i`` — identifies the last successful write."""
        return self._version

    @property
    def partition_set(self) -> frozenset[int]:
        """``P_i`` — copies that took part in the last successful operation."""
        return self._partition_set

    # ------------------------------------------------------------------
    def commit(
        self,
        operation: int,
        version: int,
        partition_set: AbstractSet[int],
    ) -> None:
        """Apply a COMMIT: install the new ``(o, v, P)`` triple.

        Raises:
            ProtocolError: if the new numbers would violate monotonicity.
        """
        if operation < self._operation:
            raise ProtocolError(
                f"operation number would go backwards at site {self.site_id}: "
                f"{self._operation} -> {operation}"
            )
        if version < self._version:
            raise ProtocolError(
                f"version number would go backwards at site {self.site_id}: "
                f"{self._version} -> {version}"
            )
        if version > operation:
            raise ProtocolError(
                f"version ({version}) cannot exceed operation number ({operation})"
            )
        if not partition_set:
            raise ProtocolError("committed partition set must be non-empty")
        self._operation = operation
        self._version = version
        self._partition_set = frozenset(partition_set)

    def adopt(self, other: "ReplicaState") -> None:
        """Copy another replica's state triple (used during RECOVER)."""
        self.commit(other.operation, other.version, other.partition_set)

    def snapshot(self) -> tuple[int, int, frozenset[int]]:
        """The ``(o, v, P)`` triple as an immutable value."""
        return (self._operation, self._version, self._partition_set)

    def to_dict(self) -> dict:
        """A JSON-serialisable ``(o, v, P)`` document.

        The partition set is emitted sorted so identical states always
        serialise to identical bytes — the replicated service's
        recovery tests compare snapshots byte-for-byte.
        """
        return {
            "site": self.site_id,
            "operation": self._operation,
            "version": self._version,
            "partition_set": sorted(self._partition_set),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ReplicaState":
        """Rebuild a state from :meth:`to_dict` output.

        Raises:
            ConfigurationError: on missing fields or invariant-breaking
                values (checked by the constructor).
        """
        try:
            return cls(
                site_id=int(data["site"]),
                operation=int(data["operation"]),
                version=int(data["version"]),
                partition_set=frozenset(
                    int(s) for s in data["partition_set"]
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed replica-state document: {exc}"
            ) from exc

    def __repr__(self) -> str:
        members = ",".join(map(str, sorted(self._partition_set)))
        return (
            f"ReplicaState(site={self.site_id}, o={self._operation}, "
            f"v={self._version}, P={{{members}}})"
        )


class ReplicaSet:
    """All physical copies of one replicated file.

    Construction initialises every copy exactly as the paper's worked
    example does: ``o = v = 1`` and ``P`` equal to the full copy set.
    """

    def __init__(self, copy_sites: Iterable[int]):
        sites = sorted(set(copy_sites))
        if not sites:
            raise ConfigurationError("a replicated file needs >= 1 copy")
        initial = frozenset(sites)
        self._states = {
            sid: ReplicaState(sid, partition_set=initial) for sid in sites
        }

    @classmethod
    def from_states(
        cls,
        states: Mapping[int, tuple[int, int, AbstractSet[int]]],
        copy_sites: Iterable[int] = (),
    ) -> "ReplicaSet":
        """Build a set holding the given ``{site: (o, v, P)}`` triples.

        Sites in *copy_sites* missing from *states* keep the paper's
        initial state (``o = v = 1``, ``P`` = the full copy set).  The
        replicated service uses this to evaluate a quorum round over
        the states its coordinator actually collected: unreachable
        copies stay at the initial placeholder, which the algorithms
        never read (they only consult states inside the requesting
        block) but which keeps static denominators like MCV's "all
        copies" correct.
        """
        sites = sorted(set(states) | set(copy_sites))
        replica_set = cls(sites)
        for sid, (operation, version, partition_set) in states.items():
            replica_set._states[sid] = ReplicaState(
                sid, operation, version, frozenset(partition_set)
            )
        return replica_set

    # ------------------------------------------------------------------
    @property
    def copy_sites(self) -> frozenset[int]:
        """Ids of every site holding a physical copy."""
        return frozenset(self._states)

    def state(self, site_id: int) -> ReplicaState:
        """The state of the copy at *site_id*.

        Raises:
            ConfigurationError: if that site holds no copy.
        """
        try:
            return self._states[site_id]
        except KeyError:
            raise ConfigurationError(f"no copy at site {site_id}") from None

    def __contains__(self, site_id: int) -> bool:
        return site_id in self._states

    def __iter__(self) -> Iterator[ReplicaState]:
        return iter(self._states[s] for s in sorted(self._states))

    def __len__(self) -> int:
        return len(self._states)

    # ------------------------------------------------------------------
    # queries used by the voting algorithms
    # ------------------------------------------------------------------
    def reachable(self, block: AbstractSet[int]) -> frozenset[int]:
        """``R`` — copy sites inside the communicating *block*."""
        return self.copy_sites & frozenset(block)

    def max_operation(self, among: AbstractSet[int]) -> int:
        """Highest operation number among the given copy sites."""
        sites = self._require_copies(among)
        return max(self._states[s].operation for s in sites)

    def max_version(self, among: AbstractSet[int]) -> int:
        """Highest version number among the given copy sites."""
        sites = self._require_copies(among)
        return max(self._states[s].version for s in sites)

    def current_sites(self, among: AbstractSet[int]) -> frozenset[int]:
        """``Q`` — sites whose operation number equals the block maximum."""
        sites = self._require_copies(among)
        top = max(self._states[s].operation for s in sites)
        return frozenset(s for s in sites if self._states[s].operation == top)

    def newest_sites(self, among: AbstractSet[int]) -> frozenset[int]:
        """``S`` — sites whose version number equals the block maximum."""
        sites = self._require_copies(among)
        top = max(self._states[s].version for s in sites)
        return frozenset(s for s in sites if self._states[s].version == top)

    def as_mapping(self) -> Mapping[int, tuple[int, int, frozenset[int]]]:
        """Snapshot of every copy's ``(o, v, P)`` triple, keyed by site id."""
        return {sid: st.snapshot() for sid, st in self._states.items()}

    def _require_copies(self, among: AbstractSet[int]) -> frozenset[int]:
        sites = self.copy_sites & frozenset(among)
        if not sites:
            raise ProtocolError(f"no copies among sites {sorted(among)}")
        return sites
