"""Versioned data storage for physical copies.

The availability simulation only needs the consistency-control state, but
the message-level engine (:mod:`repro.engine`) reads and writes real
values, so consistency can be checked end to end: a granted read must
return the payload of the most recent granted write.  ``VersionedStore``
keeps one payload per copy, tagged with the version number that wrote it.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import ConfigurationError, StaleCopyError

__all__ = ["VersionedStore"]


class VersionedStore:
    """Holds the data payload of every physical copy of one file.

    Payloads are opaque Python values.  Version tags must track the
    replica states: :meth:`put` is called on commit of a write,
    :meth:`clone` during recovery's "copy the file from site m".
    """

    _UNSET = object()

    def __init__(self, copy_sites: Iterable[int], initial: Any = None):
        sites = sorted(set(copy_sites))
        if not sites:
            raise ConfigurationError("a store needs >= 1 copy site")
        self._payloads: dict[int, Any] = {sid: initial for sid in sites}
        self._versions: dict[int, int] = {sid: 1 for sid in sites}

    # ------------------------------------------------------------------
    @property
    def copy_sites(self) -> frozenset[int]:
        return frozenset(self._payloads)

    def version_at(self, site_id: int) -> int:
        """Version tag of the payload held at *site_id*."""
        self._require(site_id)
        return self._versions[site_id]

    def get(self, site_id: int) -> Any:
        """Payload held at *site_id* (no currency check — caller's duty)."""
        self._require(site_id)
        return self._payloads[site_id]

    def put(self, site_id: int, version: int, payload: Any) -> None:
        """Install *payload* at *site_id* as *version*.

        Raises:
            StaleCopyError: if *version* is older than what the copy holds;
                a commit may never roll a copy's data backwards.
        """
        self._require(site_id)
        if version < self._versions[site_id]:
            raise StaleCopyError(
                f"site {site_id} holds v{self._versions[site_id]}, "
                f"refusing to install older v{version}"
            )
        self._versions[site_id] = version
        self._payloads[site_id] = payload

    def clone(self, source: int, target: int) -> None:
        """Copy *source*'s payload and version onto *target* (RECOVER).

        Raises:
            StaleCopyError: if the source is older than the target — a
                recovery must copy from an up-to-date site.
        """
        self._require(source)
        self._require(target)
        if self._versions[source] < self._versions[target]:
            raise StaleCopyError(
                f"recovery source site {source} (v{self._versions[source]}) is "
                f"older than target site {target} (v{self._versions[target]})"
            )
        self._versions[target] = self._versions[source]
        self._payloads[target] = self._payloads[source]

    def _require(self, site_id: int) -> None:
        if site_id not in self._payloads:
            raise ConfigurationError(f"no copy at site {site_id}")
