"""Replica substrate: per-copy protocol state and versioned data stores.

Each physical copy of a replicated file carries, per Section 2.1 of the
paper, three pieces of state:

* an *operation number* ``o`` — incremented by every successful operation
  the copy takes part in (reads included);
* a *version number* ``v`` — identifies the last successful **write**;
* a *partition set* ``P`` — the set of copies that participated in the
  most recent successful operation; it is the quorum denominator for the
  next operation.

:class:`~repro.replica.state.ReplicaState` holds that triple with the
monotonicity invariants enforced; :class:`~repro.replica.state.ReplicaSet`
is the per-file collection of copies; and
:class:`~repro.replica.store.VersionedStore` holds the actual file bytes
so the message-level engine moves real data.
"""

from repro.replica.state import ReplicaSet, ReplicaState
from repro.replica.store import VersionedStore

__all__ = ["ReplicaSet", "ReplicaState", "VersionedStore"]
