"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch every package error with a single ``except`` clause while still being
able to discriminate the precise failure mode.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "SchedulingError",
    "TopologyError",
    "UnknownSiteError",
    "ProtocolError",
    "QuorumNotReachedError",
    "StaleCopyError",
    "ConfigurationError",
    "EngineError",
    "SiteUnavailableError",
    "ServiceError",
    "WALCorruptionError",
]


class ReproError(Exception):
    """Base class of every exception raised by the ``repro`` package."""


class SimulationError(ReproError):
    """Raised when the discrete-event kernel is used incorrectly."""


class SchedulingError(SimulationError):
    """Raised when an event is scheduled in the past or after shutdown."""


class TopologyError(ReproError):
    """Raised for malformed network topologies."""


class UnknownSiteError(TopologyError):
    """Raised when an operation references a site the topology lacks."""


class ProtocolError(ReproError):
    """Base class for consistency-protocol failures."""


class QuorumNotReachedError(ProtocolError):
    """Raised when an access is attempted outside the majority partition."""


class StaleCopyError(ProtocolError):
    """Raised when a copy's state is too old to take part in an operation."""


class ConfigurationError(ReproError):
    """Raised for invalid experiment or replica-set configurations."""


class EngineError(ReproError):
    """Raised by the message-level replication engine."""


class SiteUnavailableError(EngineError):
    """Raised when a message is sent to a site that is down or unreachable."""


class ServiceError(ReproError):
    """Raised by the networked replicated KV service (:mod:`repro.service`)."""


class WALCorruptionError(ServiceError):
    """Raised when a write-ahead log is corrupt beyond its torn tail.

    A torn *final* record — the signature of a crash mid-append — is
    recovered from silently; corruption anywhere earlier means the disk
    lied and recovery must not guess.
    """
