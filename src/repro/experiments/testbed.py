"""The paper's testbed network (Figure 8).

"An existing network consisting of eight sites and three carrier-sense
segments linked by gateways is used as a model.  Five of the eight sites
are connected on the main carrier-sense segment.  One of these sites is
the gateway to the second segment, to which the sixth site is also
connected; another of the five sites is the gateway to the third segment,
to which the seventh and eighth sites are also connected."

The configuration descriptions pin the gateways down: configuration B
(copies 1, 2, 6) has its single partition point at **site 4**, and
configuration H (copies 1, 2, 7, 8) has its single partition point at
**site 5**.  Hence:

* segment ``alpha`` (main): sites 1, 2, 3, 4, 5;
* segment ``beta``: site 6, reached through gateway site 4;
* segment ``gamma``: sites 7 and 8, reached through gateway site 5.

Gateways are homed on the main segment, per the paper's rule that a
gateway host belongs to exactly one segment.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.errors import ConfigurationError
from repro.failures.profiles import TABLE_1
from repro.net.sites import Site
from repro.net.topology import SegmentedTopology

__all__ = ["SEGMENTS", "GATEWAYS", "testbed_topology", "render_testbed"]

#: Segment membership of the eight testbed sites.
SEGMENTS: dict[str, tuple[int, ...]] = {
    "alpha": (1, 2, 3, 4, 5),
    "beta": (6,),
    "gamma": (7, 8),
}

#: Gateway sites and the segments each joins while up.
GATEWAYS: dict[int, tuple[str, str]] = {
    4: ("alpha", "beta"),
    5: ("alpha", "gamma"),
}


def testbed_topology(
    ranks: Optional[Mapping[int, float]] = None,
) -> SegmentedTopology:
    """Build the Figure 8 network with Table 1's host names.

    Args:
        ranks: Optional lexicographic ranks per site (higher wins ties).
            Defaults to the paper's convention — the lowest-numbered site
            is the maximum element.  The ordering sweep (experiment X9)
            uses this to ask which site *should* hold the tie-break.
    """
    if ranks is not None:
        unknown = set(ranks) - set(TABLE_1)
        if unknown:
            raise ConfigurationError(f"ranks for unknown sites {sorted(unknown)}")
    sites = [
        Site(
            sid,
            profile.name,
            rank=None if ranks is None else ranks.get(sid, float(-sid)),
        )
        for sid, profile in sorted(TABLE_1.items())
    ]
    return SegmentedTopology(sites, SEGMENTS, GATEWAYS)


def render_testbed() -> str:
    """An ASCII rendering of Figure 8 (for the CLI and the examples)."""
    lines = [
        "segment alpha (main carrier-sense segment)",
        "=====+========+=========+========+========+=====",
        "     |        |         |        |        |",
        "  1 csvax  2 beowulf  3 grendel  |        |",
        "                            4 wizard   5 amos",
        "                            [gateway]  [gateway]",
        "                                |        |",
        "segment beta ===+===       segment gamma =+======+=",
        "                |                         |      |",
        "            6 gremlin                  7 rip  8 mangle",
        "",
        "partition points: site 4 (cuts off beta), site 5 (cuts off gamma)",
    ]
    return "\n".join(lines)
