"""Parameter sweeps: the ablation experiments of DESIGN.md (X1, X5).

* :func:`access_rate_sweep` — how the optimistic policies' availability
  moves between the MCV-like (never update) and LDV-like (update
  instantly) extremes as the file's access rate grows.  This is the
  mechanism behind the paper's configuration-F observation that ODV can
  *beat* LDV at one access per day.
* :func:`placement_sweep` — availability of every possible placement of
  ``k`` copies on the testbed under one policy; shows TDV's preference
  for co-locating copies on a single segment.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.errors import ConfigurationError
from repro.experiments.configs import Configuration
from repro.experiments.evaluator import evaluate_policy, poisson_times
from repro.experiments.runner import StudyParameters
from repro.experiments.testbed import testbed_topology
from repro.failures.profiles import testbed_profiles
from repro.failures.trace import generate_trace

__all__ = ["SweepPoint", "access_rate_sweep", "placement_sweep", "PlacementResult"]


@dataclass(frozen=True)
class SweepPoint:
    """One point of an access-rate sweep."""

    policy: str
    accesses_per_day: float
    unavailability: float
    mean_down_duration: float


def access_rate_sweep(
    configuration: Configuration,
    rates_per_day: Sequence[float],
    policies: Sequence[str] = ("ODV", "OTDV"),
    params: Optional[StudyParameters] = None,
) -> tuple[SweepPoint, ...]:
    """Measure optimistic policies across access rates on one placement.

    Eager policies may be included as flat reference lines (their results
    do not depend on the access rate).
    """
    if not rates_per_day:
        raise ConfigurationError("at least one access rate is required")
    if params is None:
        params = StudyParameters()
    topology = testbed_topology()
    trace = generate_trace(testbed_profiles(), params.horizon, params.seed)
    points: list[SweepPoint] = []
    for rate in rates_per_day:
        access_times = poisson_times(rate, trace.horizon, params.seed)
        for policy in policies:
            result = evaluate_policy(
                policy,
                topology,
                configuration.copy_sites,
                trace,
                warmup=params.warmup,
                batches=params.batches,
                access_times=access_times,
            )
            points.append(
                SweepPoint(
                    policy=result.policy,
                    accesses_per_day=rate,
                    unavailability=result.unavailability,
                    mean_down_duration=result.mean_down_duration,
                )
            )
    return tuple(points)


@dataclass(frozen=True)
class PlacementResult:
    """One placement's availability under one policy."""

    copy_sites: frozenset[int]
    segments_used: int
    unavailability: float

    @property
    def label(self) -> str:
        return ", ".join(map(str, sorted(self.copy_sites)))


def placement_sweep(
    copies: int,
    policy: str,
    params: Optional[StudyParameters] = None,
    candidate_sites: Optional[Iterable[int]] = None,
) -> tuple[PlacementResult, ...]:
    """Availability of every ``copies``-sized placement on the testbed.

    Returns results sorted best (lowest unavailability) first.
    """
    if params is None:
        params = StudyParameters()
    topology = testbed_topology()
    sites = sorted(candidate_sites) if candidate_sites else sorted(topology.site_ids)
    if copies < 1 or copies > len(sites):
        raise ConfigurationError(
            f"copies must be in 1..{len(sites)}, got {copies}"
        )
    trace = generate_trace(testbed_profiles(), params.horizon, params.seed)
    access_times = poisson_times(
        params.access_rate_per_day, trace.horizon, params.seed
    )
    results: list[PlacementResult] = []
    for combo in itertools.combinations(sites, copies):
        placement = frozenset(combo)
        outcome = evaluate_policy(
            policy,
            topology,
            placement,
            trace,
            warmup=params.warmup,
            batches=params.batches,
            access_times=access_times,
        )
        segments = {topology.segment_of(s) for s in placement}
        results.append(
            PlacementResult(
                copy_sites=placement,
                segments_used=len(segments),
                unavailability=outcome.unavailability,
            )
        )
    results.sort(key=lambda r: (r.unavailability, sorted(r.copy_sites)))
    return tuple(results)
