"""Scripted failure scenarios.

The trace generator produces *stochastic* histories; this module runs
*deterministic* ones — "what exactly happens to my file if the gateway
dies five minutes after csvax?"  A scenario is a time-ordered script of
site failures/repairs, link cuts, reads, writes and recovery attempts,
executed against the message-level engine; the runner records the
outcome of every step so tests, docs and capacity-planning scripts can
assert against them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.tracer import Tracer

from repro.engine.cluster import Cluster
from repro.engine.file import ReplicatedFile
from repro.errors import (
    ConfigurationError,
    QuorumNotReachedError,
    SiteUnavailableError,
)
from repro.net.topology import Topology

__all__ = ["Step", "StepOutcome", "ScenarioResult", "run_scenario",
           "load_scenario", "ScenarioSpec",
           "fail", "restart", "cut_link", "heal_link", "read", "write",
           "recover", "expect_available", "expect_unavailable"]


@dataclass(frozen=True)
class Step:
    """One scripted action.

    Built by the helper constructors below (``fail(2)``, ``write(1, "x")``,
    ...), not usually by hand.
    """

    kind: str
    site: Optional[int] = None
    peer: Optional[int] = None
    value: Any = None


def fail(site: int) -> Step:
    """Take a site down."""
    return Step("fail", site=site)


def restart(site: int) -> Step:
    """Bring a site back up."""
    return Step("restart", site=site)


def cut_link(a: int, b: int) -> Step:
    """Cut a point-to-point link."""
    return Step("cut_link", site=a, peer=b)


def heal_link(a: int, b: int) -> Step:
    """Restore a point-to-point link."""
    return Step("heal_link", site=a, peer=b)


def read(site: int) -> Step:
    """Attempt a read from *site*."""
    return Step("read", site=site)


def write(site: int, value: Any) -> Step:
    """Attempt a write of *value* from *site*."""
    return Step("write", site=site, value=value)


def recover(site: int) -> Step:
    """Run one RECOVER attempt at *site*."""
    return Step("recover", site=site)


def expect_available() -> Step:
    """Assert the file is available from somewhere."""
    return Step("expect_available")


def expect_unavailable() -> Step:
    """Assert the file is available from nowhere."""
    return Step("expect_unavailable")


@dataclass(frozen=True)
class StepOutcome:
    """What one step did: granted/denied/not-applicable, plus any value."""

    step: Step
    granted: bool
    value: Any = None
    detail: str = ""


@dataclass
class ScenarioResult:
    """The full record of a scenario run."""

    policy: str
    outcomes: list[StepOutcome] = field(default_factory=list)

    @property
    def reads(self) -> list[StepOutcome]:
        return [o for o in self.outcomes if o.step.kind == "read"]

    @property
    def denied_steps(self) -> list[StepOutcome]:
        return [o for o in self.outcomes
                if o.step.kind in ("read", "write", "recover")
                and not o.granted]


@dataclass(frozen=True)
class ScenarioSpec:
    """A scenario loaded from a JSON document (see :func:`load_scenario`)."""

    policy: str
    copy_sites: frozenset[int]
    steps: tuple[Step, ...]
    initial: Any = "v0"
    name: str = "scenario"


_STEP_PARSERS = {
    "fail": lambda d: fail(int(d["site"])),
    "restart": lambda d: restart(int(d["site"])),
    "cut_link": lambda d: cut_link(int(d["a"]), int(d["b"])),
    "heal_link": lambda d: heal_link(int(d["a"]), int(d["b"])),
    "read": lambda d: read(int(d["site"])),
    "write": lambda d: write(int(d["site"]), d.get("value")),
    "recover": lambda d: recover(int(d["site"])),
    "expect_available": lambda d: expect_available(),
    "expect_unavailable": lambda d: expect_unavailable(),
}


def load_scenario(path) -> ScenarioSpec:
    """Read a scenario from a JSON file.

    Document shape::

        {"format": "repro-scenario",
         "name": "configuration H split",
         "policy": "LDV",
         "copies": [1, 2, 7, 8],
         "initial": "v0",
         "steps": [{"do": "write", "site": 1, "value": "x"},
                   {"do": "fail", "site": 5},
                   {"do": "expect_available"}]}

    Raises:
        ConfigurationError: on unreadable files or malformed documents.
    """
    import json
    import pathlib

    path = pathlib.Path(path)
    try:
        with path.open() as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read scenario {path}: {exc}") from exc
    if not isinstance(data, dict) or data.get("format") != "repro-scenario":
        raise ConfigurationError(f"{path} is not a repro scenario document")
    try:
        policy = str(data["policy"])
        copies = frozenset(int(s) for s in data["copies"])
        raw_steps = data["steps"]
    except KeyError as exc:
        raise ConfigurationError(f"scenario missing key {exc}") from exc
    steps = []
    for index, entry in enumerate(raw_steps):
        kind = entry.get("do")
        parser = _STEP_PARSERS.get(kind)
        if parser is None:
            raise ConfigurationError(
                f"step {index}: unknown action {kind!r}; choose from "
                f"{sorted(_STEP_PARSERS)}"
            )
        try:
            steps.append(parser(entry))
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"step {index}: {exc}") from exc
    return ScenarioSpec(
        policy=policy,
        copy_sites=copies,
        steps=tuple(steps),
        initial=data.get("initial", "v0"),
        name=str(data.get("name", path.stem)),
    )


def run_scenario(
    topology: Topology,
    copy_sites: frozenset[int] | set[int],
    policy: str,
    steps: Sequence[Step],
    initial: Any = "v0",
    tracer: Optional["Tracer"] = None,
) -> ScenarioResult:
    """Execute *steps* in order against a fresh cluster and file.

    ``expect_available`` / ``expect_unavailable`` raise
    :class:`ConfigurationError` when violated, making scenarios usable as
    executable specifications.

    With a *tracer*, every step emits a ``scenario.step`` record and the
    underlying file and protocol emit their ``op.*`` and ``quorum.*``
    decision records — the full story of why each access was granted or
    denied (``repro trace <scenario> --out trace.jsonl``).
    """
    cluster = Cluster(topology)
    file = ReplicatedFile(cluster, frozenset(copy_sites), policy=policy,
                          initial=initial)
    if tracer is not None:
        file.attach_tracer(tracer)
    result = ScenarioResult(policy=file.protocol.name)
    for index, step in enumerate(steps):
        if tracer is not None:
            tracer.record(
                "scenario.step", index=index, action=step.kind,
                site=step.site, peer=step.peer,
            )
        outcome = _run_step(cluster, file, step, index)
        result.outcomes.append(outcome)
    return result


def _run_step(cluster: Cluster, file: ReplicatedFile, step: Step,
              index: int) -> StepOutcome:
    kind = step.kind
    if kind == "fail":
        cluster.fail_site(step.site)
        return StepOutcome(step, granted=True)
    if kind == "restart":
        cluster.restart_site(step.site)
        return StepOutcome(step, granted=True)
    if kind == "cut_link":
        cluster.fail_link(step.site, step.peer)
        return StepOutcome(step, granted=True)
    if kind == "heal_link":
        cluster.repair_link(step.site, step.peer)
        return StepOutcome(step, granted=True)
    if kind == "read":
        try:
            value = file.read(step.site)
            return StepOutcome(step, granted=True, value=value)
        except (QuorumNotReachedError, SiteUnavailableError) as exc:
            return StepOutcome(step, granted=False, detail=str(exc))
    if kind == "write":
        try:
            file.write(step.site, step.value)
            return StepOutcome(step, granted=True, value=step.value)
        except (QuorumNotReachedError, SiteUnavailableError) as exc:
            return StepOutcome(step, granted=False, detail=str(exc))
    if kind == "recover":
        try:
            ok = file.recover_site(step.site)
            return StepOutcome(step, granted=ok)
        except (QuorumNotReachedError, SiteUnavailableError) as exc:
            return StepOutcome(step, granted=False, detail=str(exc))
    if kind == "expect_available":
        if not file.is_available():
            raise ConfigurationError(
                f"step {index}: expected the file to be available"
            )
        return StepOutcome(step, granted=True)
    if kind == "expect_unavailable":
        if file.is_available():
            raise ConfigurationError(
                f"step {index}: expected the file to be unavailable"
            )
        return StepOutcome(step, granted=True)
    raise ConfigurationError(f"unknown scenario step kind {kind!r}")
