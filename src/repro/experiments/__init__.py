"""Experiment harness: the paper's Section 4 simulation study.

Pieces:

* :mod:`repro.experiments.testbed` — the Figure 8 network (eight sites,
  three carrier-sense segments, gateways at sites 4 and 5);
* :mod:`repro.experiments.configs` — the eight copy placements A–H;
* :mod:`repro.experiments.evaluator` — replays one failure trace against
  one policy, producing unavailability, down-period and reliability
  statistics; Poisson / periodic / business-hours access streams;
* :mod:`repro.experiments.runner` — sweeps (configuration × policy) cells
  over a shared trace (common random numbers) with batch-means
  intervals, optionally across worker processes;
* :mod:`repro.experiments.tables` — regenerates Tables 2 and 3 (plus the
  confidence-interval and MTBF views) and holds the paper's published
  numbers for shape comparison;
* :mod:`repro.experiments.sweep` — the access-rate and placement
  ablations (DESIGN.md experiments X1, X5);
* :mod:`repro.experiments.witness_sweep` /
  :mod:`repro.experiments.ordering_sweep` — witness placement (X3) and
  choice of lexicographic maximum (X9);
* :mod:`repro.experiments.overhead` — the message-bill replay (X2);
* :mod:`repro.experiments.scenarios` — scripted failure scenarios as
  executable specifications (plus a JSON loader for the CLI);
* :mod:`repro.experiments.study_io` — saving and loading study results;
* :mod:`repro.experiments.report` — plain-text tables and bar charts.
"""

from repro.experiments.configs import CONFIGURATIONS, Configuration
from repro.experiments.evaluator import (
    EvaluationResult,
    evaluate_policy,
    periodic_times,
    poisson_times,
)
from repro.experiments.overhead import OverheadResult, measure_overhead
from repro.experiments.runner import CellResult, StudyParameters, run_cell, run_study
from repro.experiments.scenarios import ScenarioResult, Step, run_scenario
from repro.experiments.study_io import dump_study, load_study
from repro.experiments.tables import (
    PAPER_TABLE_2,
    PAPER_TABLE_3,
    format_table2,
    format_table3,
)
from repro.experiments.testbed import SEGMENTS, testbed_topology, render_testbed
from repro.experiments.witness_sweep import WitnessPlacement, witness_placement_sweep

__all__ = [
    "CONFIGURATIONS",
    "CellResult",
    "Configuration",
    "EvaluationResult",
    "OverheadResult",
    "PAPER_TABLE_2",
    "PAPER_TABLE_3",
    "SEGMENTS",
    "ScenarioResult",
    "Step",
    "StudyParameters",
    "WitnessPlacement",
    "dump_study",
    "evaluate_policy",
    "format_table2",
    "format_table3",
    "load_study",
    "measure_overhead",
    "periodic_times",
    "poisson_times",
    "render_testbed",
    "run_cell",
    "run_scenario",
    "run_study",
    "testbed_topology",
    "witness_placement_sweep",
]
