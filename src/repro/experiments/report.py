"""Plain-text rendering helpers for sweeps and studies.

The original paper predates ubiquitous plotting; in that spirit (and to
stay dependency-free) the examples render their results as aligned text
bars and curves.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.errors import ConfigurationError

__all__ = ["ascii_bars", "log_bars", "ascii_table"]


def ascii_bars(
    rows: Sequence[tuple[str, float]],
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bars scaled linearly to the largest value.

    ``rows`` is a list of ``(label, value)`` pairs; values must be
    non-negative.
    """
    if not rows:
        raise ConfigurationError("no rows to render")
    if any(value < 0 for _, value in rows):
        raise ConfigurationError("bar values must be non-negative")
    peak = max(value for _, value in rows)
    label_width = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        length = 0 if peak == 0 else round(width * value / peak)
        bar = "#" * length
        lines.append(f"{label:<{label_width}}  {bar:<{width}}  {value:.6g}{unit}")
    return "\n".join(lines)


def log_bars(
    rows: Sequence[tuple[str, float]],
    width: int = 50,
    floor: float = 1e-7,
) -> str:
    """Bars on a log scale — unavailabilities span orders of magnitude.

    Zero (or sub-``floor``) values render as an empty bar tagged ``~0``.
    """
    if not rows:
        raise ConfigurationError("no rows to render")
    label_width = max(len(label) for label, _ in rows)
    positives = [v for _, v in rows if v > floor]
    if not positives:
        return "\n".join(
            f"{label:<{label_width}}  {'':<{width}}  ~0" for label, _ in rows
        )
    lo = math.log10(floor)
    hi = math.log10(max(positives))
    span = max(hi - lo, 1e-9)
    lines = []
    for label, value in rows:
        if value <= floor:
            lines.append(f"{label:<{label_width}}  {'':<{width}}  ~0")
            continue
        frac = (math.log10(value) - lo) / span
        bar = "#" * max(1, round(width * frac))
        lines.append(f"{label:<{label_width}}  {bar:<{width}}  {value:.6f}")
    return "\n".join(lines)


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 6,
) -> str:
    """A plain aligned table; floats are fixed-precision, rest ``str()``."""
    if not headers:
        raise ConfigurationError("headers are required")

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.{precision}f}"
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} != header width {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    header_line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    separator = "-" * len(header_line)
    body = [
        "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        for row in text_rows
    ]
    return "\n".join([header_line, separator, *body])
