"""Witness placement: where should the state-only copy live?

Extends experiment X3 from "does a witness help?" to "where does it help
most?"  For a fixed pair of full copies, every remaining testbed site is
tried as the witness location and ranked — a design tool for the
paper's future-work item.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Optional

from repro.core.witnesses import DynamicVotingWithWitnesses
from repro.errors import ConfigurationError
from repro.experiments.evaluator import evaluate_policy, poisson_times
from repro.experiments.runner import StudyParameters
from repro.experiments.testbed import testbed_topology
from repro.failures.profiles import testbed_profiles
from repro.failures.trace import generate_trace

__all__ = ["WitnessPlacement", "witness_placement_sweep"]


@dataclass(frozen=True)
class WitnessPlacement:
    """One witness location's outcome."""

    witness_site: int
    segment: str
    unavailability: float
    mean_down_duration: float


def witness_placement_sweep(
    full_copies: frozenset[int] | set[int],
    params: Optional[StudyParameters] = None,
    candidate_sites: Optional[frozenset[int]] = None,
) -> tuple[tuple[WitnessPlacement, ...], float, float]:
    """Try every candidate site as the witness for *full_copies*.

    Returns ``(placements, bare_pair_unavailability,
    full_triple_best_unavailability)`` where the placements are sorted
    best-first, the bare value is the pair under plain LDV, and the
    triple value is the best achievable by adding a *full* copy instead
    (the storage-expensive upper bound).
    """
    full_copies = frozenset(full_copies)
    if len(full_copies) < 2:
        raise ConfigurationError("need at least two full copies")
    if params is None:
        params = StudyParameters()
    topology = testbed_topology()
    unknown = full_copies - topology.site_ids
    if unknown:
        raise ConfigurationError(f"unknown sites {sorted(unknown)}")
    if candidate_sites is None:
        candidate_sites = topology.site_ids - full_copies
    trace = generate_trace(testbed_profiles(), params.horizon, params.seed)
    access = poisson_times(params.access_rate_per_day, trace.horizon,
                           params.seed)

    def run(policy, copies):
        return evaluate_policy(
            policy, topology, frozenset(copies), trace,
            warmup=params.warmup, batches=params.batches,
            access_times=access,
        )

    bare = run("LDV", full_copies).unavailability

    placements = []
    best_triple = 1.0
    for witness in sorted(candidate_sites):
        factory = functools.partial(
            DynamicVotingWithWitnesses, witness_sites={witness}
        )
        witnessed = run(factory, full_copies | {witness})
        placements.append(WitnessPlacement(
            witness_site=witness,
            segment=topology.segment_of(witness),
            unavailability=witnessed.unavailability,
            mean_down_duration=witnessed.mean_down_duration,
        ))
        triple = run("LDV", full_copies | {witness}).unavailability
        best_triple = min(best_triple, triple)
    placements.sort(key=lambda p: (p.unavailability, p.witness_site))
    return tuple(placements), bare, best_triple
