"""Which site should be the lexicographic maximum?  (Experiment X9.)

The tie-breaking rule hands exactly-half groups to the side holding the
maximum element, so the *choice of ordering* is a free design parameter
the paper never analyses.  Intuition says the maximum should sit on a
reliable, well-connected site: ties then resolve toward the group most
likely to stay alive.  This sweep makes each candidate site the maximum
in turn and measures the resulting availability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.experiments.evaluator import evaluate_policy, poisson_times
from repro.experiments.runner import StudyParameters
from repro.experiments.testbed import testbed_topology
from repro.failures.profiles import TABLE_1, testbed_profiles
from repro.failures.trace import generate_trace

__all__ = ["OrderingResult", "ordering_sweep"]


@dataclass(frozen=True)
class OrderingResult:
    """One choice of maximum element and its measured availability."""

    maximum_site: int
    site_name: str
    unavailability: float
    mean_down_duration: float


def ordering_sweep(
    copy_sites: frozenset[int] | set[int],
    policy: str = "LDV",
    params: Optional[StudyParameters] = None,
    candidates: Optional[Sequence[int]] = None,
) -> tuple[OrderingResult, ...]:
    """Measure *policy* on *copy_sites* with each candidate as maximum.

    The candidate gets rank 100; everyone else keeps the default order.
    Results are sorted best (lowest unavailability) first.
    """
    copy_sites = frozenset(copy_sites)
    if not copy_sites:
        raise ConfigurationError("at least one copy site is required")
    if params is None:
        params = StudyParameters()
    if candidates is None:
        candidates = sorted(copy_sites)
    unknown = set(candidates) - set(TABLE_1)
    if unknown:
        raise ConfigurationError(f"unknown candidate sites {sorted(unknown)}")
    trace = generate_trace(testbed_profiles(), params.horizon, params.seed)
    access = poisson_times(params.access_rate_per_day, trace.horizon,
                           params.seed)
    results = []
    for maximum in candidates:
        topology = testbed_topology(ranks={maximum: 100.0})
        outcome = evaluate_policy(
            policy, topology, copy_sites, trace,
            warmup=params.warmup, batches=params.batches,
            access_times=access,
        )
        results.append(OrderingResult(
            maximum_site=maximum,
            site_name=TABLE_1[maximum].name,
            unavailability=outcome.unavailability,
            mean_down_duration=outcome.mean_down_duration,
        ))
    results.sort(key=lambda r: (r.unavailability, r.maximum_site))
    return tuple(results)
