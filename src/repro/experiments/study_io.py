"""Persisting study results.

A full (configuration × policy) study takes minutes at paper scale;
saving the cells lets reports, notebooks and regression comparisons work
from the recorded numbers instead of re-simulating.  JSON, versioned,
with every scalar the tables need plus the confidence intervals.
"""

from __future__ import annotations

import json
import pathlib
from typing import Mapping, Union

from repro.errors import ConfigurationError
from repro.experiments.configs import CONFIGURATIONS
from repro.experiments.evaluator import EvaluationResult
from repro.experiments.runner import CellResult
from repro.stats.batch_means import ConfidenceInterval

__all__ = [
    "canonical_study_bytes",
    "dump_study",
    "load_study",
    "study_from_dict",
    "study_to_dict",
]

_FORMAT = "repro-study"
_VERSION = 1


def study_to_dict(cells: Mapping[tuple[str, str], CellResult]) -> dict:
    """A JSON-serialisable representation of study cells."""
    payload = []
    for (config_key, policy), cell in sorted(cells.items()):
        result = cell.result
        payload.append({
            "config": config_key,
            "policy": policy,
            "unavailability": result.unavailability,
            "mean_down_duration": result.mean_down_duration,
            "down_periods": result.down_periods,
            "observed_time": result.observed_time,
            "interval_mean": result.interval.mean,
            "interval_half_width": result.interval.half_width,
            "interval_batches": result.interval.batches,
            "committed_operations": result.committed_operations,
            "synchronizations": result.synchronizations,
            "down_durations": list(result.down_durations),
        })
    return {"format": _FORMAT, "version": _VERSION, "cells": payload}


def study_from_dict(data: dict) -> dict[tuple[str, str], CellResult]:
    """Rebuild study cells from :func:`study_to_dict` output.

    Raises:
        ConfigurationError: on wrong format/version or malformed cells.
    """
    if not isinstance(data, dict) or data.get("format") != _FORMAT:
        raise ConfigurationError("not a repro study document")
    if data.get("version") != _VERSION:
        raise ConfigurationError(
            f"unsupported study version {data.get('version')!r}"
        )
    cells: dict[tuple[str, str], CellResult] = {}
    try:
        for entry in data["cells"]:
            config_key = str(entry["config"])
            configuration = CONFIGURATIONS[config_key]
            interval = ConfidenceInterval(
                mean=float(entry["interval_mean"]),
                half_width=float(entry["interval_half_width"]),
                batches=int(entry["interval_batches"]),
            )
            result = EvaluationResult(
                policy=str(entry["policy"]),
                unavailability=float(entry["unavailability"]),
                mean_down_duration=float(entry["mean_down_duration"]),
                down_periods=int(entry["down_periods"]),
                observed_time=float(entry["observed_time"]),
                interval=interval,
                committed_operations=int(entry["committed_operations"]),
                synchronizations=int(entry["synchronizations"]),
                down_durations=tuple(
                    float(d) for d in entry.get("down_durations", ())
                ),
            )
            cells[(config_key, result.policy)] = CellResult(
                configuration, result
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed study document: {exc}") from exc
    return cells


def canonical_study_bytes(
    cells: Mapping[tuple[str, str], CellResult],
) -> bytes:
    """The canonical serialisation of study cells.

    Key ordering, separators and float formatting are all pinned, so
    the same cells always produce the same bytes — the property the run
    registry's content-addressed run ids are built on (two dumps of the
    same study hash identically; see ``repro.obs.registry``).
    """
    return json.dumps(
        study_to_dict(cells), sort_keys=True, separators=(",", ":"),
    ).encode("utf-8")


def dump_study(
    cells: Mapping[tuple[str, str], CellResult],
    path: Union[str, pathlib.Path],
) -> None:
    """Write study cells to *path* in the canonical serialisation."""
    path = pathlib.Path(path)
    path.write_bytes(canonical_study_bytes(cells) + b"\n")


def load_study(path: Union[str, pathlib.Path]) -> dict[tuple[str, str], CellResult]:
    """Read study cells previously written by :func:`dump_study`."""
    path = pathlib.Path(path)
    try:
        with path.open() as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read study {path}: {exc}") from exc
    return study_from_dict(data)
