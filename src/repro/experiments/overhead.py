"""Message-overhead measurement (DESIGN.md experiment X2).

Replays a failure trace plus an access stream through the message-level
engine and returns the per-policy message bill.  This quantifies the
paper's efficiency claim: the eager protocols pay a state-exchange round
for every network event (the connection vector), the optimistic ones
only for accesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.engine.cluster import Cluster
from repro.engine.counters import MessageCounters
from repro.engine.file import ReplicatedFile
from repro.errors import ConfigurationError, QuorumNotReachedError, SiteUnavailableError
from repro.failures.trace import FailureTrace
from repro.net.topology import Topology

__all__ = ["OverheadResult", "measure_overhead"]


@dataclass(frozen=True)
class OverheadResult:
    """The message bill of one policy over one replayed history."""

    policy: str
    counters: MessageCounters
    accesses_granted: int
    accesses_denied: int
    days: float

    @property
    def messages_per_day(self) -> float:
        return self.counters.total_messages / self.days


def measure_overhead(
    policy: str,
    topology: Topology,
    copy_sites: frozenset[int],
    trace: FailureTrace,
    access_times: Sequence[float],
) -> OverheadResult:
    """Replay *trace* and *access_times* through the engine for *policy*.

    Each access is attempted from one representative site per partition
    block (the paper's single user "can access any of the eight sites");
    the first granting block serves it.
    """
    if not copy_sites:
        raise ConfigurationError("at least one copy site is required")
    cluster = Cluster(topology)
    file = ReplicatedFile(cluster, copy_sites, policy=policy, initial="v0")

    timeline = sorted(
        [(e.time, e) for e in trace] + [(t, None) for t in access_times],
        key=lambda item: item[0],
    )
    granted = denied = 0
    for _, event in timeline:
        if event is not None:
            if event.up:
                cluster.restart_site(event.site_id)
            else:
                cluster.fail_site(event.site_id)
            continue
        view = cluster.view()
        served = False
        for block in view.blocks:
            try:
                file.read(min(block))
                served = True
                break
            except (QuorumNotReachedError, SiteUnavailableError):
                continue
        if served:
            granted += 1
        else:
            denied += 1
    return OverheadResult(
        policy=file.protocol.name,
        counters=file.counters.snapshot(),
        accesses_granted=granted,
        accesses_denied=denied,
        days=trace.horizon,
    )
