"""Sweeping (configuration × policy) cells over a shared failure trace."""

from __future__ import annotations

import concurrent.futures
import os
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from repro.core.registry import PAPER_POLICIES
from repro.errors import ConfigurationError
from repro.experiments.configs import CONFIGURATIONS, Configuration
from repro.experiments.evaluator import (
    EvaluationResult,
    evaluate_policy,
    poisson_times,
)
from repro.experiments.testbed import testbed_topology
from repro.failures.profiles import testbed_profiles
from repro.failures.trace import FailureTrace, generate_trace
from repro.net.topology import Topology

__all__ = ["StudyParameters", "CellResult", "run_cell", "run_study"]

#: Environment variable overriding the default simulated horizon (days),
#: so `REPRO_SIM_DAYS=200000 pytest benchmarks/` runs paper-length studies.
HORIZON_ENV = "REPRO_SIM_DAYS"


def default_horizon(fallback: float = 40_000.0) -> float:
    """The simulated horizon in days, honouring ``REPRO_SIM_DAYS``."""
    raw = os.environ.get(HORIZON_ENV)
    if raw is None:
        return fallback
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(f"{HORIZON_ENV}={raw!r} is not a number") from None
    if value <= 0:
        raise ConfigurationError(f"{HORIZON_ENV} must be > 0, got {value}")
    return value


@dataclass(frozen=True)
class StudyParameters:
    """Everything that defines one availability study run.

    Defaults follow the paper: one access per day for the optimistic
    policies, a 360-day warm-up, batch-means confidence intervals.  The
    horizon is a compromise between fidelity and runtime; set the
    ``REPRO_SIM_DAYS`` environment variable (or pass ``horizon``) for
    longer, tighter runs.
    """

    horizon: float = field(default_factory=default_horizon)
    warmup: float = 360.0
    batches: int = 20
    seed: int = 1988
    access_rate_per_day: float = 1.0

    def __post_init__(self) -> None:
        if self.horizon <= self.warmup:
            raise ConfigurationError(
                f"horizon ({self.horizon}) must exceed warmup ({self.warmup})"
            )


@dataclass(frozen=True)
class CellResult:
    """One (configuration, policy) cell of Table 2 / Table 3."""

    configuration: Configuration
    result: EvaluationResult

    @property
    def unavailability(self) -> float:
        return self.result.unavailability

    @property
    def mean_down_duration(self) -> float:
        return self.result.mean_down_duration


def run_cell(
    configuration: Configuration,
    policy: str,
    params: StudyParameters,
    topology: Optional[Topology] = None,
    trace: Optional[FailureTrace] = None,
    access_times: Optional[tuple[float, ...]] = None,
) -> CellResult:
    """Evaluate one (configuration, policy) cell.

    *topology*, *trace* and *access_times* may be passed in so a study
    shares them across cells (common random numbers); when omitted they
    are built from *params*.
    """
    if topology is None:
        topology = testbed_topology()
    if trace is None:
        trace = generate_trace(testbed_profiles(), params.horizon, params.seed)
    if access_times is None:
        access_times = poisson_times(
            params.access_rate_per_day, trace.horizon, params.seed
        )
    result = evaluate_policy(
        policy,
        topology,
        configuration.copy_sites,
        trace,
        warmup=params.warmup,
        batches=params.batches,
        access_times=access_times,
    )
    return CellResult(configuration, result)


def _run_cell_worker(
    args: tuple[str, str, StudyParameters, FailureTrace, tuple[float, ...]],
) -> tuple[tuple[str, str], CellResult]:
    """Process-pool entry point: one (configuration, policy) cell.

    Module-level so it pickles; the shared trace and access stream ride
    along with each task (cheap relative to the simulation itself).
    """
    config_key, policy, params, trace, access_times = args
    cell = run_cell(
        CONFIGURATIONS[config_key],
        policy,
        params,
        trace=trace,
        access_times=access_times,
    )
    return ((config_key, policy), cell)


def run_study(
    params: Optional[StudyParameters] = None,
    configurations: Optional[Iterable[Configuration]] = None,
    policies: Sequence[str] = PAPER_POLICIES,
    jobs: Optional[int] = None,
) -> Mapping[tuple[str, str], CellResult]:
    """Run the full study: every configuration against every policy.

    One failure trace and one access stream are generated per study and
    shared by every cell, exactly as the paper measures all policies in
    one simulation.  Returns cells keyed by ``(config_key, policy)``.

    Args:
        params: Simulation parameters (paper defaults when omitted).
        configurations: Placements to evaluate (default: A–H).
        policies: Policy names (default: the paper's six columns).
        jobs: Worker processes for evaluating cells in parallel.  Cells
            are independent given the shared trace, so results are
            bit-identical to the sequential run; ``None`` or ``1`` stays
            in-process.
    """
    if params is None:
        params = StudyParameters()
    if configurations is None:
        configurations = CONFIGURATIONS.values()
    configurations = list(configurations)
    if jobs is not None and jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    topology = testbed_topology()
    trace = generate_trace(testbed_profiles(), params.horizon, params.seed)
    access_times = poisson_times(
        params.access_rate_per_day, trace.horizon, params.seed
    )
    cells: dict[tuple[str, str], CellResult] = {}
    if jobs is None or jobs == 1:
        for configuration in configurations:
            for policy in policies:
                cells[(configuration.key, policy)] = run_cell(
                    configuration,
                    policy,
                    params,
                    topology=topology,
                    trace=trace,
                    access_times=access_times,
                )
        return cells
    tasks = [
        (configuration.key, policy, params, trace, access_times)
        for configuration in configurations
        for policy in policies
    ]
    with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
        for key, cell in pool.map(_run_cell_worker, tasks):
            cells[key] = cell
    return cells
