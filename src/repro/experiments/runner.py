"""Sweeping (configuration × policy) cells over a shared failure trace."""

from __future__ import annotations

import concurrent.futures
import contextlib
import os
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.live.bus import TelemetryBus
    from repro.obs.prof.phases import PhaseProfiler

from repro.core.registry import PAPER_POLICIES
from repro.errors import ConfigurationError
from repro.experiments.configs import CONFIGURATIONS, Configuration
from repro.experiments.evaluator import (
    EvaluationResult,
    evaluate_policy,
    poisson_times,
)
from repro.experiments.testbed import testbed_topology
from repro.failures.profiles import testbed_profiles
from repro.failures.trace import FailureTrace, generate_trace
from repro.net.topology import Topology
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry, MetricsSink
from repro.obs.telemetry import StudyProgress
from repro.obs.tracer import FanoutSink, Tracer
from repro.util.backoff import BackoffPolicy

_log = get_logger("experiments.runner")

#: The cell-retry policy.  A simulation cell fails deterministically or
#: not at all (shared trace, fixed seed), so pacing is pointless: zero
#: base delay, no jitter — but the *attempt budget* comes from the same
#: :class:`BackoffPolicy` the service client uses, so "how often do we
#: retry" has exactly one definition in the package.
_CELL_RETRY = BackoffPolicy(base=0.0, jitter=0.0, max_attempts=2)

__all__ = [
    "FailedCell",
    "StudyParameters",
    "StudyResult",
    "CellResult",
    "run_cell",
    "run_study",
]

#: Environment variable overriding the default simulated horizon (days),
#: so `REPRO_SIM_DAYS=200000 pytest benchmarks/` runs paper-length studies.
HORIZON_ENV = "REPRO_SIM_DAYS"


def default_horizon(fallback: float = 40_000.0) -> float:
    """The simulated horizon in days, honouring ``REPRO_SIM_DAYS``."""
    raw = os.environ.get(HORIZON_ENV)
    if raw is None:
        return fallback
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(f"{HORIZON_ENV}={raw!r} is not a number") from None
    if value <= 0:
        raise ConfigurationError(f"{HORIZON_ENV} must be > 0, got {value}")
    return value


@dataclass(frozen=True)
class StudyParameters:
    """Everything that defines one availability study run.

    Defaults follow the paper: one access per day for the optimistic
    policies, a 360-day warm-up, batch-means confidence intervals.  The
    horizon is a compromise between fidelity and runtime; set the
    ``REPRO_SIM_DAYS`` environment variable (or pass ``horizon``) for
    longer, tighter runs.
    """

    horizon: float = field(default_factory=default_horizon)
    warmup: float = 360.0
    batches: int = 20
    seed: int = 1988
    access_rate_per_day: float = 1.0

    def __post_init__(self) -> None:
        if self.warmup < 0:
            raise ConfigurationError(
                f"warmup must be >= 0, got {self.warmup}"
            )
        if self.horizon <= self.warmup:
            raise ConfigurationError(
                f"horizon ({self.horizon}) must exceed warmup ({self.warmup})"
            )


@dataclass(frozen=True)
class CellResult:
    """One (configuration, policy) cell of Table 2 / Table 3."""

    configuration: Configuration
    result: EvaluationResult

    @property
    def unavailability(self) -> float:
        return self.result.unavailability

    @property
    def mean_down_duration(self) -> float:
        return self.result.mean_down_duration


def run_cell(
    configuration: Configuration,
    policy: str,
    params: StudyParameters,
    topology: Optional[Topology] = None,
    trace: Optional[FailureTrace] = None,
    access_times: Optional[tuple[float, ...]] = None,
    metrics: Optional[MetricsRegistry] = None,
    profiler: Optional["PhaseProfiler"] = None,
    extra_sinks: Sequence[object] = (),
) -> CellResult:
    """Evaluate one (configuration, policy) cell.

    *topology*, *trace* and *access_times* may be passed in so a study
    shares them across cells (common random numbers); when omitted they
    are built from *params*.

    With a *metrics* registry, the cell's replay is wrapped in a
    ``cell.seconds`` timer and the protocol's decision stream is counted
    into per-policy ``quorum.granted`` / ``quorum.denied`` /
    ``tiebreak.lexicographic`` / ``votes.carried`` series, labelled by
    configuration.  Tallying never changes the simulated results.

    With a *profiler*, the cell is timed as a ``cell`` phase (labelled
    by configuration and policy) and the replay's hot-path counters are
    collected (see :func:`~repro.experiments.evaluator.evaluate_policy`).

    *extra_sinks* receive every decision record of the replay alongside
    the metrics tally (the run registry attaches a
    :class:`~repro.obs.registry.store.TimelineSink` this way).  Like
    metrics, sinks observe and never change the simulated results.
    """
    if topology is None:
        topology = testbed_topology()
    if trace is None:
        trace = generate_trace(testbed_profiles(), params.horizon, params.seed)
    if access_times is None:
        access_times = poisson_times(
            params.access_rate_per_day, trace.horizon, params.seed
        )

    def evaluate(tracer: Optional[Tracer]) -> EvaluationResult:
        return evaluate_policy(
            policy,
            topology,
            configuration.copy_sites,
            trace,
            warmup=params.warmup,
            batches=params.batches,
            access_times=access_times,
            tracer=tracer,
            profiler=profiler,
        )

    sinks: list[object] = []
    if metrics is not None:
        sinks.append(MetricsSink(metrics, config=configuration.key))
    sinks.extend(extra_sinks)
    cell_phase = (
        profiler.phase("cell", config=configuration.key, policy=policy)
        if profiler is not None else contextlib.nullcontext()
    )
    with cell_phase:
        if not sinks:
            result = evaluate(None)
        else:
            sink = sinks[0] if len(sinks) == 1 else FanoutSink(sinks)
            tracer = Tracer(sink)
            timer = (
                metrics.timed(
                    "cell.seconds", config=configuration.key, policy=policy
                )
                if metrics is not None else contextlib.nullcontext()
            )
            with timer:
                result = evaluate(tracer)
    return CellResult(configuration, result)


@dataclass(frozen=True)
class FailedCell:
    """A (configuration, policy) cell that failed even after a retry.

    Attributes:
        config_key: The configuration's key ("A" .. "H").
        policy: The policy that was being evaluated.
        error: ``TypeName: message`` of the final exception.
        attempts: How many evaluations were tried (normally 2).
    """

    config_key: str
    policy: str
    error: str
    attempts: int = 2

    def to_dict(self) -> dict:
        """A JSON-serialisable failure record."""
        return {
            "config": self.config_key,
            "policy": self.policy,
            "error": self.error,
            "attempts": self.attempts,
        }


class StudyResult(dict):
    """The cells of a study, keyed by ``(config_key, policy)``.

    A plain mapping to every consumer (tables, benchmarks), plus the
    :attr:`failed_cells` record of any cell whose evaluation raised
    twice — such cells are *absent* from the mapping, and the table
    formatters print them as ``?``/``-``.

    When the study ran with ``capture_timelines=True``,
    :attr:`timelines` maps ``config_key -> policy -> timeline
    document`` (the spans the run registry stores as
    ``timelines.json`` and the HTML report renders).
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.failed_cells: tuple[FailedCell, ...] = ()
        self.timelines: dict[str, dict[str, dict]] = {}

    @property
    def ok(self) -> bool:
        """Whether every cell was evaluated successfully."""
        return not self.failed_cells


def _describe_error(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


#: Per-worker study context, installed once by the pool initializer so
#: the (large) failure trace and access stream are pickled per *worker*,
#: not per task.
_WORKER_CONTEXT: dict = {}


def _init_worker(
    params: StudyParameters,
    trace: FailureTrace,
    access_times: tuple[float, ...],
) -> None:
    _WORKER_CONTEXT["params"] = params
    _WORKER_CONTEXT["trace"] = trace
    _WORKER_CONTEXT["access_times"] = access_times
    _WORKER_CONTEXT["topology"] = testbed_topology()
    _WORKER_CONTEXT["events_per_cell"] = (
        len(trace.events) + len(access_times)
    )
    _WORKER_CONTEXT["events_done"] = 0
    _WORKER_CONTEXT.pop("sampler", None)


def _run_cell_worker(
    task: tuple[str, str, bool, bool, bool],
) -> tuple[
    tuple[str, str],
    CellResult,
    Optional[MetricsRegistry],
    Optional[dict],
]:
    """Process-pool entry point: one (configuration, policy) cell.

    The shared study context comes from :func:`_init_worker`; the task
    itself is just the cell key plus whether to tally metrics, capture
    timelines and sample resources (all returned per cell for the
    parent to merge — registries merge, timeline documents are
    per-cell already, and ``live.proc.*`` gauges ride in the metrics
    registry labelled by worker pid).
    """
    config_key, policy, want_metrics, want_timelines, want_live = task
    metrics = (
        MetricsRegistry() if (want_metrics or want_live) else None
    )
    timeline_sink = None
    extra_sinks: tuple[object, ...] = ()
    if want_timelines:
        from repro.obs.registry.store import TimelineSink

        timeline_sink = TimelineSink()
        extra_sinks = (timeline_sink,)
    cell = run_cell(
        CONFIGURATIONS[config_key],
        policy,
        _WORKER_CONTEXT["params"],
        topology=_WORKER_CONTEXT["topology"],
        trace=_WORKER_CONTEXT["trace"],
        access_times=_WORKER_CONTEXT["access_times"],
        metrics=metrics,
        extra_sinks=extra_sinks,
    )
    if want_live:
        from repro.obs.live.resources import ResourceSampler

        sampler = _WORKER_CONTEXT.get("sampler")
        if sampler is None:
            sampler = _WORKER_CONTEXT["sampler"] = ResourceSampler()
        _WORKER_CONTEXT["events_done"] += _WORKER_CONTEXT["events_per_cell"]
        sampler.tick(
            metrics=metrics,
            events=_WORKER_CONTEXT["events_done"],
            worker=os.getpid(),
        )
    documents = (
        timeline_sink.documents() if timeline_sink is not None else None
    )
    return ((config_key, policy), cell, metrics, documents)


#: Accepted by ``run_study(progress=...)``: ``True`` for a default
#: stderr reporter, or a factory ``(total_cells, events_per_cell) ->
#: StudyProgress`` for custom streams/clocks (tests use this).
ProgressSpec = Union[bool, Callable[[int, int], StudyProgress], None]


class _NullTextStream:
    """Swallow progress lines when live telemetry runs without
    ``progress=True`` (the bus still needs per-cell events)."""

    def write(self, text: str) -> int:
        return len(text)

    def flush(self) -> None:
        pass


def run_study(
    params: Optional[StudyParameters] = None,
    configurations: Optional[Iterable[Configuration]] = None,
    policies: Sequence[str] = PAPER_POLICIES,
    jobs: Optional[int] = None,
    metrics: Optional[MetricsRegistry] = None,
    progress: ProgressSpec = None,
    profiler: Optional["PhaseProfiler"] = None,
    capture_timelines: bool = False,
    bus: Optional["TelemetryBus"] = None,
) -> StudyResult:
    """Run the full study: every configuration against every policy.

    One failure trace and one access stream are generated per study and
    shared by every cell, exactly as the paper measures all policies in
    one simulation.  Returns a :class:`StudyResult` mapping keyed by
    ``(config_key, policy)``.

    A cell whose evaluation raises does **not** abort the study: the
    cell is retried once, and if it fails again it is recorded on the
    result's :attr:`StudyResult.failed_cells` (and omitted from the
    mapping) while every other cell still runs to completion.

    Args:
        params: Simulation parameters (paper defaults when omitted).
        configurations: Placements to evaluate (default: A–H).
        policies: Policy names (default: the paper's six columns).
        jobs: Worker processes for evaluating cells in parallel.  Cells
            are independent given the shared trace, so results are
            bit-identical to the sequential run; ``None`` or ``1`` stays
            in-process.  The trace and access stream are shipped once
            per worker (pool initializer), not once per cell.
        metrics: A registry collecting per-cell wall-clock and
            per-policy decision tallies (see :func:`run_cell`).  In the
            parallel path each worker tallies into its own registry and
            the results are merged here.
        progress: ``True`` to print a throttled progress line (cells
            done, events/s, ETA) to stderr as cells complete, or a
            factory building the :class:`~repro.obs.telemetry.
            StudyProgress` reporter.  The reporter runs in this process
            and is fed as results arrive, so it needs no cross-process
            state and stays correct under the parallel path (the
            ordered ``pool.map`` stream makes its lines trail the
            slowest outstanding cell, never over-report).
        profiler: A :class:`~repro.obs.prof.phases.PhaseProfiler`
            collecting phase timings (``study.trace``, ``study.access``,
            per-cell ``cell``) and the replay's hot-path counters.
            Profiling is in-process by design — it measures *this*
            interpreter — so it cannot be combined with ``jobs > 1``.
        capture_timelines: Fold every cell's quorum verdicts into
            availability timelines (streaming, O(spans) memory — no
            trace is stored) and attach them as
            :attr:`StudyResult.timelines`.  This is what ``repro study
            --record`` stores as ``timelines.json``; in the parallel
            path each worker folds its own cell and ships the finished
            spans back.
        bus: A :class:`~repro.obs.live.bus.TelemetryBus` receiving
            live events: ``study.phase`` transitions, ``study.start``,
            one ``study.cell`` per completion, throttled
            ``resource.sample`` readings and a terminal ``study.done``.
            Like every other hook, ``None`` (the default) costs
            nothing.  The bus lives in this process; in the parallel
            path workers additionally fold ``live.proc.*`` gauges
            (labelled by worker pid) into their per-cell registries,
            which merge through *metrics* as usual.

    Raises:
        ConfigurationError: for ``jobs < 1``, or a *profiler* combined
            with ``jobs > 1``.
    """
    if params is None:
        params = StudyParameters()
    if configurations is None:
        configurations = CONFIGURATIONS.values()
    configurations = list(configurations)
    if jobs is not None and jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if profiler is not None and jobs is not None and jobs > 1:
        raise ConfigurationError(
            "profiling is in-process; run the study with jobs=1 "
            f"(got jobs={jobs})"
        )
    _log.info(
        "study: %d configurations x %d policies, horizon %.0f days, "
        "seed %d, jobs=%s",
        len(configurations), len(policies), params.horizon, params.seed,
        jobs or 1,
    )
    topology = testbed_topology()
    if bus is not None:
        bus.publish("study.phase", phase="generate-trace")
    trace_phase = (
        profiler.phase("study.trace")
        if profiler is not None else contextlib.nullcontext()
    )
    with trace_phase:
        trace = generate_trace(testbed_profiles(), params.horizon, params.seed)
    if bus is not None:
        bus.publish("study.phase", phase="generate-access")
    access_phase = (
        profiler.phase("study.access")
        if profiler is not None else contextlib.nullcontext()
    )
    with access_phase:
        access_times = poisson_times(
            params.access_rate_per_day, trace.horizon, params.seed
        )
    total_cells = len(configurations) * len(policies)
    events_per_cell = len(trace.events) + len(access_times)
    reporter: Optional[StudyProgress] = None
    if progress:
        if callable(progress):
            reporter = progress(total_cells, events_per_cell)
            if bus is not None and reporter._bus is None:
                reporter._bus = bus
        else:
            reporter = StudyProgress(
                total_cells, events_per_cell, metrics=metrics, bus=bus
            )
    elif bus is not None:
        # No progress lines asked for, but the bus still needs one
        # study.cell event per completion: report into a null stream.
        reporter = StudyProgress(
            total_cells, events_per_cell, stream=_NullTextStream(),
            metrics=metrics, bus=bus,
        )
    sampler = None
    if bus is not None:
        from repro.obs.live.resources import ResourceSampler

        sampler = ResourceSampler()
        bus.publish(
            "study.start",
            total_cells=total_cells,
            events_per_cell=events_per_cell,
            configurations=[c.key for c in configurations],
            policies=list(policies),
            horizon=params.horizon,
            seed=params.seed,
            jobs=jobs or 1,
        )
        sampler.tick(bus=bus, metrics=metrics, events=0, force=True)
        bus.publish("study.phase", phase="evaluate")
    cells = StudyResult()
    failed: list[FailedCell] = []
    if capture_timelines:
        from repro.obs.registry.store import TimelineSink
    if jobs is None or jobs == 1:
        for configuration in configurations:
            for policy in policies:
                key = (configuration.key, policy)
                attempts = 0
                cell = None
                last_error = ""
                timeline_sink = TimelineSink() if capture_timelines else None
                retry_delays = _CELL_RETRY.delays()
                while cell is None:
                    attempts += 1
                    if timeline_sink is not None and attempts > 1:
                        timeline_sink = TimelineSink()  # drop partial spans
                    try:
                        cell = run_cell(
                            configuration,
                            policy,
                            params,
                            topology=topology,
                            trace=trace,
                            access_times=access_times,
                            metrics=metrics,
                            profiler=profiler,
                            extra_sinks=(
                                (timeline_sink,)
                                if timeline_sink is not None else ()
                            ),
                        )
                    except Exception as exc:
                        last_error = _describe_error(exc)
                        _log.warning(
                            "cell %s/%s failed (attempt %d): %s",
                            configuration.key, policy, attempts, last_error,
                        )
                        delay = next(retry_delays, None)
                        if delay is None:
                            break
                        if delay > 0:
                            time.sleep(delay)
                if cell is None:
                    failed.append(FailedCell(
                        configuration.key, policy, last_error, attempts,
                    ))
                else:
                    _log.debug("cell %s/%s done: unavailability %.6f",
                               configuration.key, policy, cell.unavailability)
                    cells[key] = cell
                    if timeline_sink is not None:
                        cells.timelines.setdefault(
                            configuration.key, {}
                        ).update(timeline_sink.documents())
                if reporter is not None:
                    reporter.cell_done(key)
                if sampler is not None and reporter is not None:
                    sampler.tick(
                        bus=bus, metrics=metrics,
                        events=reporter.cells_done * events_per_cell,
                    )
        cells.failed_cells = tuple(failed)
        if bus is not None:
            bus.publish(
                "study.done",
                cells=len(cells),
                failed_cells=len(cells.failed_cells),
                ok=cells.ok,
            )
        return cells
    tasks = [
        (configuration.key, policy, metrics is not None, capture_timelines,
         bus is not None)
        for configuration in configurations
        for policy in policies
    ]
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=jobs,
        initializer=_init_worker,
        initargs=(params, trace, access_times),
    ) as pool:
        # Per-task futures (not pool.map): one worker raise must fail
        # one cell, not tear the whole ordered stream down.
        pending = {
            pool.submit(_run_cell_worker, task): (task, 1) for task in tasks
        }
        while pending:
            done, _ = concurrent.futures.wait(
                pending, return_when=concurrent.futures.FIRST_COMPLETED
            )
            for future in done:
                task, attempt = pending.pop(future)
                key = (task[0], task[1])
                try:
                    _, cell, cell_metrics, cell_timelines = future.result()
                except Exception as exc:
                    error = _describe_error(exc)
                    _log.warning("cell %s/%s failed (attempt %d): %s",
                                 key[0], key[1], attempt, error)
                    if attempt < (_CELL_RETRY.max_attempts or 1):
                        try:
                            retry = pool.submit(_run_cell_worker, task)
                        except Exception as submit_exc:
                            # The pool itself broke; record and move on.
                            failed.append(FailedCell(
                                key[0], key[1],
                                _describe_error(submit_exc), attempt,
                            ))
                        else:
                            pending[retry] = (task, attempt + 1)
                            continue
                    else:
                        failed.append(FailedCell(
                            key[0], key[1], error, attempt,
                        ))
                    if reporter is not None:
                        reporter.cell_done(key)
                    continue
                _log.debug("cell %s/%s done: unavailability %.6f",
                           key[0], key[1], cell.unavailability)
                cells[key] = cell
                if metrics is not None and cell_metrics is not None:
                    metrics.merge(cell_metrics)
                if cell_timelines is not None:
                    cells.timelines.setdefault(key[0], {}).update(
                        cell_timelines
                    )
                if reporter is not None:
                    reporter.cell_done(key)
                if sampler is not None and reporter is not None:
                    sampler.tick(
                        bus=bus, metrics=metrics,
                        events=reporter.cells_done * events_per_cell,
                    )
    cells.failed_cells = tuple(failed)
    if bus is not None:
        bus.publish(
            "study.done",
            cells=len(cells),
            failed_cells=len(cells.failed_cells),
            ok=cells.ok,
        )
    return cells
