"""The eight copy placements of the paper's study (Section 4).

Three-copy configurations A–D and four-copy configurations E–H, with the
partition-point commentary taken from the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["Configuration", "CONFIGURATIONS", "configuration"]


@dataclass(frozen=True)
class Configuration:
    """A named placement of physical copies on testbed sites."""

    key: str
    copy_sites: frozenset[int]
    description: str

    @property
    def label(self) -> str:
        """The row label used by the paper, e.g. ``"A: 1, 2, 4"``."""
        return f"{self.key}: {', '.join(map(str, sorted(self.copy_sites)))}"


def _config(key: str, sites: tuple[int, ...], description: str) -> Configuration:
    return Configuration(key, frozenset(sites), description)


#: Configurations A–H, keyed by letter.
CONFIGURATIONS: dict[str, Configuration] = {
    "A": _config("A", (1, 2, 4), "three copies, no partitions possible"),
    "B": _config("B", (1, 2, 6), "three copies, single partition point at site 4"),
    "C": _config("C", (1, 6, 8), "three copies, partition points at sites 4 and 5"),
    "D": _config("D", (6, 7, 8), "three copies, either site 4 or 5 partitions"),
    "E": _config("E", (1, 2, 3, 4), "four copies, no partitions possible"),
    "F": _config("F", (1, 2, 4, 6), "four copies, partition point at site 4"),
    "G": _config("G", (1, 2, 6, 8), "four copies, partition points at sites 4 and 5"),
    "H": _config("H", (1, 2, 7, 8), "two pairs separated by the single partition point at site 5"),
}


def configuration(key: str) -> Configuration:
    """Look up a configuration by its letter (case-insensitive).

    Raises:
        ConfigurationError: for an unknown key.
    """
    try:
        return CONFIGURATIONS[key.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown configuration {key!r}; choose from "
            f"{sorted(CONFIGURATIONS)}"
        ) from None
