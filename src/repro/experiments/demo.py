"""The Section 2 worked example, as a reusable (and traceable) program.

The paper walks one small history: three copies A, B, C on a LAN under
LDV; seven writes; B fails and the quorum shrinks to {A, C}; three more
writes; C fails and A alone — holding the lexicographically greatest
member of P = {A, C} — keeps the file available.  The epilogue is the
paper's cautionary half: A fails too, B restarts alone, and B's read
must be denied, because B can only count 1 of the 3 members of its
(stale) partition set P = {A, B, C}.

``repro demo`` prints this story; :func:`run_demo` also accepts a
:class:`~repro.obs.tracer.Tracer` so the same history yields a
structured decision trace — the fixture
``tests/obs/test_audit.py`` audits to check that every denial maps to
the paper's prose (see :mod:`repro.obs.analysis.audit`).
"""

from __future__ import annotations

import sys
from typing import TYPE_CHECKING, Optional, TextIO

from repro.engine import Cluster, ReplicatedFile
from repro.errors import QuorumNotReachedError
from repro.net.sites import Site
from repro.net.topology import SegmentedTopology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.tracer import Tracer

__all__ = ["run_demo", "SITE_LETTERS"]

#: The paper's site letters for the demo's three copies.
SITE_LETTERS = {1: "A", 2: "B", 3: "C"}


def run_demo(
    stream: Optional[TextIO] = None,
    tracer: Optional["Tracer"] = None,
) -> ReplicatedFile:
    """Replay the Section 2 example, narrating each state to *stream*.

    With a *tracer*, the file emits its full ``op.*`` / ``quorum.*``
    decision trace alongside the narration.  Returns the file so
    callers can inspect the final protocol state.
    """
    out = stream if stream is not None else sys.stdout

    def emit(text: str = "") -> None:
        print(text, file=out)

    emit("Section 2 worked example: copies at A(1), B(2), C(3); LDV.\n")
    topology = SegmentedTopology(
        [Site(1, "A"), Site(2, "B"), Site(3, "C")], {"lan": [1, 2, 3]}
    )
    cluster = Cluster(topology)
    file = ReplicatedFile(cluster, {1, 2, 3}, policy="LDV", initial="v1")
    if tracer is not None:
        file.attach_tracer(tracer)

    def show(step: str) -> None:
        states = file.protocol.replicas
        cells = []
        for sid, label in sorted(SITE_LETTERS.items()):
            st = states.state(sid)
            members = ",".join(
                SITE_LETTERS[m] for m in sorted(st.partition_set)
            )
            cells.append(
                f"{label}: o={st.operation} v={st.version} P={{{members}}}"
            )
        emit(f"{step:<38} {' | '.join(cells)}")

    show("initial state")
    for i in range(7):
        file.write(1, f"write-{i + 2}")
    show("after seven writes")
    cluster.fail_site(2)
    show("B fails (eager LDV shrinks quorum)")
    for i in range(3):
        file.write(1, f"write-{i + 9}")
    show("three more writes by {A, C}")
    cluster.fail_site(3)
    show("C fails; A alone is the majority")
    emit(f"\nfile still available: {file.is_available()}")
    emit(f"read at A -> {file.read(1)!r}")

    # Epilogue — the denial the paper warns about: A fails as well, then
    # B restarts alone.  B's partition set is still the original
    # {A, B, C}, so it counts 1 of 3 and must be refused.
    cluster.fail_site(1)
    emit()
    show("A fails too; no copy is reachable")
    cluster.restart_site(2)
    show("B restarts alone (stale P at B)")
    try:
        file.read(2)
        emit("read at B -> GRANTED (unexpected!)")  # pragma: no cover
    except QuorumNotReachedError as exc:
        emit(f"read at B -> DENIED ({exc})")
    emit(f"\nmessage traffic: {file.counters}")
    return file
