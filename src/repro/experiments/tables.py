"""Regenerating Tables 2 and 3, with the paper's numbers for comparison.

The published values are kept here as data so benchmarks and the CLI can
print *paper vs measured* side by side, and the shape tests can check the
qualitative findings (policy rankings, crossovers) without chasing the
absolute numbers of a 1988 random-number generator.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.registry import PAPER_POLICIES
from repro.experiments.configs import CONFIGURATIONS
from repro.experiments.runner import CellResult

__all__ = [
    "PAPER_TABLE_2",
    "PAPER_TABLE_3",
    "format_comparison",
    "format_intervals",
    "format_mtbf",
    "format_table2",
    "format_table3",
]

#: Table 2 — replicated file unavailabilities (paper, ICDE 1988).
PAPER_TABLE_2: dict[str, dict[str, float]] = {
    "A": {"MCV": 0.002130, "DV": 0.004348, "LDV": 0.000668,
          "ODV": 0.000849, "TDV": 0.000015, "OTDV": 0.000013},
    "B": {"MCV": 0.003871, "DV": 0.008281, "LDV": 0.001214,
          "ODV": 0.001432, "TDV": 0.000109, "OTDV": 0.000066},
    "C": {"MCV": 0.031127, "DV": 0.056428, "LDV": 0.001707,
          "ODV": 0.003492, "TDV": 0.001707, "OTDV": 0.003492},
    "D": {"MCV": 0.069342, "DV": 0.117683, "LDV": 0.053592,
          "ODV": 0.053357, "TDV": 0.034490, "OTDV": 0.031548},
    "E": {"MCV": 0.000608, "DV": 0.000018, "LDV": 0.000012,
          "ODV": 0.000084, "TDV": 0.000000, "OTDV": 0.000000},
    "F": {"MCV": 0.002761, "DV": 0.108034, "LDV": 0.002154,
          "ODV": 0.000947, "TDV": 0.000018, "OTDV": 0.000004},
    "G": {"MCV": 0.002027, "DV": 0.001510, "LDV": 0.000151,
          "ODV": 0.000339, "TDV": 0.000041, "OTDV": 0.000036},
    "H": {"MCV": 0.001408, "DV": 0.004275, "LDV": 0.000171,
          "ODV": 0.000218, "TDV": 0.000020, "OTDV": 0.000043},
}

#: Table 3 — mean duration of unavailable periods, in days (paper).
#: ``None`` marks the paper's "-" entries (never unavailable).
PAPER_TABLE_3: dict[str, dict[str, float | None]] = {
    "A": {"MCV": 0.101968, "DV": 0.210651, "LDV": 0.077353,
          "ODV": 0.084141, "TDV": 0.10764, "OTDV": 0.05115},
    "B": {"MCV": 0.101059, "DV": 0.217369, "LDV": 0.078867,
          "ODV": 0.084387, "TDV": 0.08650, "OTDV": 0.05337},
    "C": {"MCV": 0.944336, "DV": 1.868895, "LDV": 0.085960,
          "ODV": 0.173151, "TDV": 0.085960, "OTDV": 0.173151},
    "D": {"MCV": 3.000469, "DV": 5.850864, "LDV": 7.443789,
          "ODV": 6.293645, "TDV": 7.428305, "OTDV": 7.445393},
    "E": {"MCV": 0.071134, "DV": 0.06363, "LDV": 0.08102,
          "ODV": 0.05417, "TDV": None, "OTDV": None},
    "F": {"MCV": 0.102001, "DV": 5.962853, "LDV": 0.275006,
          "ODV": 0.101756, "TDV": 0.05556, "OTDV": 0.02252},
    "G": {"MCV": 0.084714, "DV": 0.297879, "LDV": 0.07787,
          "ODV": 0.073773, "TDV": 0.12407, "OTDV": 0.04149},
    "H": {"MCV": 0.078933, "DV": 0.142206, "LDV": 0.135054,
          "ODV": 0.060009, "TDV": 0.103171, "OTDV": 0.051964},
}


def _row_label(key: str) -> str:
    return CONFIGURATIONS[key].label


def _format_grid(
    title: str,
    cells: Mapping[tuple[str, str], float | None],
    policies: Sequence[str],
    config_keys: Sequence[str],
    precision: int = 6,
) -> str:
    width = max(10, precision + 4)
    label_width = max(len(_row_label(k)) for k in config_keys) + 2
    header = " " * label_width + "".join(f"{p:>{width}}" for p in policies)
    lines = [title, header, "-" * len(header)]
    for key in config_keys:
        row = [f"{_row_label(key):<{label_width}}"]
        for policy in policies:
            value = cells.get((key, policy))
            if value is None:
                row.append(f"{'-':>{width}}")
            else:
                row.append(f"{value:>{width}.{precision}f}")
        lines.append("".join(row))
    return "\n".join(lines)


def format_table2(
    results: Mapping[tuple[str, str], CellResult],
    policies: Sequence[str] = PAPER_POLICIES,
) -> str:
    """Table 2: replicated file unavailabilities (measured)."""
    config_keys = sorted({key for key, _ in results})
    cells = {k: r.unavailability for k, r in results.items()}
    return _format_grid(
        "Table 2: Replicated File Unavailabilities", cells, policies, config_keys
    )


def format_table3(
    results: Mapping[tuple[str, str], CellResult],
    policies: Sequence[str] = PAPER_POLICIES,
) -> str:
    """Table 3: mean duration of unavailable periods, in days (measured).

    Cells with zero observed unavailable periods print as ``-``, like the
    paper's configuration-E entries for TDV and OTDV.
    """
    config_keys = sorted({key for key, _ in results})
    cells: dict[tuple[str, str], float | None] = {}
    for key, cell in results.items():
        if cell.result.down_periods == 0:
            cells[key] = None
        else:
            cells[key] = cell.mean_down_duration
    return _format_grid(
        "Table 3: Mean Duration of Unavailable Periods (days)",
        cells,
        policies,
        config_keys,
    )


def format_intervals(
    results: Mapping[tuple[str, str], CellResult],
    policies: Sequence[str] = PAPER_POLICIES,
) -> str:
    """Unavailabilities with their 95 % batch-means half-widths.

    The paper: "Batch-means analysis was used to compute 95% confidence
    intervals for all performance indices."
    """
    config_keys = sorted({key for key, _ in results})
    width = 22
    label_width = max(len(_row_label(k)) for k in config_keys) + 2
    header = " " * label_width + "".join(f"{p:>{width}}" for p in policies)
    lines = [
        "Table 2 with 95% confidence intervals (batch means)",
        header,
        "-" * len(header),
    ]
    for key in config_keys:
        row = [f"{_row_label(key):<{label_width}}"]
        for policy in policies:
            cell = results.get((key, policy))
            if cell is None:
                row.append(f"{'?':>{width}}")
                continue
            interval = cell.result.interval
            text = f"{interval.mean:.6f} ±{interval.half_width:.6f}"
            row.append(f"{text:>{width}}")
        lines.append("".join(row))
    return "\n".join(lines)


def format_mtbf(
    results: Mapping[tuple[str, str], CellResult],
    policies: Sequence[str] = PAPER_POLICIES,
) -> str:
    """Mean time between outage starts, in days — the file-level
    reliability companion to Tables 2 and 3 (``-`` = never unavailable)."""
    config_keys = sorted({key for key, _ in results})
    cells: dict[tuple[str, str], float | None] = {}
    for key, cell in results.items():
        mtbf = cell.result.mean_time_between_outages
        cells[key] = None if mtbf == float("inf") else mtbf
    return _format_grid(
        "File reliability: mean days between unavailability periods",
        cells,
        policies,
        config_keys,
        precision=1,
    )


def format_comparison(
    results: Mapping[tuple[str, str], CellResult],
    paper: Mapping[str, Mapping[str, float | None]],
    title: str,
    use_durations: bool = False,
    policies: Sequence[str] = PAPER_POLICIES,
) -> str:
    """Paper vs measured, interleaved row pairs."""
    config_keys = sorted({key for key, _ in results})
    width = 11
    label_width = max(len(_row_label(k)) for k in config_keys) + 11
    header = " " * label_width + "".join(f"{p:>{width}}" for p in policies)
    lines = [title, header, "-" * len(header)]
    for key in config_keys:
        paper_row = [f"{_row_label(key) + '  (paper)':<{label_width}}"]
        ours_row = [f"{_row_label(key) + '  (ours)':<{label_width}}"]
        for policy in policies:
            published = paper.get(key, {}).get(policy)
            paper_row.append(
                f"{'-':>{width}}" if published is None else f"{published:>{width}.6f}"
            )
            cell = results.get((key, policy))
            if cell is None:
                ours_row.append(f"{'?':>{width}}")
            elif use_durations:
                if cell.result.down_periods == 0:
                    ours_row.append(f"{'-':>{width}}")
                else:
                    ours_row.append(f"{cell.mean_down_duration:>{width}.6f}")
            else:
                ours_row.append(f"{cell.unavailability:>{width}.6f}")
        lines.append("".join(paper_row))
        lines.append("".join(ours_row))
    return "\n".join(lines)
