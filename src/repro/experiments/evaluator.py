"""Replaying one failure trace against one consistency policy.

The measurement model (DESIGN.md §3):

* The file is *available at time t* iff an access arriving at *t* in some
  partition block would be granted — a pure probe of (protocol state,
  network view) that never mutates state.
* Eager protocols (MCV, DV, LDV, TDV) synchronise after **every** site
  transition, modelling the connection vector's instantaneous state.
* Optimistic protocols (ODV, OTDV) synchronise only at **access epochs**
  (default: Poisson, one access per day).
* Between events the availability verdict cannot change, so the tracker
  integrates downtime exactly.
"""

from __future__ import annotations

import contextlib
import math
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.prof.phases import PhaseProfiler
    from repro.obs.tracer import Tracer

from repro.core.base import VotingProtocol
from repro.core.registry import make_protocol
from repro.errors import ConfigurationError
from repro.failures.trace import FailureTrace
from repro.net.topology import Topology
from repro.replica.state import ReplicaSet
from repro.stats.batch_means import BatchMeans, ConfidenceInterval
from repro.stats.tracker import AvailabilityTracker

__all__ = [
    "EvaluationResult",
    "business_hours_times",
    "evaluate_policy",
    "periodic_times",
    "poisson_times",
]


def poisson_times(rate_per_day: float, horizon: float, seed: int) -> tuple[float, ...]:
    """Access epochs of a Poisson process with the given daily rate."""
    if rate_per_day <= 0:
        raise ConfigurationError(f"access rate must be > 0, got {rate_per_day}")
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be > 0, got {horizon}")
    rng = random.Random(f"access:{seed}")
    times: list[float] = []
    t = 0.0
    mean_gap = 1.0 / rate_per_day
    while True:
        t += -mean_gap * math.log(1.0 - rng.random())
        if t >= horizon:
            return tuple(times)
        times.append(t)


def business_hours_times(
    per_day: float,
    horizon: float,
    seed: int,
    day_start: float = 8.0 / 24.0,
    day_end: float = 18.0 / 24.0,
) -> tuple[float, ...]:
    """Access epochs confined to a daily working window.

    *per_day* accesses are placed uniformly at random inside each day's
    ``[day_start, day_end)`` window — the realistic pattern for the
    paper's departmental files, and the stress case for optimistic
    protocols, whose state can go a whole night without refresh.
    """
    if per_day <= 0:
        raise ConfigurationError(f"accesses per day must be > 0, got {per_day}")
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be > 0, got {horizon}")
    if not 0.0 <= day_start < day_end <= 1.0:
        raise ConfigurationError(
            f"need 0 <= day_start < day_end <= 1; got [{day_start}, {day_end}]"
        )
    rng = random.Random(f"business:{seed}")
    count_per_day = max(1, round(per_day))
    times: list[float] = []
    day = 0
    while day < horizon:
        for _ in range(count_per_day):
            t = day + day_start + rng.random() * (day_end - day_start)
            if 0 < t < horizon:
                times.append(t)
        day += 1
    times.sort()
    return tuple(times)


def periodic_times(
    period_days: float, horizon: float, offset: float = 0.0
) -> tuple[float, ...]:
    """Deterministic access epochs every *period_days* (e.g. a nightly
    batch job touching the file), the alternative to :func:`poisson_times`."""
    if period_days <= 0:
        raise ConfigurationError(f"period must be > 0, got {period_days}")
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be > 0, got {horizon}")
    if not 0.0 <= offset < period_days:
        raise ConfigurationError(
            f"offset must be in [0, period); got {offset} of {period_days}"
        )
    times = []
    k = 0 if offset > 0 else 1
    while True:
        t = offset + k * period_days
        if t >= horizon:
            return tuple(times)
        if t > 0:
            times.append(t)
        k += 1


@dataclass(frozen=True)
class EvaluationResult:
    """Availability statistics of one (trace, policy, placement) run.

    Attributes:
        policy: Policy abbreviation.
        unavailability: Fraction of post-warm-up time the file was
            inaccessible (a Table 2 cell).
        mean_down_duration: Mean length of an unavailable period, in days
            (a Table 3 cell); 0.0 when the file never went down.
        down_periods: Number of unavailable periods observed.
        observed_time: Length of the post-warm-up window, in days.
        interval: 95 % batch-means confidence interval on unavailability.
        committed_operations: Highest operation number reached by any
            copy — a proxy for the protocol's state-update traffic.
        synchronizations: How many times the protocol was synchronised
            (per network event for eager policies, per access otherwise).
    """

    policy: str
    unavailability: float
    mean_down_duration: float
    down_periods: int
    observed_time: float
    interval: ConfidenceInterval
    committed_operations: int
    synchronizations: int
    down_durations: tuple[float, ...] = ()

    @property
    def availability(self) -> float:
        return 1.0 - self.unavailability

    @property
    def mean_time_between_outages(self) -> float:
        """Mean time between the starts of unavailable periods, in days —
        the file-level reliability figure (``inf`` if never unavailable)."""
        if self.down_periods == 0:
            return math.inf
        return self.observed_time / self.down_periods

    def down_duration_quantile(self, q: float) -> float:
        """Quantile of the outage-duration distribution, in days.

        Table 3 reports only the mean; tails matter operationally (a
        p95 of a week reads very differently from a p95 of an hour).
        Linear interpolation between order statistics; 0.0 when the file
        never went down.

        Raises:
            ConfigurationError: for q outside [0, 1].
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if not self.down_durations:
            return 0.0
        ordered = sorted(self.down_durations)
        if len(ordered) == 1:
            return ordered[0]
        position = q * (len(ordered) - 1)
        index = min(int(position), len(ordered) - 2)
        fraction = position - index
        return ordered[index] + fraction * (ordered[index + 1] - ordered[index])


#: Either a registry abbreviation or a factory building a protocol over a
#: replica set (for extensions such as witnesses or weighted voting).
PolicySpec = Union[str, Callable[[ReplicaSet], VotingProtocol]]


def evaluate_policy(
    policy: PolicySpec,
    topology: Topology,
    copy_sites: frozenset[int],
    trace: FailureTrace,
    warmup: float = 360.0,
    batches: int = 20,
    access_times: tuple[float, ...] = (),
    tracer: Optional["Tracer"] = None,
    profiler: Optional["PhaseProfiler"] = None,
) -> EvaluationResult:
    """Replay *trace* against one policy and measure availability.

    Args:
        policy: Abbreviation accepted by :func:`repro.core.make_protocol`.
        topology: The network the sites live on.
        copy_sites: Sites holding physical copies (all must be in the
            topology and the trace).
        trace: The shared failure history.
        warmup: Transient discarded before measurement, in days (the
            paper uses 360).
        batches: Number of equal-time batches for the confidence interval.
        access_times: Access epochs; required for optimistic policies,
            ignored by eager ones.
        tracer: Attached to the protocol for the replay, so every quorum
            test emits a decision record (``None``, the default, adds no
            per-event work).
        profiler: Attached to the protocol for the replay and fed the
            hot-path counts of the merge loop (site transitions,
            accesses, synchronizations); the whole replay is timed as a
            ``replay`` phase.  ``None`` (the default) adds no per-event
            work — the check is hoisted out of the loop.
    """
    unknown = copy_sites - topology.site_ids
    if unknown:
        raise ConfigurationError(f"copy sites {sorted(unknown)} not in topology")
    missing = copy_sites - trace.site_ids
    if missing:
        raise ConfigurationError(f"copy sites {sorted(missing)} not in trace")
    if warmup < 0 or warmup >= trace.horizon:
        raise ConfigurationError(
            f"warmup must be in [0, horizon); got {warmup} of {trace.horizon}"
        )
    if batches < 1:
        raise ConfigurationError(f"batches must be >= 1, got {batches}")

    replicas = ReplicaSet(copy_sites)
    if isinstance(policy, str):
        protocol = make_protocol(policy, replicas)
    else:
        protocol = policy(replicas)
    if tracer is not None:
        protocol.attach_tracer(tracer)
    if profiler is not None:
        protocol.attach_profiler(profiler)
    if not protocol.eager and not access_times:
        raise ConfigurationError(
            f"{protocol.name} is optimistic; supply access_times "
            "(e.g. poisson_times(1.0, trace.horizon, seed))"
        )

    up = set(trace.site_ids)
    view = topology.view(up)
    if tracer is not None:
        tracer.set_time(0.0)
    tracker = AvailabilityTracker(
        0.0,
        initially_up=protocol.is_available(view),
        warmup=warmup,
        keep_periods=True,
    )

    synchronizations = 0
    trace_events = trace.events
    accesses = access_times if not protocol.eager else ()
    i = j = 0
    n_trace, n_access = len(trace_events), len(accesses)
    # Hoisted: a profiler cannot (re)attach mid-replay, so the disabled
    # path pays nothing inside the merge loop.
    profiling = profiler is not None
    replay_phase = (
        profiler.phase("replay", policy=protocol.name)
        if profiling else contextlib.nullcontext()
    )
    with replay_phase:
        while i < n_trace or j < n_access:
            # Merge the two streams; on exact ties apply the site
            # transition first so the access observes the
            # post-transition network.
            take_trace = j >= n_access or (
                i < n_trace and trace_events[i].time <= accesses[j]
            )
            if take_trace:
                event = trace_events[i]
                i += 1
                if event.up:
                    up.add(event.site_id)
                else:
                    up.discard(event.site_id)
                view = topology.view(up)
                now = event.time
                if tracer is not None:
                    tracer.set_time(now)
                if profiling:
                    profiler.count("replay.transitions")
                if protocol.eager:
                    protocol.synchronize(view)
                    synchronizations += 1
                else:
                    # Restarting sites run their own RECOVER loops
                    # without waiting for an access (see
                    # VotingProtocol.recover_stale); quorum adjustment
                    # still waits for the access stream.
                    protocol.recover_stale(view)
            else:
                now = accesses[j]
                j += 1
                if tracer is not None:
                    tracer.set_time(now)
                if profiling:
                    profiler.count("replay.accesses")
                protocol.synchronize(view)
                synchronizations += 1
            tracker.set_state(now, protocol.is_available(view))
    tracker.finish(trace.horizon)

    interval = _batch_interval(tracker, warmup, trace.horizon, batches)
    committed = max(replicas.state(s).operation for s in copy_sites)
    return EvaluationResult(
        policy=protocol.name,
        unavailability=tracker.unavailability(),
        mean_down_duration=tracker.mean_down_duration(),
        down_periods=tracker.down_period_count,
        observed_time=tracker.observed_time,
        interval=interval,
        committed_operations=committed,
        synchronizations=synchronizations,
        down_durations=tuple(p.duration for p in tracker.periods),
    )


def _batch_interval(
    tracker: AvailabilityTracker,
    warmup: float,
    horizon: float,
    batches: int,
) -> ConfidenceInterval:
    """Per-batch unavailability means over equal spans of observed time."""
    span = (horizon - warmup) / batches
    means = BatchMeans()
    for k in range(batches):
        lo = warmup + k * span
        hi = lo + span
        down = 0.0
        for period in tracker.periods:
            clip = period.clipped(lo, hi)
            if clip is not None:
                down += clip.duration
        means.add(down / span)
    return means.interval()
