"""The public replicated-file API.

A :class:`ReplicatedFile` pairs a voting protocol (consistency state)
with a :class:`~repro.replica.store.VersionedStore` (actual payloads) and
keeps the two in lock-step: every state commit that advances a copy's
version is accompanied by the corresponding data movement, so the
end-to-end guarantee — *a granted read returns the value of the most
recent granted write* — is directly observable and is what the property
tests assert.

Message accounting follows the paper's operation structure (see
:mod:`repro.engine.counters`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.tracer import Tracer

from repro.core.base import DynamicVotingFamily, Verdict, VotingProtocol
from repro.core.registry import make_protocol
from repro.engine.cluster import Cluster
from repro.engine.counters import MessageCounters
from repro.errors import (
    ConfigurationError,
    EngineError,
    QuorumNotReachedError,
    SiteUnavailableError,
)
from repro.net.views import NetworkView
from repro.replica.state import ReplicaSet
from repro.replica.store import VersionedStore

__all__ = ["ReplicatedFile"]


class ReplicatedFile:
    """One replicated value managed by a voting protocol on a cluster.

    Args:
        cluster: The environment holding site health.
        copy_sites: Sites storing physical copies.
        policy: Either a policy abbreviation (``"MCV"``, ``"ODV"``, ...)
            or a ready :class:`~repro.core.base.VotingProtocol` whose
            replica set covers exactly *copy_sites*.
        initial: Initial payload installed at every copy as version 1.
        name: Label used in error messages.

    Files register with the cluster: *eager* protocols are re-synchronised
    (recoveries + quorum adjustment, with message costs) after every
    environment change; *optimistic* ones only when an operation or an
    explicit :meth:`synchronize` runs.
    """

    def __init__(
        self,
        cluster: Cluster,
        copy_sites: frozenset[int] | set[int],
        policy: Union[str, VotingProtocol] = "ODV",
        initial: Any = None,
        name: str = "file",
    ):
        copy_sites = frozenset(copy_sites)
        unknown = copy_sites - cluster.topology.site_ids
        if unknown:
            raise ConfigurationError(
                f"copy sites {sorted(unknown)} are not in the cluster"
            )
        self._cluster = cluster
        self.name = name
        if isinstance(policy, str):
            self._protocol = make_protocol(policy, ReplicaSet(copy_sites))
        else:
            if policy.copy_sites != copy_sites:
                raise ConfigurationError(
                    f"protocol covers copies {sorted(policy.copy_sites)}, "
                    f"file expects {sorted(copy_sites)}"
                )
            self._protocol = policy
        # Witness-style protocols keep payloads only at full data copies.
        self._store = VersionedStore(self._protocol.data_sites, initial)
        self._counters = MessageCounters()
        self._tracer: Optional["Tracer"] = None
        cluster.register(self)

    def attach_tracer(self, tracer: Optional["Tracer"]) -> "ReplicatedFile":
        """Trace this file's operations and its protocol's quorum decisions.

        The tracer is forwarded to the protocol (``quorum.*`` records)
        and the file itself emits ``op.read`` / ``op.write`` /
        ``op.recover`` records.  Pass ``None`` to detach.  Returns
        ``self`` for chaining.
        """
        self._tracer = tracer
        self._protocol.attach_tracer(tracer)
        return self

    def _trace_op(self, kind: str, site_id: int, verdict: Verdict) -> None:
        if self._tracer is not None:
            self._tracer.record(
                kind,
                file=self.name,
                site=site_id,
                granted=verdict.granted,
                reason=verdict.reason,
            )

    # ------------------------------------------------------------------
    @property
    def protocol(self) -> VotingProtocol:
        return self._protocol

    @property
    def copy_sites(self) -> frozenset[int]:
        return self._protocol.copy_sites

    @property
    def counters(self) -> MessageCounters:
        """Cumulative message accounting for this file."""
        return self._counters

    def value_at(self, site_id: int) -> Any:
        """The payload stored at one copy (no quorum check; diagnostic)."""
        return self._store.get(site_id)

    def version_at(self, site_id: int) -> int:
        """The data version stored at one copy (diagnostic)."""
        return self._store.version_at(site_id)

    # ------------------------------------------------------------------
    # availability probes (pure)
    # ------------------------------------------------------------------
    def is_available(self) -> bool:
        """Whether an access from *some* site would be granted now."""
        return self._protocol.is_available(self._cluster.view())

    def available_from(self, site_id: int) -> bool:
        """Whether an access initiated at *site_id* would be granted now."""
        view = self._cluster.view()
        if not view.is_up(site_id):
            return False
        return self._protocol.evaluate_block(view, view.block_of(site_id)).granted

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def read(self, at_site: int) -> Any:
        """Read the file from *at_site* (Figure 1 / Figure 5).

        Returns the current payload.

        Raises:
            SiteUnavailableError: if *at_site* is down.
            QuorumNotReachedError: if the majority test fails.
        """
        view = self._view_for(at_site)
        verdict = self._protocol.read(view, at_site)
        self._account_operation(verdict, at_site)
        self._trace_op("op.read", at_site, verdict)
        if not verdict.granted:
            raise QuorumNotReachedError(
                f"read of {self.name!r} denied at site {at_site}: {verdict.reason}"
            )
        sources = verdict.newest & self._protocol.data_sites
        if not sources:  # pragma: no cover - protocols deny this case
            raise EngineError("granted read with no data-holding source")
        source = min(sources)
        if at_site not in verdict.newest:
            self._counters.data_transfers += 1
        if self._protocol.commits_on_read:
            self._counters.commits += len(verdict.newest)
        return self._store.get(source)

    def write(self, at_site: int, value: Any) -> None:
        """Write *value* from *at_site* (Figure 2 / Figure 6).

        Raises:
            SiteUnavailableError: if *at_site* is down.
            QuorumNotReachedError: if the majority test fails.
        """
        view = self._view_for(at_site)
        verdict = self._protocol.write(view, at_site)
        self._account_operation(verdict, at_site)
        self._trace_op("op.write", at_site, verdict)
        if not verdict.granted:
            raise QuorumNotReachedError(
                f"write of {self.name!r} denied at site {at_site}: {verdict.reason}"
            )
        # The payload goes to every reachable data copy whose state the
        # protocol just advanced: the dynamic family commits to S
        # (verdict.newest), while the static protocols bring *all*
        # reachable copies to the new version.
        replicas = self._protocol.replicas
        new_version = max(
            replicas.state(s).version for s in verdict.reachable
        )
        targets = frozenset(
            s for s in verdict.reachable & self._protocol.data_sites
            if replicas.state(s).version == new_version
        )
        for site_id in targets:
            self._store.put(site_id, new_version, value)
        self._counters.commits += len(targets)
        self._counters.data_transfers += len(targets - {at_site})

    def recover_site(self, site_id: int) -> bool:
        """One attempt of the RECOVER loop for the copy at *site_id*.

        Returns ``True`` when the copy rejoined the partition set (the
        paper's RECOVER retries "until successful"; callers loop).
        """
        view = self._view_for(site_id)
        verdict = self._protocol.recover(view, site_id)
        self._account_operation(verdict, site_id)
        self._trace_op("op.recover", site_id, verdict)
        if not verdict.granted:
            return False
        self._clone_payload(site_id, verdict)
        new_set = verdict.newest | {site_id}
        self._counters.commits += len(new_set)
        return True

    def synchronize(self) -> bool:
        """Recover every reachable stale copy and adjust the quorum.

        For optimistic protocols this is the state maintenance that rides
        on an access; for eager ones the cluster triggers it after every
        environment change.  Returns ``True`` if the file was reachable
        from its majority partition.
        """
        return self._synchronize(self._cluster.view())

    # ------------------------------------------------------------------
    # cluster callback
    # ------------------------------------------------------------------
    def on_network_change(self, view: NetworkView) -> None:
        """Called by the cluster after every site/link transition."""
        if not self._protocol.eager:
            return
        if isinstance(self._protocol, DynamicVotingFamily):
            self._synchronize(view)
        else:
            # Static protocols (MCV) have nothing to maintain; Available
            # Copy tracks its current set and clones data on reintegration.
            self._protocol.synchronize(view)
            self._mirror_store(view)

    # ------------------------------------------------------------------
    def _synchronize(self, view: NetworkView) -> bool:
        copies = self._protocol.copy_sites
        for _ in range(len(copies) + 2):
            verdict = self._protocol.evaluate(view)
            self._account_probe(verdict)
            if not verdict.granted:
                return False
            stale = sorted((copies & verdict.block) - verdict.current)
            if stale:
                target = stale[0]
                recover_verdict = self._protocol.recover(view, target)
                if not recover_verdict.granted:  # pragma: no cover - defensive
                    raise EngineError(
                        f"recovery of site {target} denied inside the "
                        "majority partition"
                    )
                self._clone_payload(target, recover_verdict)
                self._counters.commits += len(recover_verdict.newest | {target})
                continue
            if verdict.partition_set != verdict.newest:
                anchor = min(verdict.current)
                null_op = self._protocol.read(view, anchor)
                self._counters.commits += len(null_op.newest)
            return True
        raise EngineError("synchronize failed to converge")  # pragma: no cover

    def _mirror_store(self, view: NetworkView) -> None:
        """Bring store payloads in line with state versions after a
        protocol-internal synchronisation (used by Available Copy)."""
        replicas = self._protocol.replicas
        for block in view.blocks:
            copies = sorted(self._protocol.data_sites & block)
            for target in copies:
                need = replicas.state(target).version
                if self._store.version_at(target) >= need:
                    continue
                source = next(
                    (s for s in copies if self._store.version_at(s) >= need),
                    None,
                )
                if source is None:  # pragma: no cover - defensive
                    raise EngineError(
                        f"no reachable payload source for site {target} "
                        f"at version {need}"
                    )
                self._store.clone(source, target)
                self._counters.data_transfers += 1

    def _clone_payload(self, site_id: int, verdict: Verdict) -> None:
        """Mirror RECOVER's "copy the file from site m" in the store.

        Witnesses neither hold nor need payloads; data sources are the
        newest *full* copies (the protocol guarantees one is reachable
        whenever it grants).
        """
        data_sites = self._protocol.data_sites
        if site_id not in data_sites:
            return
        sources = verdict.newest & data_sites
        if not sources:  # pragma: no cover - protocols deny this case
            raise EngineError("granted recovery with no data-holding source")
        source = min(sources)
        if self._store.version_at(site_id) < self._store.version_at(source):
            self._store.clone(source, site_id)
            self._counters.data_transfers += 1

    # ------------------------------------------------------------------
    def _view_for(self, at_site: int) -> NetworkView:
        view = self._cluster.view()
        if at_site not in view.topology.site_ids:
            raise ConfigurationError(f"no site {at_site} in cluster")
        if not view.is_up(at_site):
            raise SiteUnavailableError(
                f"site {at_site} is down; cannot originate an operation"
            )
        return view

    def _account_operation(self, verdict: Verdict, at_site: int) -> None:
        participants = len(self._protocol.copy_sites)
        self._counters.operations += 1
        self._counters.state_requests += max(0, participants - 1)
        replies = len(verdict.reachable - {at_site})
        self._counters.state_replies += replies
        if not verdict.granted:
            self._counters.denials += 1

    def _account_probe(self, verdict: Verdict) -> None:
        participants = len(self._protocol.copy_sites)
        self._counters.operations += 1
        self._counters.state_requests += max(0, participants - 1)
        self._counters.state_replies += max(0, len(verdict.reachable) - 1)
        if not verdict.granted:
            self._counters.denials += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ReplicatedFile {self.name!r} policy={self._protocol.name} "
            f"copies={sorted(self.copy_sites)}>"
        )
