"""A genuinely message-passing execution of the voting protocols.

:class:`MessageCluster` runs the paper's algorithms the way a deployment
would: each copy is a :class:`SiteActor` owning its stable storage (the
``(o, v, P)`` triple plus the payload) and a mailbox; a coordinator at
the requesting site broadcasts START, *decides from the replies it
actually received*, and sends COMMITs.  Nothing reads another site's
state directly, so this layer demonstrates that the protocols need only
message-visible information.

Two deliberate consequences:

* the optimistic protocols' efficiency is visible as plain message
  counts (the :class:`~repro.engine.transport.Network` tallies);
* the **lineage guard is not implementable here** — it needs knowledge a
  message exchange cannot provide (the globally newest generation).  The
  topological protocols therefore run with the *published* rule, and the
  sequential fork hazard of DESIGN.md §3 can be reproduced over real
  messages (see ``tests/engine/test_actors.py``).

For availability studies use the state-level evaluator; this layer is
for protocol demonstration and validation.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Type

from repro.core.base import DynamicVotingFamily
from repro.core.lexicographic import LexicographicDynamicVoting
from repro.engine.transport import (
    CommitMessage,
    DataReply,
    DataRequest,
    FaultStage,
    Mailbox,
    Message,
    Network,
    StateReply,
    StateRequest,
)
from repro.errors import (
    ConfigurationError,
    EngineError,
    ProtocolError,
    QuorumNotReachedError,
    SiteUnavailableError,
)
from repro.net.topology import Topology
from repro.net.views import NetworkView
from repro.obs.tracer import Tracer
from repro.replica.state import ReplicaSet, ReplicaState

__all__ = ["SiteActor", "MessageCluster"]


class SiteActor:
    """One copy: stable state, payload, and message handling.

    With a *tracer* attached, every applied COMMIT emits a
    ``site.commit`` record (the invariant monitor's per-replica feed).
    ``tolerate_stale=True`` makes the actor *ignore* a COMMIT that would
    move its ``(o, v)`` backwards — the signature of a message a fault
    pipeline delayed past later commits — recording a
    ``site.stale_commit`` instead of raising; the default remains the
    strict fail-fast behaviour.
    """

    def __init__(self, site_id: int, copy_sites: frozenset[int],
                 initial: Any, tracer: Optional[Tracer] = None,
                 tolerate_stale: bool = False):
        self.site_id = site_id
        self.state = ReplicaState(site_id, partition_set=copy_sites)
        self.payload = initial
        self.payload_version = 1
        self.mailbox = Mailbox(site_id)
        self.tracer = tracer
        self.tolerate_stale = tolerate_stale
        self.stale_commits = 0

    def step(self, view: NetworkView, network: Network) -> None:
        """Process every queued message, sending any replies."""
        for message in self.mailbox.drain():
            self._handle(message, view, network)

    def _handle(self, message: Message, view: NetworkView,
                network: Network) -> None:
        if isinstance(message, StateRequest):
            network.send(view, StateReply(
                sender=self.site_id,
                receiver=message.sender,
                round_id=message.round_id,
                operation=self.state.operation,
                version=self.state.version,
                partition_set=self.state.partition_set,
            ))
        elif isinstance(message, CommitMessage):
            self._apply_commit(message)
        elif isinstance(message, DataRequest):
            network.send(view, DataReply(
                sender=self.site_id,
                receiver=message.sender,
                round_id=message.round_id,
                version=self.payload_version,
                payload=self.payload,
            ))
        elif isinstance(message, (StateReply, DataReply)):
            # A reply that reached this actor's queue instead of being
            # drained by a coordinating operation is a delayed answer to
            # a coordination round that has already ended; discard it.
            pass
        else:  # pragma: no cover - defensive
            raise EngineError(f"unhandled message {message!r}")

    def _apply_commit(self, message: CommitMessage) -> None:
        try:
            self.state.commit(
                message.operation, message.version, message.partition_set
            )
        except ProtocolError:
            if not self.tolerate_stale:
                raise
            self.stale_commits += 1
            if self.tracer is not None:
                self.tracer.record(
                    "site.stale_commit",
                    site=self.site_id,
                    operation=message.operation,
                    version=message.version,
                    stored_operation=self.state.operation,
                    stored_version=self.state.version,
                )
            return
        if message.carries_payload:
            self.payload = message.payload
            self.payload_version = message.version
        if self.tracer is not None:
            self.tracer.record(
                "site.commit",
                site=self.site_id,
                operation=message.operation,
                version=message.version,
                partition_set=message.partition_set,
                sender=message.sender,
            )


class MessageCluster:
    """Copies as actors; operations as explicit message exchanges.

    Args:
        topology: The network.
        copy_sites: Sites holding copies (each becomes an actor).
        protocol: A :class:`DynamicVotingFamily` subclass supplying the
            decision rules (tie-break / topological flags).  The
            coordinator evaluates them over the replies it collected;
            the lineage guard is forced off (see module docstring).
        initial: Initial payload.
        tracer: Structured-event tracer; quorum decisions and per-site
            commits are recorded through it (chaos monitoring).
        pipeline: Fault stages installed into the :class:`Network`.
        tolerate_stale: Forwarded to every :class:`SiteActor`.
    """

    def __init__(
        self,
        topology: Topology,
        copy_sites: frozenset[int] | set[int],
        protocol: Type[DynamicVotingFamily] = LexicographicDynamicVoting,
        initial: Any = None,
        tracer: Optional[Tracer] = None,
        pipeline: Sequence[FaultStage] = (),
        tolerate_stale: bool = False,
    ):
        copy_sites = frozenset(copy_sites)
        unknown = copy_sites - topology.site_ids
        if unknown:
            raise ConfigurationError(f"copy sites {sorted(unknown)} unknown")
        if not issubclass(protocol, DynamicVotingFamily):
            raise ConfigurationError(
                "MessageCluster runs the dynamic-voting family; got "
                f"{protocol!r}"
            )
        self._topology = topology
        self._copy_sites = copy_sites
        self._tracer = tracer
        # The published rule: decisions use only message-visible state.
        self._rules: Type[DynamicVotingFamily] = type(
            f"_MessageLevel{protocol.__name__}",
            (protocol,),
            {"lineage_guard": False},
        )
        self._actors = {
            sid: SiteActor(sid, copy_sites, initial, tracer=tracer,
                           tolerate_stale=tolerate_stale)
            for sid in copy_sites
        }
        mailboxes = {a.site_id: a.mailbox for a in self._actors.values()}
        # Non-copy sites get a mailbox too: any site may coordinate.
        for sid in topology.site_ids - copy_sites:
            mailboxes[sid] = Mailbox(sid)
        self._mailboxes = mailboxes
        self.network = Network(mailboxes, pipeline=pipeline)
        self._up: set[int] = set(topology.site_ids)
        self._round = 0
        self._profiler = None

    def attach_profiler(self, profiler) -> None:
        """Attach (or, with ``None``, detach) a
        :class:`~repro.obs.prof.phases.PhaseProfiler`.

        Attached, every read/write/recover operation is counted and the
        network tallies sends by message type; detached (the default)
        each operation pays one ``None`` check.
        """
        self._profiler = profiler
        self.network.attach_profiler(profiler)

    # ------------------------------------------------------------------
    @property
    def copy_sites(self) -> frozenset[int]:
        return self._copy_sites

    def actor(self, site_id: int) -> SiteActor:
        """The actor holding the copy at *site_id* (diagnostics)."""
        try:
            return self._actors[site_id]
        except KeyError:
            raise ConfigurationError(f"no copy at site {site_id}") from None

    def fail_site(self, site_id: int) -> None:
        """Take *site_id* down; it stops answering messages."""
        self._up.discard(site_id)

    def restart_site(self, site_id: int) -> None:
        """Bring *site_id* back up with whatever state it last stored."""
        self._up.add(site_id)

    def view(self) -> NetworkView:
        """A snapshot of the current network state."""
        return self._topology.view(self._up)

    # ------------------------------------------------------------------
    # operations (each is a full message exchange)
    # ------------------------------------------------------------------
    def read(self, at_site: int) -> Any:
        """READ from *at_site*, purely by messages (Figure 1/5)."""
        if self._profiler is not None:
            self._profiler.count("engine.op.read")
        replies, view = self._start(at_site)
        verdict = self._decide(replies, view, at_site)
        newest = verdict.newest
        value = self._fetch_payload(at_site, min(newest), view)
        anchor = replies[min(verdict.current)]
        self._commit(at_site, view, newest,
                     anchor.operation + 1, anchor.version)
        return value

    def write(self, at_site: int, value: Any) -> None:
        """WRITE from *at_site* (Figure 2/6): payload rides the COMMIT."""
        if self._profiler is not None:
            self._profiler.count("engine.op.write")
        replies, view = self._start(at_site)
        verdict = self._decide(replies, view, at_site)
        anchor = replies[min(verdict.current)]
        self._commit(at_site, view, verdict.newest,
                     anchor.operation + 1, anchor.version + 1,
                     payload=value, carries_payload=True)

    def recover(self, at_site: int) -> bool:
        """One RECOVER attempt by the copy at *at_site* (Figure 3/7)."""
        if at_site not in self._copy_sites:
            raise ConfigurationError(f"no copy at site {at_site}")
        if self._profiler is not None:
            self._profiler.count("engine.op.recover")
        try:
            replies, view = self._start(at_site)
            verdict = self._decide(replies, view, at_site)
        except QuorumNotReachedError:
            return False
        anchor = replies[min(verdict.current)]
        me = self._actors[at_site]
        if me.state.version < anchor.version:
            source = min(verdict.newest)
            payload_reply = self._exchange_data(at_site, source, view)
            me.payload = payload_reply.payload
            me.payload_version = payload_reply.version
        self._commit(at_site, view, verdict.newest | {at_site},
                     anchor.operation + 1, anchor.version)
        return True

    def is_available_from(self, at_site: int) -> bool:
        """Probe by actually running the START round (messages count)."""
        try:
            replies, view = self._start(at_site)
            self._decide(replies, view, at_site)
            return True
        except (QuorumNotReachedError, SiteUnavailableError):
            return False

    # ------------------------------------------------------------------
    def _start(self, at_site: int) -> tuple[dict[int, StateReply], NetworkView]:
        view = self.view()
        if at_site not in self._topology.site_ids:
            raise ConfigurationError(f"no site {at_site}")
        if not view.is_up(at_site):
            raise SiteUnavailableError(f"site {at_site} is down")
        self._round += 1
        round_id = self._round
        # Broadcast START to the *other* copies; the coordinator reads
        # its own stable storage directly (no message to itself).
        peers = self._copy_sites - {at_site}
        self.network.broadcast(
            view, at_site, peers,
            lambda src, dst: StateRequest(sender=src, receiver=dst,
                                          round_id=round_id),
        )
        for sid in sorted(peers & frozenset(self._actors)):
            if sid in view.up:
                self._actors[sid].step(view, self.network)
        replies: dict[int, StateReply] = {}
        for message in self._mailboxes[at_site].drain():
            # Replies delayed past their operation (round) are stale
            # protocol state and must not enter this decision.
            if isinstance(message, StateReply) and \
                    message.round_id == round_id:
                replies[message.sender] = message
        if at_site in self._actors:
            me = self._actors[at_site]
            replies[at_site] = StateReply(
                sender=at_site,
                receiver=at_site,
                operation=me.state.operation,
                version=me.state.version,
                partition_set=me.state.partition_set,
            )
        return replies, view

    def _decide(self, replies: dict[int, StateReply], view: NetworkView,
                at_site: int):
        if not replies:
            raise QuorumNotReachedError(
                f"no copies answered the START from site {at_site}"
            )
        snapshot = ReplicaSet(replies.keys())
        for sid, reply in replies.items():
            snapshot.state(sid).commit(
                reply.operation, reply.version, reply.partition_set
            )
        rules = self._rules(snapshot)
        if self._tracer is not None:
            rules.attach_tracer(self._tracer)
        verdict = rules.evaluate_block(view, view.block_of(at_site))
        if not verdict.granted:
            raise QuorumNotReachedError(
                f"majority test failed at site {at_site}: {verdict.reason}"
            )
        return verdict

    def _fetch_payload(self, at_site: int, source: int,
                       view: NetworkView) -> Any:
        if source == at_site:
            return self._actors[at_site].payload
        reply = self._exchange_data(at_site, source, view)
        return reply.payload

    def _exchange_data(self, at_site: int, source: int,
                       view: NetworkView) -> DataReply:
        if source == at_site:
            me = self._actors[at_site]
            return DataReply(sender=at_site, receiver=at_site,
                             version=me.payload_version, payload=me.payload)
        self.network.send(view, DataRequest(sender=at_site, receiver=source,
                                            round_id=self._round))
        self._actors[source].step(view, self.network)
        reply: Optional[DataReply] = None
        for message in self._mailboxes[at_site].drain():
            if isinstance(message, DataReply) and \
                    message.round_id == self._round:
                reply = message
        if reply is not None:
            return reply
        # Reachable under fault injection: the DataRequest or DataReply
        # was dropped or delayed, so the read aborts before its COMMIT.
        raise EngineError(f"no data reply from site {source}")

    def _commit(self, at_site: int, view: NetworkView,
                members: frozenset[int], operation: int, version: int,
                payload: Any = None, carries_payload: bool = False) -> None:
        self.network.broadcast(
            view, at_site, members,
            lambda src, dst: CommitMessage(
                sender=src, receiver=dst, round_id=self._round,
                operation=operation, version=version,
                partition_set=members,
                payload=payload, carries_payload=carries_payload,
            ),
        )
        for sid in sorted(members):
            if sid in view.up and sid in self._actors:
                self._actors[sid].step(view, self.network)
