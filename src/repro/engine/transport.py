"""Message types, mailboxes and the partition-aware network.

The synchronous engine (:mod:`repro.engine.file`) applies protocol state
changes directly and only *counts* messages.  This module provides the
pieces for a genuinely message-passing execution
(:mod:`repro.engine.actors`): typed messages, per-site FIFO mailboxes,
and a network that delivers a message iff sender and receiver are up and
in the same partition block — the paper's model (reliable, ordered,
within a partition; no Byzantine behaviour).
"""

from __future__ import annotations

import collections
import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Any, Deque, Iterator

from repro.errors import EngineError
from repro.net.views import NetworkView

__all__ = [
    "Message",
    "StateRequest",
    "StateReply",
    "CommitMessage",
    "DataRequest",
    "DataReply",
    "Mailbox",
    "Network",
]


@dataclass(frozen=True)
class Message:
    """Base message: sender, receiver, and a per-network sequence id."""

    sender: int
    receiver: int
    msg_id: int = field(default=-1, compare=False)


@dataclass(frozen=True)
class StateRequest(Message):
    """START: ask a copy for its consistency-control state."""


@dataclass(frozen=True)
class StateReply(Message):
    """A copy's ``(o, v, P)`` triple, as stored on its stable storage."""

    operation: int = 0
    version: int = 0
    partition_set: frozenset[int] = frozenset()


@dataclass(frozen=True)
class CommitMessage(Message):
    """COMMIT: install a new state triple (and, for writes, the payload)."""

    operation: int = 0
    version: int = 0
    partition_set: frozenset[int] = frozenset()
    payload: Any = None
    carries_payload: bool = False


@dataclass(frozen=True)
class DataRequest(Message):
    """RECOVER's "copy the file from site m": ask for the payload."""


@dataclass(frozen=True)
class DataReply(Message):
    """The payload and its version, for a recovering copy."""

    version: int = 0
    payload: Any = None


class Mailbox:
    """A FIFO queue of delivered messages for one site."""

    def __init__(self, owner: int):
        self.owner = owner
        self._queue: Deque[Message] = collections.deque()

    def deliver(self, message: Message) -> None:
        """Queue *message* (must be addressed to this mailbox's owner)."""
        if message.receiver != self.owner:
            raise EngineError(
                f"message for {message.receiver} delivered to {self.owner}"
            )
        self._queue.append(message)

    def drain(self) -> Iterator[Message]:
        """Yield and consume all queued messages, in delivery order."""
        while self._queue:
            yield self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


class Network:
    """Routes messages between mailboxes according to a network view.

    Delivery succeeds iff sender and receiver are both up and mutually
    reachable *at send time* (the paper: delivery within a partition is
    reliable and ordered).  Undeliverable messages are silently dropped —
    the sender learns about absences by not receiving replies, exactly
    like the real protocol.
    """

    def __init__(self, mailboxes: dict[int, Mailbox]):
        self._mailboxes = mailboxes
        self._ids = itertools.count()
        self._loss_plan: dict[int, list[int]] = {}
        self.sent = 0
        self.delivered = 0
        self.dropped = 0

    def lose_next_to(self, receiver: int, count: int = 1,
                     after: int = 0) -> None:
        """Fault injection: silently drop *count* messages addressed to
        *receiver*, skipping the next *after* deliveries first.

        ``after=1`` models a copy that answers a START but crashes before
        its COMMIT arrives: the request gets through, the commit is lost,
        the copy goes stale — the state RECOVER later repairs.
        """
        if receiver not in self._mailboxes:
            raise EngineError(f"no mailbox for site {receiver}")
        if count < 1:
            raise EngineError(f"count must be >= 1, got {count}")
        if after < 0:
            raise EngineError(f"after must be >= 0, got {after}")
        plan = self._loss_plan.setdefault(receiver, [])
        plan.extend([0] * after + [1] * count)

    def _should_drop(self, receiver: int) -> bool:
        plan = self._loss_plan.get(receiver)
        if not plan:
            return False
        return bool(plan.pop(0))

    def send(self, view: NetworkView, message: Message) -> bool:
        """Attempt delivery under *view*; returns whether it arrived."""
        if message.receiver not in self._mailboxes:
            raise EngineError(f"no mailbox for site {message.receiver}")
        stamped = _stamp(message, next(self._ids))
        self.sent += 1
        if self._should_drop(message.receiver):
            self.dropped += 1
            return False
        deliverable = (
            message.sender == message.receiver
            or view.can_communicate(message.sender, message.receiver)
        ) and message.receiver in view.up and message.sender in view.up
        if not deliverable:
            self.dropped += 1
            return False
        self._mailboxes[message.receiver].deliver(stamped)
        self.delivered += 1
        return True

    def broadcast(
        self,
        view: NetworkView,
        sender: int,
        receivers: frozenset[int],
        factory,
    ) -> int:
        """Send ``factory(sender, receiver)`` to every receiver; returns
        the number delivered."""
        count = 0
        for receiver in sorted(receivers):
            if self.send(view, factory(sender, receiver)):
                count += 1
        return count


def _stamp(message: Message, msg_id: int) -> Message:
    return dataclasses.replace(message, msg_id=msg_id)
