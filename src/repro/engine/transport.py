"""Message types, mailboxes and the partition-aware network.

The synchronous engine (:mod:`repro.engine.file`) applies protocol state
changes directly and only *counts* messages.  This module provides the
pieces for a genuinely message-passing execution
(:mod:`repro.engine.actors`): typed messages, per-site FIFO mailboxes,
and a network that delivers a message iff sender and receiver are up and
in the same partition block — the paper's model (reliable, ordered,
within a partition; no Byzantine behaviour).

Delivery runs through a pluggable *fault pipeline*: each attempted
delivery becomes a :class:`DeliveryAttempt` that every configured
:class:`FaultStage` may pass, drop, duplicate or hold.  The default
pipeline is empty (the paper's reliable-within-a-partition model); the
chaos engine (:mod:`repro.chaos`) installs seeded stages, and later
latency or Byzantine models slot into the same seam.
"""

from __future__ import annotations

import collections
import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Any, Deque, Iterator, Sequence

from repro.errors import EngineError
from repro.net.views import NetworkView

__all__ = [
    "Message",
    "StateRequest",
    "StateReply",
    "CommitMessage",
    "DataRequest",
    "DataReply",
    "DeliveryAttempt",
    "FaultStage",
    "Mailbox",
    "Network",
]


@dataclass(frozen=True)
class Message:
    """Base message: sender, receiver, and a per-network sequence id.

    ``round_id`` tags the coordinator round (operation attempt) a
    request/reply belongs to, so a coordinator can discard replies that
    a fault pipeline delayed across an operation boundary.  The default
    ``0`` means "untagged" and keeps fault-free exchanges unchanged.
    """

    sender: int
    receiver: int
    msg_id: int = field(default=-1, compare=False)
    round_id: int = field(default=0, compare=False)


@dataclass(frozen=True)
class StateRequest(Message):
    """START: ask a copy for its consistency-control state."""


@dataclass(frozen=True)
class StateReply(Message):
    """A copy's ``(o, v, P)`` triple, as stored on its stable storage."""

    operation: int = 0
    version: int = 0
    partition_set: frozenset[int] = frozenset()


@dataclass(frozen=True)
class CommitMessage(Message):
    """COMMIT: install a new state triple (and, for writes, the payload)."""

    operation: int = 0
    version: int = 0
    partition_set: frozenset[int] = frozenset()
    payload: Any = None
    carries_payload: bool = False


@dataclass(frozen=True)
class DataRequest(Message):
    """RECOVER's "copy the file from site m": ask for the payload."""


@dataclass(frozen=True)
class DataReply(Message):
    """The payload and its version, for a recovering copy."""

    version: int = 0
    payload: Any = None


class Mailbox:
    """A FIFO queue of delivered messages for one site."""

    def __init__(self, owner: int):
        self.owner = owner
        self._queue: Deque[Message] = collections.deque()

    def deliver(self, message: Message) -> None:
        """Queue *message* (must be addressed to this mailbox's owner)."""
        if message.receiver != self.owner:
            raise EngineError(
                f"message for {message.receiver} delivered to {self.owner}"
            )
        self._queue.append(message)

    def drain(self) -> Iterator[Message]:
        """Yield and consume all queued messages, in delivery order."""
        while self._queue:
            yield self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


@dataclass
class DeliveryAttempt:
    """One message on its way through the fault pipeline.

    Attributes:
        message: The (already id-stamped) message.
        deliverable: Whether the network view at send time allows
            delivery (sender and receiver up and in one block).  Fault
            stages only act on deliverable attempts — the paper's fault
            model perturbs traffic *within* a partition, never conjures
            delivery across one.
        verdict: ``"pass"`` (deliver if deliverable), ``"drop"``
            (discard), or ``"hold"`` (park in the network's held buffer
            until :meth:`Network.release_held` — a delayed message).
        faults: Audit tags of the stages that touched this attempt.
    """

    message: Message
    deliverable: bool
    verdict: str = "pass"
    faults: tuple[str, ...] = ()

    def tag(self, fault: str) -> None:
        """Append *fault* to the audit trail."""
        self.faults = self.faults + (fault,)


class FaultStage:
    """One stage of the delivery pipeline; the base class is identity.

    Subclasses override :meth:`process` to drop (set ``verdict``),
    duplicate (return several attempts) or delay (verdict ``"hold"``)
    deliveries.  Stages must be deterministic given their own seeded
    state — replayability of a fault schedule depends on it.
    """

    def process(self, attempt: DeliveryAttempt) -> list[DeliveryAttempt]:
        """Transform one attempt into zero or more outgoing attempts."""
        return [attempt]


class Network:
    """Routes messages between mailboxes according to a network view.

    Delivery succeeds iff sender and receiver are both up and mutually
    reachable *at send time* (the paper: delivery within a partition is
    reliable and ordered).  Undeliverable messages are silently dropped —
    the sender learns about absences by not receiving replies, exactly
    like the real protocol.

    A *pipeline* of :class:`FaultStage` objects may perturb deliveries
    (drop, duplicate, hold); with the default empty pipeline the network
    behaves exactly as before the seam existed.
    """

    def __init__(self, mailboxes: dict[int, Mailbox],
                 pipeline: Sequence[FaultStage] = ()):
        self._mailboxes = mailboxes
        self._pipeline: tuple[FaultStage, ...] = tuple(pipeline)
        self._ids = itertools.count()
        self._loss_plan: dict[int, list[int]] = {}
        self._held: list[Message] = []
        self._profiler = None
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0

    def attach_profiler(self, profiler) -> None:
        """Attach (or, with ``None``, detach) a
        :class:`~repro.obs.prof.phases.PhaseProfiler`; attached, every
        send is tallied by message type.  Detached (the default) the
        send path pays one ``None`` check."""
        self._profiler = profiler

    @property
    def pipeline(self) -> tuple[FaultStage, ...]:
        """The installed fault stages, in processing order."""
        return self._pipeline

    @property
    def held(self) -> tuple[Message, ...]:
        """Messages a stage delayed, awaiting :meth:`release_held`."""
        return tuple(self._held)

    def lose_next_to(self, receiver: int, count: int = 1,
                     after: int = 0) -> None:
        """Fault injection: silently drop *count* messages addressed to
        *receiver*, skipping the next *after* deliveries first.

        ``after=1`` models a copy that answers a START but crashes before
        its COMMIT arrives: the request gets through, the commit is lost,
        the copy goes stale — the state RECOVER later repairs.
        """
        if receiver not in self._mailboxes:
            raise EngineError(f"no mailbox for site {receiver}")
        if count < 1:
            raise EngineError(f"count must be >= 1, got {count}")
        if after < 0:
            raise EngineError(f"after must be >= 0, got {after}")
        plan = self._loss_plan.setdefault(receiver, [])
        plan.extend([0] * after + [1] * count)

    def _should_drop(self, receiver: int) -> bool:
        plan = self._loss_plan.get(receiver)
        if not plan:
            return False
        return bool(plan.pop(0))

    def send(self, view: NetworkView, message: Message) -> bool:
        """Attempt delivery under *view*; returns whether it arrived.

        The attempt runs through the fault pipeline; with an empty
        pipeline this is plain partition-aware delivery.
        """
        if message.receiver not in self._mailboxes:
            raise EngineError(f"no mailbox for site {message.receiver}")
        stamped = _stamp(message, next(self._ids))
        self.sent += 1
        if self._profiler is not None:
            self._profiler.count(f"engine.msg.{type(message).__name__}")
        if self._should_drop(message.receiver):
            self.dropped += 1
            return False
        deliverable = (
            message.sender == message.receiver
            or view.can_communicate(message.sender, message.receiver)
        ) and message.receiver in view.up and message.sender in view.up
        attempts = [DeliveryAttempt(stamped, deliverable)]
        for stage in self._pipeline:
            attempts = [
                out for attempt in attempts for out in stage.process(attempt)
            ]
        if len(attempts) > 1:
            self.duplicated += len(attempts) - 1
        arrived = False
        for attempt in attempts:
            if attempt.verdict == "hold":
                self._held.append(attempt.message)
                self.delayed += 1
            elif attempt.verdict == "pass" and attempt.deliverable:
                self._mailboxes[attempt.message.receiver].deliver(
                    attempt.message
                )
                self.delivered += 1
                arrived = True
            else:
                self.dropped += 1
        return arrived

    def release_held(self, view: NetworkView) -> int:
        """Deliver every held (delayed) message that is still deliverable
        under the *current* view; the rest are dropped.

        Models a delayed message arriving after the network changed —
        possibly after the partition that allowed its send has healed, or
        after its receiver went down.  Returns the number delivered.
        """
        released, self._held = self._held, []
        count = 0
        for message in released:
            deliverable = (
                message.sender == message.receiver
                or view.can_communicate(message.sender, message.receiver)
            ) and message.receiver in view.up
            if deliverable:
                self._mailboxes[message.receiver].deliver(message)
                self.delivered += 1
                count += 1
            else:
                self.dropped += 1
        return count

    def broadcast(
        self,
        view: NetworkView,
        sender: int,
        receivers: frozenset[int],
        factory,
    ) -> int:
        """Send ``factory(sender, receiver)`` to every receiver; returns
        the number delivered."""
        count = 0
        for receiver in sorted(receivers):
            if self.send(view, factory(sender, receiver)):
                count += 1
        return count


def _stamp(message: Message, msg_id: int) -> Message:
    return dataclasses.replace(message, msg_id=msg_id)
