"""Message-level replication engine.

The availability study only tracks protocol *state*; this package runs
the protocols as an actual replicated-file service:

* :class:`~repro.engine.cluster.Cluster` — a mutable environment (sites
  go down and come back, links fail) with failure injection;
* :class:`~repro.engine.file.ReplicatedFile` — the public API: ``read``,
  ``write``, per-site recovery, availability probes.  Values really move
  between per-site stores, so end-to-end consistency ("a granted read
  returns the last granted write") is checkable;
* :class:`~repro.engine.counters.MessageCounters` — per-operation message
  accounting, used by the message-overhead benchmark to support the
  paper's claim that the optimistic protocols cost about as much traffic
  as MCV while the eager ones pay for every network event.

Message exchange is modelled synchronously (the paper assumes reliable,
ordered delivery within a partition); the counts follow the START /
reply / COMMIT / data-transfer pattern of the algorithms.
"""

from repro.engine.actors import MessageCluster, SiteActor
from repro.engine.cluster import Cluster
from repro.engine.counters import MessageCounters
from repro.engine.file import ReplicatedFile
from repro.engine.transport import Mailbox, Network

__all__ = [
    "Cluster",
    "Mailbox",
    "MessageCluster",
    "MessageCounters",
    "Network",
    "ReplicatedFile",
    "SiteActor",
]
