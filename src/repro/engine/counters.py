"""Message accounting for the replication engine.

The cost model follows the paper's operation structure: an operation
broadcasts a START to every participating site, collects one state reply
per reachable copy, sends one COMMIT per member of the new partition set,
and moves file data only when a copy must be brought up to date.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MessageCounters"]


@dataclass
class MessageCounters:
    """Tallies of every message category the engine emits.

    Attributes:
        state_requests: START broadcasts (one message per addressed site).
        state_replies: ``(o, v, P)`` replies from reachable copies.
        commits: COMMIT messages installing new state.
        data_transfers: Whole-file payload movements (writes propagating
            the new value, recoveries cloning a current copy).
        denials: Operations aborted because the majority test failed.
        operations: Operations attempted (reads + writes + recoveries +
            synchronisation rounds).
    """

    state_requests: int = 0
    state_replies: int = 0
    commits: int = 0
    data_transfers: int = 0
    denials: int = 0
    operations: int = 0

    @property
    def total_messages(self) -> int:
        """All network messages (denials/operations are counters, not traffic)."""
        return (
            self.state_requests
            + self.state_replies
            + self.commits
            + self.data_transfers
        )

    def snapshot(self) -> "MessageCounters":
        """An independent copy of the current tallies."""
        return MessageCounters(
            state_requests=self.state_requests,
            state_replies=self.state_replies,
            commits=self.commits,
            data_transfers=self.data_transfers,
            denials=self.denials,
            operations=self.operations,
        )

    def diff(self, earlier: "MessageCounters") -> "MessageCounters":
        """Tallies accumulated since *earlier* (a prior :meth:`snapshot`)."""
        return MessageCounters(
            state_requests=self.state_requests - earlier.state_requests,
            state_replies=self.state_replies - earlier.state_replies,
            commits=self.commits - earlier.commits,
            data_transfers=self.data_transfers - earlier.data_transfers,
            denials=self.denials - earlier.denials,
            operations=self.operations - earlier.operations,
        )

    def __str__(self) -> str:
        return (
            f"requests={self.state_requests} replies={self.state_replies} "
            f"commits={self.commits} data={self.data_transfers} "
            f"denials={self.denials} ops={self.operations} "
            f"(total msgs={self.total_messages})"
        )
