"""The cluster environment: topology plus mutable site/link health.

A :class:`Cluster` owns the authoritative up/down state of every site and
hands out :class:`~repro.net.views.NetworkView` snapshots.  Replicated
files register with the cluster so that *eager* protocols are
synchronised automatically whenever the environment changes — the
engine-level analogue of the connection vector — while optimistic files
stay untouched until accessed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.errors import EngineError, UnknownSiteError
from repro.net.topology import PointToPointTopology, Topology
from repro.net.views import NetworkView

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.file import ReplicatedFile

__all__ = ["Cluster"]


class Cluster:
    """A group of sites whose health the caller controls.

    All sites start up.  :meth:`fail_site` / :meth:`restart_site` (and,
    on point-to-point topologies, :meth:`fail_link` / :meth:`repair_link`)
    inject faults; registered eager files re-synchronise after every
    change.
    """

    def __init__(self, topology: Topology):
        self._topology = topology
        self._up: set[int] = set(topology.site_ids)
        self._files: list["ReplicatedFile"] = []

    # ------------------------------------------------------------------
    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def up_sites(self) -> frozenset[int]:
        return frozenset(self._up)

    @property
    def down_sites(self) -> frozenset[int]:
        return self._topology.site_ids - self._up

    def is_up(self, site_id: int) -> bool:
        """Whether *site_id* is currently operational."""
        self._require_site(site_id)
        return site_id in self._up

    def view(self) -> NetworkView:
        """A snapshot of the current network state."""
        return self._topology.view(self._up)

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def fail_site(self, site_id: int) -> None:
        """Take *site_id* down (idempotent)."""
        self._require_site(site_id)
        if site_id in self._up:
            self._up.discard(site_id)
            self._notify()

    def restart_site(self, site_id: int) -> None:
        """Bring *site_id* back up (idempotent).

        Eager files immediately reintegrate the copy; optimistic files
        leave it stale until their next access or an explicit
        :meth:`~repro.engine.file.ReplicatedFile.recover_site`.
        """
        self._require_site(site_id)
        if site_id not in self._up:
            self._up.add(site_id)
            self._notify()

    def fail_sites(self, site_ids: Iterable[int]) -> None:
        """Take several sites down, notifying once per transition."""
        for site_id in site_ids:
            self.fail_site(site_id)

    def fail_link(self, a: int, b: int) -> None:
        """Cut the point-to-point link between *a* and *b*.

        Raises:
            EngineError: when the topology has no independent links
                (segments cannot partition internally).
        """
        self._point_to_point().fail_link(a, b)
        self._notify()

    def repair_link(self, a: int, b: int) -> None:
        """Restore the point-to-point link between *a* and *b*."""
        self._point_to_point().repair_link(a, b)
        self._notify()

    # ------------------------------------------------------------------
    def register(self, file: "ReplicatedFile") -> None:
        """Attach a file so environment changes reach its protocol."""
        self._files.append(file)

    def _notify(self) -> None:
        view = self.view()
        for file in self._files:
            file.on_network_change(view)

    def _point_to_point(self) -> PointToPointTopology:
        if not isinstance(self._topology, PointToPointTopology):
            raise EngineError(
                "link faults only exist on point-to-point topologies; "
                "segmented LANs partition at gateways (fail the gateway site)"
            )
        return self._topology

    def _require_site(self, site_id: int) -> None:
        if site_id not in self._topology.site_ids:
            raise UnknownSiteError(f"no site {site_id} in cluster")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Cluster up={sorted(self._up)} down={sorted(self.down_sites)}>"
