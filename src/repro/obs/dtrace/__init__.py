"""Distributed tracing for the replicated service — causal spans.

The simulator's tracer (:mod:`repro.obs.tracer`) sees every quorum
decision because everything runs in one process.  The live service
(:mod:`repro.service`) is many processes joined by TCP frames, so this
package rebuilds the same visibility the distributed way:

* :mod:`~repro.obs.dtrace.context` — trace/span ids and per-process
  Lamport clocks, carried between processes as an optional ``ctx``
  member of the service's JSON frames (old peers ignore it);
* :mod:`~repro.obs.dtrace.spans` — span recorders with append-only
  JSONL logs (each replica writes next to its WAL) and the
  zero-cost-when-disabled discipline the tracer set;
* :mod:`~repro.obs.dtrace.collect` — merge the per-process logs by
  trace id into trees ordered by happens-before (Lamport pairs, never
  wall clocks), validate causality, sample exemplar traces;
* :mod:`~repro.obs.dtrace.render` — text and SVG waterfalls for the
  CLI (``repro service trace``), the HTML report and the explorer.

A denied write under chaos decomposes into its round anatomy:
*contacted {1,2,3}; state? to 2 dropped by fault window #4; quorum
evaluate said no per Algorithm 1* — each clause a span or span event
in the merged trace.
"""

from repro.obs.dtrace.context import (
    CTX_FIELD,
    LamportClock,
    ctx_from_frame,
    ctx_to_wire,
    new_span_id,
    new_trace_id,
)
from repro.obs.dtrace.spans import (
    SPAN_LOG_NAME,
    JsonlSpanSink,
    MemorySpanSink,
    Span,
    SpanRecorder,
)
from repro.obs.dtrace.collect import (
    Trace,
    build_traces,
    causal_violations,
    fault_windows,
    iter_span_log_paths,
    load_span_logs,
    read_span_log,
    sample_exemplars,
    summarize_trace,
)
from repro.obs.dtrace.render import svg_waterfall, text_waterfall

__all__ = [
    "CTX_FIELD",
    "JsonlSpanSink",
    "LamportClock",
    "MemorySpanSink",
    "SPAN_LOG_NAME",
    "Span",
    "SpanRecorder",
    "Trace",
    "build_traces",
    "causal_violations",
    "ctx_from_frame",
    "ctx_to_wire",
    "fault_windows",
    "iter_span_log_paths",
    "load_span_logs",
    "new_span_id",
    "new_trace_id",
    "read_span_log",
    "sample_exemplars",
    "summarize_trace",
    "svg_waterfall",
    "text_waterfall",
]
