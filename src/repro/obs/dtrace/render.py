"""Waterfall renderers for merged traces: terminal text and SVG.

The text waterfall is what ``repro service trace`` prints — one line
per span, indented by tree depth, with wall offsets relative to the
trace's earliest span and the Lamport pair that actually orders it;
span events (quorum verdicts, sends, chaos annotations) hang beneath
their span.  The SVG variant draws the same tree as horizontal bars
for the report and the explorer's trace pages.

Wall-clock offsets are cosmetic — bars from different processes may
sit a little off against each other since no two processes share a
clock — but the *order* shown is the Lamport order the collector
validated, so a child bar never renders above its parent.
"""

from __future__ import annotations

import html
from typing import Any, Mapping

from repro.obs.dtrace.collect import (
    Trace,
    causal_violations,
    fault_windows,
    summarize_trace,
)

__all__ = [
    "svg_waterfall",
    "text_waterfall",
]

#: Bar colours per span status (SVG).
_STATUS_COLOURS = {
    "ok": "#2f855a",
    "denied": "#dd6b20",
    "unavailable": "#c53030",
    "contended": "#b7791f",
    "dropped": "#c53030",
    "delayed": "#b7791f",
    "timeout": "#718096",
    "unreachable": "#718096",
    "busy": "#b7791f",
    "error": "#c53030",
}
_DEFAULT_COLOUR = "#4a5568"


def _attr_text(attrs: Mapping[str, Any]) -> str:
    parts = []
    for key in sorted(attrs):
        value = attrs[key]
        if key == "window":
            parts.append(f"fault window #{value}")
            continue
        if isinstance(value, (list, tuple)):
            value = "[" + ",".join(str(v) for v in value) + "]"
        parts.append(f"{key}={value}")
    return " ".join(parts)


def _event_text(event: Mapping[str, Any]) -> str:
    extra = {key: value for key, value in event.items()
             if key not in ("name", "lc", "t")}
    text = f"{event.get('name')} lc={event.get('lc')}"
    if extra:
        text += " " + _attr_text(extra)
    return text


def text_waterfall(trace: Trace, events: bool = True) -> str:
    """Render *trace* as an indented terminal waterfall."""
    summary = summarize_trace(trace)
    t0 = min((float(span.get("start", 0.0))
              for span in trace.spans.values()), default=0.0)
    header = (
        f"trace {trace.trace_id} · {summary['name']}"
        + (f" {summary['key']}" if summary.get("key") else "")
        + f" → {summary['outcome']}"
        + f" in {summary['duration'] * 1000.0:.1f} ms"
        + f" · {summary['spans']} spans over "
        + f"{', '.join(summary['procs'])}"
    )
    lines = [header]
    windows = fault_windows(trace)
    if windows:
        lines.append("  chaos: fault window"
                     + ("s" if len(windows) > 1 else "") + " "
                     + ", ".join(f"#{w}" for w in windows))
    for depth, span in trace.walk():
        offset = (float(span.get("start", t0)) - t0) * 1000.0
        dur = float(span.get("dur", 0.0)) * 1000.0
        lc = span.get("lc") or [0, 0]
        indent = "  " * depth
        attrs = span.get("attrs") or {}
        line = (
            f"  [{offset:8.1f}ms {dur:+9.1f}ms] "
            f"{indent}{span.get('name')} [{span.get('proc')}] "
            f"lc={lc[0]}..{lc[1]} {span.get('status')}"
        )
        attr_text = _attr_text(attrs)
        if attr_text:
            line += "  " + attr_text
        lines.append(line)
        if events:
            for event in span.get("events", []):
                lines.append(f"  {'':>23}{indent}  · "
                             + _event_text(event))
    problems = causal_violations(trace)
    for problem in problems:
        lines.append(f"  !! causality: {problem}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# SVG
# ----------------------------------------------------------------------
def svg_waterfall(trace: Trace, width: int = 860) -> str:
    """Render *trace* as an SVG waterfall (one bar per span)."""
    spans = list(trace.walk())
    if not spans:
        return "<svg xmlns='http://www.w3.org/2000/svg'></svg>"
    t0 = min(float(span.get("start", 0.0)) for _, span in spans)
    t1 = max(float(span.get("start", 0.0)) + float(span.get("dur", 0.0))
             for _, span in spans)
    total = max(t1 - t0, 1e-6)
    row_h, top, left, label_w = 22, 28, 8, 300
    chart_w = max(width - left - label_w - 8, 100)
    height = top + row_h * len(spans) + 8
    summary = summarize_trace(trace)
    parts = [
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{width}' "
        f"height='{height}' font-family='monospace' font-size='11'>",
        f"<text x='{left}' y='16' font-size='12' fill='#1a202c'>"
        + html.escape(
            f"trace {trace.trace_id} · {summary['name']} → "
            f"{summary['outcome']} in "
            f"{summary['duration'] * 1000.0:.1f} ms")
        + "</text>",
    ]
    for row, (depth, span) in enumerate(spans):
        y = top + row * row_h
        start = float(span.get("start", t0)) - t0
        dur = float(span.get("dur", 0.0))
        x = left + label_w + chart_w * (start / total)
        bar_w = max(2.0, chart_w * (dur / total))
        colour = _STATUS_COLOURS.get(str(span.get("status")),
                                     _DEFAULT_COLOUR)
        attrs = span.get("attrs") or {}
        label = (" " * (2 * depth)) \
            + f"{span.get('name')} [{span.get('proc')}]"
        title = (f"{span.get('name')} {span.get('status')} "
                 f"lc={span.get('lc')} {_attr_text(attrs)}")
        parts.append(
            f"<text x='{left}' y='{y + 14}' fill='#2d3748'>"
            + html.escape(label) + "</text>")
        parts.append(
            f"<g><rect x='{x:.1f}' y='{y + 4}' width='{bar_w:.1f}' "
            f"height='{row_h - 8}' rx='2' fill='{colour}'>"
            f"<title>{html.escape(title)}</title></rect>"
            f"<text x='{min(x + bar_w + 4, width - 70):.1f}' "
            f"y='{y + 14}' fill='#4a5568'>"
            + html.escape(f"{dur * 1000.0:.1f}ms "
                          f"{span.get('status')}")
            + "</text></g>")
    parts.append("</svg>")
    return "".join(parts)
