"""The trace collector: merge span logs into causal trace trees.

Each process in a traced cluster wrote its own append-only span log
(``spans.jsonl`` next to every replica's WAL, ``proxy.spans.jsonl``
under the cluster root, in-memory records from the load workers).
This module merges them back together:

* group spans by trace id across all logs;
* rebuild the tree through the parent ids the frames' ``ctx`` field
  carried; spans whose parent was lost (a SIGKILLed replica never
  flushed it) surface as extra roots rather than vanishing;
* order siblings by their Lamport start — **never** by wall clock,
  which no two replica processes share;
* validate happens-before: a span must not precede its parent's send
  (``child.lc_start > lc`` of some ``send`` event on the parent, or
  simply the parent's own start when both live on one process).

Reading is lenient: a SIGKILL can tear a log's final line, and a
restarting replica then appends after the tear, so any unparsable
line is skipped and counted instead of raising.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Iterable, Iterator, Mapping, Optional, Union

__all__ = [
    "Trace",
    "build_traces",
    "causal_violations",
    "fault_windows",
    "load_span_logs",
    "read_span_log",
    "sample_exemplars",
    "summarize_trace",
]


def read_span_log(
    path: Union[str, pathlib.Path],
) -> tuple[list[dict[str, Any]], int]:
    """All parseable span records in *path*, plus the skipped count."""
    records: list[dict[str, Any]] = []
    skipped = 0
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    skipped += 1
                    continue
                if isinstance(record, dict) and record.get("trace") \
                        and record.get("span"):
                    records.append(record)
                else:
                    skipped += 1
    except OSError:
        return [], 0
    return records, skipped


def iter_span_log_paths(
    root: Union[str, pathlib.Path],
) -> Iterator[pathlib.Path]:
    """Every span log under *root* (``*spans.jsonl``, recursively)."""
    yield from sorted(pathlib.Path(root).rglob("*spans.jsonl"))


def load_span_logs(
    root: Union[str, pathlib.Path],
) -> list[dict[str, Any]]:
    """Merge every span log under *root* into one record list."""
    merged: list[dict[str, Any]] = []
    for path in iter_span_log_paths(root):
        records, _ = read_span_log(path)
        merged.extend(records)
    return merged


class Trace:
    """One trace: all spans sharing a trace id, tree-linked.

    Attributes:
        trace_id: The shared id.
        spans: ``{span_id: record}`` for every span seen.
        children: ``{span_id: [child records]}``, Lamport-ordered.
        roots: Spans with no (recorded) parent, Lamport-ordered — the
            client op span plus any span orphaned by a lost log.
    """

    def __init__(self, trace_id: str):
        self.trace_id = trace_id
        self.spans: dict[str, dict[str, Any]] = {}
        self.children: dict[str, list[dict[str, Any]]] = {}
        self.roots: list[dict[str, Any]] = []

    # ------------------------------------------------------------------
    def add(self, record: dict[str, Any]) -> None:
        """Index *record* by span id (call :meth:`link` after adding)."""
        self.spans[str(record["span"])] = record

    def link(self) -> None:
        """(Re)build child lists and roots from the current spans."""
        self.children = {}
        self.roots = []
        for record in self.spans.values():
            parent = record.get("parent")
            if parent and str(parent) in self.spans:
                self.children.setdefault(str(parent), []).append(record)
            else:
                self.roots.append(record)
        for siblings in self.children.values():
            siblings.sort(key=_lamport_key)
        self.roots.sort(key=_lamport_key)

    def root(self) -> Optional[dict[str, Any]]:
        """The best root: the client span when present, else the first."""
        for record in self.roots:
            if str(record.get("name", "")).startswith("client."):
                return record
        return self.roots[0] if self.roots else None

    def walk(self) -> Iterator[tuple[int, dict[str, Any]]]:
        """Depth-first ``(depth, span)`` pairs, causally ordered."""
        stack = [(0, record) for record in reversed(self.roots)]
        while stack:
            depth, record = stack.pop()
            yield depth, record
            kids = self.children.get(str(record["span"]), [])
            for child in reversed(kids):
                stack.append((depth + 1, child))

    # ------------------------------------------------------------------
    def duration(self) -> float:
        """Root duration in seconds (longest span if no root has one)."""
        root = self.root()
        if root is not None and root.get("dur"):
            return float(root["dur"])
        return max((float(s.get("dur", 0.0)) for s in
                    self.spans.values()), default=0.0)

    def outcome(self) -> str:
        """The root span's status, or ``unknown`` for an empty trace."""
        root = self.root()
        return str(root.get("status", "unknown")) if root else "unknown"

    def procs(self) -> list[str]:
        """Sorted process labels that contributed spans to this trace."""
        return sorted({str(s.get("proc", "?")) for s in
                       self.spans.values()})


def _lamport_key(record: Mapping[str, Any]) -> tuple:
    lc = record.get("lc") or [0, 0]
    start = lc[0] if isinstance(lc, list) and lc else 0
    return (start, record.get("start", 0.0), str(record.get("span")))


def build_traces(
    spans: Iterable[Mapping[str, Any]],
) -> dict[str, Trace]:
    """Group *spans* by trace id and link each group into a tree."""
    traces: dict[str, Trace] = {}
    for record in spans:
        trace_id = str(record.get("trace", ""))
        span_id = record.get("span")
        if not trace_id or not span_id:
            continue
        traces.setdefault(trace_id, Trace(trace_id)).add(dict(record))
    for trace in traces.values():
        trace.link()
    return traces


# ----------------------------------------------------------------------
# causal validation
# ----------------------------------------------------------------------
def causal_violations(trace: Trace) -> list[str]:
    """Happens-before violations in *trace* (empty = causally sound).

    Checks, per span: the Lamport pair is ordered (``start <= end``);
    a child starts strictly after its parent's start; and a child on a
    *different* process starts strictly after some ``send`` event on
    its parent — the send that carried its context over the wire.
    """
    problems: list[str] = []
    for record in trace.spans.values():
        lc = record.get("lc") or [0, 0]
        if lc[0] > lc[1]:
            problems.append(
                f"span {record['span']} ({record.get('name')}) has a "
                f"backwards Lamport pair {lc}")
    for parent_id, kids in trace.children.items():
        parent = trace.spans[parent_id]
        parent_lc = (parent.get("lc") or [0, 0])[0]
        sends = [event.get("lc", 0)
                 for event in parent.get("events", [])
                 if event.get("name") == "send"]
        for child in kids:
            child_lc = (child.get("lc") or [0, 0])[0]
            if child_lc <= parent_lc:
                problems.append(
                    f"span {child['span']} ({child.get('name')}) "
                    f"starts at lc={child_lc}, not after its parent "
                    f"{parent.get('name')} (lc={parent_lc})")
                continue
            if child.get("proc") != parent.get("proc") and sends \
                    and not any(send < child_lc for send in sends):
                problems.append(
                    f"span {child['span']} ({child.get('name')}) on "
                    f"{child.get('proc')} precedes every send of its "
                    f"parent {parent.get('name')}")
    return problems


def fault_windows(trace: Trace) -> list[int]:
    """Every chaos fault window number annotated on *trace*'s spans."""
    windows: set[int] = set()
    for record in trace.spans.values():
        attrs = record.get("attrs") or {}
        window = attrs.get("window")
        if isinstance(window, int):
            windows.add(window)
        for event in record.get("events", []):
            window = event.get("window")
            if isinstance(window, int):
                windows.add(window)
    return sorted(windows)


def summarize_trace(trace: Trace) -> dict[str, Any]:
    """The one-line summary surfaces show per exemplar trace."""
    root = trace.root() or {}
    attrs = root.get("attrs") or {}
    return {
        "trace": trace.trace_id,
        "name": root.get("name", "?"),
        "key": attrs.get("key"),
        "outcome": trace.outcome(),
        "duration": round(trace.duration(), 6),
        "spans": len(trace.spans),
        "procs": trace.procs(),
        "fault_windows": fault_windows(trace),
        "violations": causal_violations(trace),
    }


# ----------------------------------------------------------------------
# exemplar sampling
# ----------------------------------------------------------------------
#: Root outcomes that make a trace an exemplar regardless of latency.
_INTERESTING = ("denied", "unavailable", "contended", "error")


def sample_exemplars(
    traces: Mapping[str, Trace],
    limit: int = 8,
    always: Iterable[str] = (),
) -> list[Trace]:
    """Pick up to *limit* exemplar traces, worst first.

    Keeps, in priority order: every trace in *always* (the load
    workers' violation traces — never dropped, even over *limit*),
    denied/unavailable/contended roots, traces a chaos fault window
    touched, then the slowest of the rest (the tail).  Within each
    band slower traces win.
    """
    pool = sorted(traces.values(), key=Trace.duration, reverse=True)
    always = {str(trace_id) for trace_id in always}
    chosen: list[Trace] = []
    seen: set[str] = set()

    def take(trace: Trace, force: bool = False) -> None:
        if trace.trace_id in seen:
            return
        if not force and len(chosen) >= limit:
            return
        seen.add(trace.trace_id)
        chosen.append(trace)

    for trace in pool:
        if trace.trace_id in always:
            take(trace, force=True)
    for trace in pool:
        if trace.outcome() in _INTERESTING:
            take(trace)
    for trace in pool:
        if fault_windows(trace):
            take(trace)
    for trace in pool:
        take(trace)
    return chosen
