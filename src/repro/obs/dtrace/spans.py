"""Spans and span recorders: the write side of distributed tracing.

A :class:`Span` is one timed unit of work on one process — a client
operation, a replica-side quorum round, one peer RPC, a chaos-proxy
verdict.  Spans form a tree across processes through the parent ids
carried in the frames' ``ctx`` field; each process appends its
finished spans to its own log (the replica's sits next to its WAL),
and the collector (:mod:`repro.obs.dtrace.collect`) merges the logs
back into trace trees.

The recording discipline matches the tracer and profiler: code under
instrumentation pays one ``recorder is None`` check when tracing is
off, and every span write is one JSON line appended to the sink —
append-only so a replica restarting over its data directory extends
the same log.  A SIGKILL can tear the final line; the collector reads
leniently.
"""

from __future__ import annotations

import json
import pathlib
import random
import threading
import time
from typing import Any, Mapping, Optional, Union

from repro.obs.dtrace.context import (
    LamportClock,
    WireContext,
    ctx_to_wire,
    new_span_id,
    new_trace_id,
)

__all__ = [
    "JsonlSpanSink",
    "MemorySpanSink",
    "Span",
    "SpanRecorder",
    "SPAN_LOG_NAME",
]

#: Canonical file name for a process's span log.  The collector globs
#: for ``*spans.jsonl``, so prefixed variants (``proxy.spans.jsonl``,
#: ``client.spans.jsonl``) are found too.
SPAN_LOG_NAME = "spans.jsonl"


class MemorySpanSink:
    """Collects span records in a list (loadgen workers, tests)."""

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    def write(self, record: dict[str, Any]) -> None:
        """Append *record* to :attr:`records`."""
        self.records.append(record)

    def close(self) -> None:
        """Nothing to release; kept for sink-protocol symmetry."""


class JsonlSpanSink:
    """Appends one JSON line per finished span, flushed per record.

    Opened in append mode: a replica restarting over its surviving
    data directory keeps extending the same log rather than erasing
    the spans from before the crash.
    """

    def __init__(self, path: Union[str, pathlib.Path]):
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")
        self._lock = threading.Lock()

    def write(self, record: dict[str, Any]) -> None:
        """Append *record* as one canonical JSON line (no-op if closed)."""
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            if self._file.closed:
                return
            self._file.write(line + "\n")
            self._file.flush()

    def close(self) -> None:
        """Close the log file; later writes become no-ops."""
        with self._lock:
            if not self._file.closed:
                self._file.close()


class Span:
    """One unit of work; create via :meth:`SpanRecorder.span`.

    The Lamport pair ``lc = [start, end]`` brackets every event the
    span caused: sends tick the process clock, receives fold the
    remote value in, so cross-process children always start at a
    larger clock value than the send that carried their context.
    """

    __slots__ = ("_recorder", "trace_id", "span_id", "parent_id",
                 "name", "proc", "start", "dur", "lc_start", "lc_end",
                 "status", "attrs", "events", "_finished")

    def __init__(self, recorder: "SpanRecorder", trace_id: str,
                 span_id: str, parent_id: Optional[str], name: str,
                 lc_start: int, attrs: Optional[dict[str, Any]] = None):
        self._recorder = recorder
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.proc = recorder.proc
        self.start = time.time()
        self.dur = 0.0
        self.lc_start = lc_start
        self.lc_end = lc_start
        self.status = "ok"
        self.attrs: dict[str, Any] = dict(attrs or {})
        self.events: list[dict[str, Any]] = []
        self._finished = False

    # ------------------------------------------------------------------
    def event(self, name: str, **fields: Any) -> int:
        """Record a point event (local tick); returns the new clock."""
        lc = self._recorder.clock.tick()
        self._push_event(name, lc, fields)
        return lc

    def sent(self, **fields: Any) -> dict[str, Any]:
        """Record a send and return the wire ``ctx`` to attach.

        The returned object carries *this* span's id, so whatever the
        receiver records becomes a child of this span.
        """
        lc = self._recorder.clock.tick()
        self._push_event("send", lc, fields)
        return ctx_to_wire(self.trace_id, self.span_id, lc)

    def received(self, remote_lc: int, **fields: Any) -> int:
        """Fold a remote clock value in (reply observed)."""
        lc = self._recorder.clock.observe(remote_lc)
        self._push_event("recv", lc, fields)
        return lc

    def annotate(self, **attrs: Any) -> None:
        """Merge *attrs* into the span's attributes."""
        self.attrs.update(attrs)

    def finish(self, status: str = "ok", **attrs: Any) -> None:
        """Close the span and hand it to the recorder's sink."""
        if self._finished:
            return
        self._finished = True
        self.status = status
        self.attrs.update(attrs)
        self.dur = max(0.0, time.time() - self.start)
        self.lc_end = self._recorder.clock.tick()
        self._recorder._write(self)

    # ------------------------------------------------------------------
    def wire_context(self) -> dict[str, Any]:
        """A ``ctx`` for a frame sent on this span's behalf (ticks)."""
        return self.sent()

    def _push_event(self, name: str, lc: int,
                    fields: Mapping[str, Any]) -> None:
        event: dict[str, Any] = {
            "name": name,
            "lc": lc,
            "t": round(time.time() - self.start, 6),
        }
        for key, value in fields.items():
            event[key] = value
        self.events.append(event)

    def to_dict(self) -> dict[str, Any]:
        """The JSON record appended to the span log."""
        record: dict[str, Any] = {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "proc": self.proc,
            "name": self.name,
            "start": round(self.start, 6),
            "dur": round(self.dur, 6),
            "lc": [self.lc_start, self.lc_end],
            "status": self.status,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        if self.events:
            record["events"] = self.events
        return record


class SpanRecorder:
    """One process's span factory: a clock, an identity, a sink.

    Args:
        sink: Where finished spans go (:class:`JsonlSpanSink` for the
            replicas and the proxy, :class:`MemorySpanSink` for the
            in-process load workers).
        proc: Process label stamped on every span (``"site-3"``,
            ``"proxy"``, ``"client-0"``).
        rng: Seeded id source, for reproducible trace ids in tests.
    """

    def __init__(self, sink: Any, proc: str,
                 rng: Optional[random.Random] = None):
        self.sink = sink
        self.proc = proc
        self.clock = LamportClock()
        self._rng = rng

    def span(
        self,
        name: str,
        parent: Optional[Span] = None,
        ctx: Optional[WireContext] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span: root, local child, or remote child via *ctx*."""
        if ctx is not None:
            trace_id, parent_id, remote_lc = ctx
            lc_start = self.clock.observe(remote_lc)
        elif parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
            lc_start = self.clock.tick()
        else:
            trace_id, parent_id = new_trace_id(self._rng), None
            lc_start = self.clock.tick()
        return Span(self, trace_id, new_span_id(self._rng), parent_id,
                    name, lc_start, attrs or None)

    def close(self) -> None:
        """Close the underlying sink."""
        self.sink.close()

    # ------------------------------------------------------------------
    def _write(self, span: Span) -> None:
        self.sink.write(span.to_dict())
