"""Trace context: ids, Lamport clocks and the on-wire ``ctx`` field.

A trace context is three values — trace id, span id, Lamport clock —
carried between processes as an optional ``ctx`` member of the
service's length-prefixed JSON frames
(:mod:`repro.service.frames`)::

    {"kind": "state?", "from": 1, "ctx": {"trace": "9a1b...",
                                          "span": "4c0d...",
                                          "lc": 17}}

Old readers ignore the extra key and new readers treat its absence as
"untraced", so the wire format needs no version bump; the frame
compatibility tests pin that down.

Causal order comes from the Lamport pairs, never from wall clocks:
every process keeps one :class:`LamportClock`, ticks it on local
events and sends, and folds remote values in on receives
(``max(local, remote) + 1``).  A child span recorded on another
process therefore always carries a larger clock value than the send
that caused it, which is what lets the collector rebuild
happens-before across replica logs whose wall clocks never agree.
"""

from __future__ import annotations

import random
import threading
from typing import Any, Mapping, Optional, Tuple

__all__ = [
    "CTX_FIELD",
    "LamportClock",
    "ctx_from_frame",
    "ctx_to_wire",
    "new_span_id",
    "new_trace_id",
]

#: The reserved frame key trace context travels under.
CTX_FIELD = "ctx"

#: (trace id, parent span id, remote Lamport value) — a parsed ``ctx``.
WireContext = Tuple[str, str, int]


class LamportClock:
    """One process's logical clock (thread-safe).

    ``tick()`` advances on every local event (span start, send, span
    end); ``observe(remote)`` folds in a clock value that arrived on
    the wire.  Both return the new value.
    """

    __slots__ = ("_value", "_lock")

    def __init__(self, start: int = 0):
        self._value = int(start)
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        """The current clock value (no tick)."""
        return self._value

    def tick(self) -> int:
        """Advance for a local event."""
        with self._lock:
            self._value += 1
            return self._value

    def observe(self, remote: int) -> int:
        """Fold in a remote clock value: ``max(local, remote) + 1``."""
        with self._lock:
            self._value = max(self._value, int(remote)) + 1
            return self._value


def new_trace_id(rng: Optional[random.Random] = None) -> str:
    """A fresh 64-bit trace id as 16 hex chars."""
    bits = (rng or random).getrandbits(64)
    return f"{bits:016x}"


def new_span_id(rng: Optional[random.Random] = None) -> str:
    """A fresh 32-bit span id as 8 hex chars."""
    bits = (rng or random).getrandbits(32)
    return f"{bits:08x}"


def ctx_to_wire(trace_id: str, span_id: str, lc: int) -> dict[str, Any]:
    """The ``ctx`` object to attach to an outgoing frame."""
    return {"trace": trace_id, "span": span_id, "lc": int(lc)}


def ctx_from_frame(
    message: Optional[Mapping[str, Any]],
) -> Optional[WireContext]:
    """Parse the ``ctx`` field of *message*; ``None`` when absent/bad.

    Tolerant by design: a malformed context from a foreign client must
    degrade to "untraced", never to a protocol error.
    """
    if not isinstance(message, Mapping):
        return None
    ctx = message.get(CTX_FIELD)
    if not isinstance(ctx, Mapping):
        return None
    trace = ctx.get("trace")
    span = ctx.get("span")
    lc = ctx.get("lc")
    if not isinstance(trace, str) or not trace:
        return None
    if not isinstance(span, str) or not span:
        return None
    if not isinstance(lc, int) or isinstance(lc, bool):
        return None
    return trace, span, lc
