"""The run registry: content-addressed storage for every run artifact.

The repo emits five kinds of run products — study tables, metrics
dumps, JSONL decision traces, chaos reports and ``BENCH_<n>.json``
trajectory points — and before this package they landed as loose files
with no shared identity.  A :class:`RunRegistry` gives each recorded
invocation a *content-addressed run id* (the SHA-256 of the run's
canonical result bytes, so an identical re-run is the identical run),
stores the manifest, result tables, metrics and artifacts under
``.repro/runs/<id>/``, appends one line per run to an append-only
``index.jsonl``, and keeps lineage: the baseline a run was diffed
against, a chaos schedule's seed, a bench point's provenance.

On top of it:

* :func:`diff_runs` aligns two recorded studies cell by cell
  (configuration × policy) and passes every availability delta through
  the same noise-aware gate as the benchmark trajectory
  (:func:`repro.obs.prof.bench.noise_gated_verdict`), so CI can gate on
  *availability*, not just wall-clock (``repro runs diff`` exits 1 on a
  regression);
* ``repro runs {list,show,diff,gc}`` browses and prunes the store;
* :mod:`repro.obs.report` renders recorded runs as a self-contained
  HTML explorer (``repro report``).

Recording is opt-in: the CLI's ``--record`` flag (on ``study``,
``table2``/``table3``, ``trace <scenario>``, ``chaos run``/``replay``,
``profile`` and ``bench record``) wires a registry into
:func:`repro.experiments.runner.run_study`,
:func:`repro.chaos.harness.run_schedule` and the bench trajectory.
"""

from repro.obs.registry.diffing import (
    CellDelta,
    RunDiff,
    diff_runs,
    format_diff,
)
from repro.obs.registry.store import (
    DEFAULT_ROOT,
    RUNS_DIR_ENV,
    RunRecord,
    RunRegistry,
    TimelineSink,
)

__all__ = [
    "CellDelta",
    "DEFAULT_ROOT",
    "RUNS_DIR_ENV",
    "RunDiff",
    "RunRecord",
    "RunRegistry",
    "TimelineSink",
    "diff_runs",
    "format_diff",
]
