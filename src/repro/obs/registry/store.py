"""Content-addressed run storage under ``.repro/runs/``.

Layout::

    .repro/runs/
        index.jsonl            # append-only, one line per recorded run
        <run-id>/
            record.json        # identity, lineage, artifact listing
            manifest.json      # run provenance (study runs)
            study.json         # canonical study cells (study runs)
            metrics.json       # metrics dump (when collected)
            timelines.json     # per-cell availability timelines
            trace.jsonl        # decision trace (scenario/chaos runs)
            chaos.json / bench.json / profile.json
        <live-id>/
            live.json          # live-session descriptor (in-flight runs)
            live.jsonl         # tailable telemetry event stream

A run id is the truncated SHA-256 of the run's *canonical result
bytes* (:func:`repro.experiments.study_io.canonical_study_bytes` for
studies, canonical JSON for everything else), never of wall-clock or
machine state — so re-running the identical seed produces the identical
id and recording it again is a no-op.  The index is append-only during
recording; only :meth:`RunRegistry.gc` compacts it.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import os
import pathlib
import shutil
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

from repro.errors import ConfigurationError

__all__ = [
    "CACHE_DIR_NAME",
    "DEFAULT_ROOT",
    "RUNS_DIR_ENV",
    "SAMPLES_DIR_NAME",
    "TRACES_DIR_NAME",
    "TSDB_DIR_NAME",
    "RunRecord",
    "RunRegistry",
    "TimelineSink",
    "canonical_bytes",
]

_FORMAT = "repro-run"
_VERSION = 1

#: Environment variable overriding the default registry root.
RUNS_DIR_ENV = "REPRO_RUNS_DIR"

#: Where runs land when no directory is named.
DEFAULT_ROOT = os.path.join(".repro", "runs")

#: Hex digits of SHA-256 kept as the run id (collision odds at 16 hex
#: chars stay negligible for any plausible registry size).
_ID_LENGTH = 16

#: Shortest accepted id prefix for :meth:`RunRegistry.resolve`.
_MIN_PREFIX = 4

#: Directory under the registry root holding derived data (the serve
#: summary cache).  Never scanned for runs — run ids are hex only.
CACHE_DIR_NAME = ".cache"

#: Directory under the registry root holding large per-operation sample
#: files (``<run_id>.jsonl``) recorded next to service bench runs.
#: Sidecars, not artifacts: they are too big to hash into the run
#: identity, and :meth:`RunRegistry.gc` prunes any whose run is gone.
SAMPLES_DIR_NAME = ".samples"

#: Directory under the registry root holding exemplar trace span files
#: (``<run_id>.jsonl``) recorded next to traced service bench runs.
#: Same contract as :data:`SAMPLES_DIR_NAME`: sidecar, not artifact.
TRACES_DIR_NAME = ".traces"

#: Directory under the registry root holding scraped time-series
#: databases (``<run_id>/chunk-*.tsdb`` — whole directories, one per
#: monitored service bench run).  Same contract as
#: :data:`SAMPLES_DIR_NAME`: sidecar, not artifact, pruned by
#: :meth:`RunRegistry.gc` when the run is gone.
TSDB_DIR_NAME = ".tsdb"


def canonical_bytes(payload: Any) -> bytes:
    """Canonical JSON bytes: sorted keys, pinned separators."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"),
    ).encode("utf-8")


def _utcnow() -> str:
    return datetime.datetime.now(datetime.timezone.utc).isoformat()


class TimelineSink:
    """A tracer sink folding quorum verdicts into availability spans.

    One :class:`~repro.obs.analysis.timeline.PolicyTimeline` is built
    per policy seen, streaming — O(1) work per decision and memory
    bounded by span count, so a registry-recorded study pays a dict
    lookup per quorum test, not a stored trace.  The runner attaches
    one per cell (next to the metrics sink) when a registry is wired
    in; :meth:`documents` yields the JSON the registry stores as
    ``timelines.json``.
    """

    def __init__(self) -> None:
        self._timelines: dict[str, Any] = {}
        self._seq = 0

    def emit(self, record: Any) -> None:
        """Fold one trace record (only quorum verdicts matter)."""
        kind = record.kind
        self._seq += 1
        if kind != "quorum.granted" and kind != "quorum.denied":
            return
        from repro.obs.analysis.timeline import PolicyTimeline

        fields = record.fields
        policy = str(fields.get("policy", "?"))
        time = getattr(record, "time", None)
        if time is not None:
            position, unit = float(time), "time"
        else:
            position, unit = float(self._seq), "seq"
        timeline = self._timelines.get(policy)
        if timeline is None:
            timeline = self._timelines[policy] = PolicyTimeline(policy, unit)
        timeline.observe(position, kind == "quorum.granted")

    def close(self) -> None:
        """Nothing to release; spans stay readable."""

    def documents(self) -> dict[str, dict[str, Any]]:
        """Finished ``policy -> timeline`` JSON documents."""
        return {
            policy: timeline.finish().to_dict()
            for policy, timeline in sorted(self._timelines.items())
        }


@dataclass(frozen=True)
class RunRecord:
    """One recorded run: identity, lineage and artifact listing.

    Attributes:
        run_id: Content-addressed identifier (hex).
        kind: ``"study"``, ``"scenario"``, ``"chaos"``, ``"bench"`` or
            ``"profile"``.
        command: The CLI/API entry point that produced the run.
        created_at: ISO-8601 UTC recording time (provenance only —
            never part of the id).
        lineage: Where the run came from: ``baseline`` run id it was
            diffed against, ``chaos_seed``/``config`` of a schedule,
            ``bench_index``/``source`` of a trajectory point, git
            sha/dirty of the code.
        artifacts: Logical name -> file name inside the run directory.
        summary: Small scalars for listings (cells, violations, ...).
        path: The run directory (set when loaded; not serialised).
    """

    run_id: str
    kind: str
    command: str
    created_at: str
    lineage: Mapping[str, Any] = field(default_factory=dict)
    artifacts: Mapping[str, str] = field(default_factory=dict)
    summary: Mapping[str, Any] = field(default_factory=dict)
    path: Optional[pathlib.Path] = field(default=None, compare=False)

    def to_dict(self) -> dict[str, Any]:
        """The JSON stored as ``record.json`` (and the index line)."""
        return {
            "format": _FORMAT,
            "version": _VERSION,
            "run_id": self.run_id,
            "kind": self.kind,
            "command": self.command,
            "created_at": self.created_at,
            "lineage": dict(self.lineage),
            "artifacts": dict(self.artifacts),
            "summary": dict(self.summary),
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any],
                  path: Optional[pathlib.Path] = None) -> "RunRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        if not isinstance(data, Mapping) or data.get("format") != _FORMAT:
            raise ConfigurationError("not a repro run record")
        if data.get("version") != _VERSION:
            raise ConfigurationError(
                f"unsupported run record version {data.get('version')!r}"
            )
        try:
            return RunRecord(
                run_id=str(data["run_id"]),
                kind=str(data["kind"]),
                command=str(data["command"]),
                created_at=str(data["created_at"]),
                lineage=dict(data.get("lineage", {})),
                artifacts=dict(data.get("artifacts", {})),
                summary=dict(data.get("summary", {})),
                path=path,
            )
        except KeyError as exc:
            raise ConfigurationError(
                f"malformed run record: missing {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # artifact access
    # ------------------------------------------------------------------
    def artifact_path(self, name: str) -> pathlib.Path:
        """The on-disk path of artifact *name*.

        Raises:
            ConfigurationError: unknown artifact, or a record that was
                never loaded from (or stored to) a directory.
        """
        if self.path is None:
            raise ConfigurationError(
                f"run {self.run_id} is not backed by a directory"
            )
        file_name = self.artifacts.get(name)
        if file_name is None:
            raise ConfigurationError(
                f"run {self.run_id} records no {name!r} artifact "
                f"(has: {sorted(self.artifacts) or 'none'})"
            )
        return pathlib.Path(self.path) / file_name

    def load_json(self, name: str) -> Any:
        """Parse artifact *name* as JSON."""
        path = self.artifact_path(name)
        try:
            return json.loads(path.read_text())
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read artifact {name!r} of run {self.run_id}: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"artifact {name!r} of run {self.run_id} is not JSON: {exc}"
            ) from exc

    def load_study_cells(self) -> dict:
        """The study cells recorded by this run.

        Raises:
            ConfigurationError: the run records no study table.
        """
        from repro.experiments.study_io import study_from_dict

        return study_from_dict(self.load_json("study"))


class RunRegistry:
    """Content-addressed run storage rooted at one directory.

    The root (default ``.repro/runs``, or the ``REPRO_RUNS_DIR``
    environment variable) is created lazily on the first record.
    Recording is idempotent: a run whose content hash is already stored
    returns the existing record untouched.
    """

    def __init__(self, root: Union[str, pathlib.Path, None] = None):
        if root is None:
            root = os.environ.get(RUNS_DIR_ENV) or DEFAULT_ROOT
        self.root = pathlib.Path(root)

    @property
    def index_path(self) -> pathlib.Path:
        """The append-only ``index.jsonl``."""
        return self.root / "index.jsonl"

    @property
    def cache_dir(self) -> pathlib.Path:
        """Derived-data directory (``.cache/``) under the root."""
        return self.root / CACHE_DIR_NAME

    def index_position(self) -> int:
        """The current byte size of ``index.jsonl`` (0 when absent).

        Because the index is append-only between :meth:`gc` compactions,
        this is a monotone cursor: a consumer that remembers the
        position it summarised up to needs to parse only the bytes past
        it — the invalidation signal the serve summary cache keys on.
        """
        try:
            return self.index_path.stat().st_size
        except OSError:
            return 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _run_id(self, kind: str, identity: bytes) -> str:
        digest = hashlib.sha256(kind.encode() + b"\x00" + identity)
        return digest.hexdigest()[:_ID_LENGTH]

    def _store(
        self,
        kind: str,
        command: str,
        identity: bytes,
        files: Mapping[str, tuple[str, bytes]],
        lineage: Mapping[str, Any],
        summary: Mapping[str, Any],
    ) -> RunRecord:
        """Write one run: artifacts, ``record.json``, the index line.

        *files* maps logical artifact names to ``(file_name, content)``.
        """
        run_id = self._run_id(kind, identity)
        run_dir = self.root / run_id
        if (run_dir / "record.json").exists():
            return self.get(run_id)  # identical content: already stored
        record = RunRecord(
            run_id=run_id,
            kind=kind,
            command=command,
            created_at=_utcnow(),
            lineage=dict(lineage),
            artifacts={name: file_name
                       for name, (file_name, _) in sorted(files.items())},
            summary=dict(summary),
            path=run_dir,
        )
        try:
            run_dir.mkdir(parents=True, exist_ok=True)
            for name, (file_name, content) in sorted(files.items()):
                (run_dir / file_name).write_bytes(content)
            (run_dir / "record.json").write_text(
                json.dumps(record.to_dict(), indent=2, sort_keys=True) + "\n"
            )
            with self.index_path.open("a") as handle:
                handle.write(json.dumps(record.to_dict(),
                                        sort_keys=True) + "\n")
                handle.flush()
        except OSError as exc:
            raise ConfigurationError(
                f"cannot record run under {self.root}: {exc}"
            ) from exc
        return record

    def _code_lineage(self) -> dict[str, Any]:
        from repro.obs.manifest import git_revision

        sha, dirty = git_revision()
        return {"git_sha": sha, "git_dirty": dirty}

    def record_study(
        self,
        cells: Mapping[tuple[str, str], Any],
        params: Any,
        policies: Sequence[str],
        configurations: Sequence[str],
        command: str = "study",
        metrics: Optional[Any] = None,
        timelines: Optional[Mapping[str, Mapping[str, Any]]] = None,
        baseline: Optional[str] = None,
        extra: Optional[Mapping[str, Any]] = None,
    ) -> RunRecord:
        """Record one availability study.

        The run id hashes the canonical study cells plus the parameters
        that produced them — never timings — so the identical seed
        re-run stores nothing new.  *timelines* is the per-configuration
        ``{config: {policy: timeline_doc}}`` mapping the runner captures
        with :class:`TimelineSink`.
        """
        from repro.experiments.study_io import canonical_study_bytes
        from repro.obs.manifest import build_manifest

        study_bytes = canonical_study_bytes(cells)
        identity = study_bytes + b"\x00" + canonical_bytes({
            "seed": params.seed,
            "horizon": params.horizon,
            "warmup": params.warmup,
            "batches": params.batches,
            "access_rate_per_day": params.access_rate_per_day,
            "policies": list(policies),
            "configurations": list(configurations),
        })
        manifest = build_manifest(
            command, params, policies, configurations, **dict(extra or {})
        )
        files: dict[str, tuple[str, bytes]] = {
            "study": ("study.json", study_bytes + b"\n"),
            "manifest": (
                "manifest.json",
                (json.dumps(manifest.to_dict(), indent=2) + "\n").encode(),
            ),
        }
        if metrics is not None:
            files["metrics"] = (
                "metrics.json",
                (json.dumps(metrics.to_dict(), indent=2) + "\n").encode(),
            )
        if timelines:
            files["timelines"] = (
                "timelines.json",
                (json.dumps(
                    {
                        "format": "repro-run-timelines",
                        "version": 1,
                        "configurations": {
                            config: dict(by_policy)
                            for config, by_policy in sorted(timelines.items())
                        },
                    },
                    indent=2, sort_keys=True,
                ) + "\n").encode(),
            )
        lineage = self._code_lineage()
        lineage["seed"] = params.seed
        if baseline:
            lineage["baseline"] = baseline
        failed = getattr(cells, "failed_cells", ())
        return self._store(
            kind="study",
            command=command,
            identity=identity,
            files=files,
            lineage=lineage,
            summary={
                "cells": len(cells),
                "failed_cells": len(failed),
                "policies": sorted({policy for _, policy in cells}),
                "configurations": sorted({config for config, _ in cells}),
                "horizon": params.horizon,
                "seed": params.seed,
            },
        )

    def record_scenario(
        self,
        name: str,
        policy: str,
        records: Sequence[Mapping[str, Any]],
        command: str = "trace",
        baseline: Optional[str] = None,
    ) -> RunRecord:
        """Record one scenario replay with its full decision trace."""
        trace_bytes = b"".join(
            canonical_bytes(record) + b"\n" for record in records
        )
        lineage = self._code_lineage()
        lineage["scenario"] = name
        lineage["policy"] = policy
        if baseline:
            lineage["baseline"] = baseline
        decisions = [
            r for r in records
            if r.get("kind") in ("quorum.granted", "quorum.denied")
        ]
        denied = sum(
            1 for r in decisions if r.get("kind") == "quorum.denied"
        )
        return self._store(
            kind="scenario",
            command=command,
            identity=trace_bytes,
            files={"trace": ("trace.jsonl", trace_bytes)},
            lineage=lineage,
            summary={
                "scenario": name,
                "policy": policy,
                "records": len(records),
                "decisions": len(decisions),
                "denied": denied,
            },
        )

    def record_chaos(
        self,
        result: Any,
        command: str = "chaos",
        baseline: Optional[str] = None,
    ) -> RunRecord:
        """Record one chaos schedule run (trace, schedule, verdict).

        Lineage keeps the schedule seed — the one number that rebuilds
        the whole perturbation sequence deterministically.
        """
        summary_doc = result.to_dict()
        schedule_doc = result.schedule.to_dict()
        schedule_doc["protocol"] = result.policy
        trace_bytes = b"".join(
            canonical_bytes(record) + b"\n"
            for record in result.record_dicts()
        )
        identity = canonical_bytes(summary_doc) + b"\x00" + trace_bytes
        lineage = self._code_lineage()
        lineage["chaos_seed"] = result.schedule.seed
        lineage["config"] = result.schedule.config
        lineage["policy"] = result.policy
        if baseline:
            lineage["baseline"] = baseline
        return self._store(
            kind="chaos",
            command=command,
            identity=identity,
            files={
                "chaos": (
                    "chaos.json",
                    (json.dumps(summary_doc, indent=2) + "\n").encode(),
                ),
                "schedule": (
                    "schedule.json",
                    (json.dumps(schedule_doc, indent=2) + "\n").encode(),
                ),
                "trace": ("trace.jsonl", trace_bytes),
            },
            lineage=lineage,
            summary={
                "policy": result.policy,
                "seed": result.schedule.seed,
                "operations": result.operations,
                "granted": result.granted,
                "denied": result.denied,
                "ok": result.ok,
                "violation": (
                    None if result.violation is None
                    else getattr(result.violation, "invariant", str(result.violation))
                ),
            },
        )

    def record_bench(
        self,
        point: Mapping[str, Any],
        command: str = "bench",
        baseline: Optional[str] = None,
    ) -> RunRecord:
        """Record one benchmark trajectory point.

        Lineage keeps the point's provenance: trajectory index, source
        (quick subset vs pytest-benchmark) and the git revision stamped
        into the point itself.
        """
        from repro.obs.prof.bench import validate_point

        validate_point(point)
        identity = canonical_bytes(point)
        lineage = {
            "git_sha": point.get("git_sha"),
            "git_dirty": point.get("git_dirty"),
            "bench_index": point.get("index"),
            "source": point.get("source"),
        }
        if baseline:
            lineage["baseline"] = baseline
        medians = {
            entry["name"]: entry["median"] for entry in point["benchmarks"]
        }
        return self._store(
            kind="bench",
            command=command,
            identity=identity,
            files={
                "bench": (
                    "bench.json",
                    (json.dumps(dict(point), indent=2) + "\n").encode(),
                ),
            },
            lineage=lineage,
            summary={
                "benchmarks": len(medians),
                "source": point.get("source"),
                "index": point.get("index"),
            },
        )

    def record_profile(
        self,
        report: Mapping[str, Any],
        command: str = "profile",
        label: str = "",
    ) -> RunRecord:
        """Record one profiling report (``repro profile --record``)."""
        identity = canonical_bytes(report)
        lineage = self._code_lineage()
        if label:
            lineage["target"] = label
        hot = report.get("hot") or []
        return self._store(
            kind="profile",
            command=command,
            identity=identity,
            files={
                "profile": (
                    "profile.json",
                    (json.dumps(dict(report), indent=2) + "\n").encode(),
                ),
            },
            lineage=lineage,
            summary={
                "target": label or report.get("target"),
                "engine": report.get("engine"),
                "hottest": (hot[0].get("name") if hot else None),
            },
        )

    def record_service(
        self,
        result: Mapping[str, Any],
        command: str = "service bench",
        samples: Optional[bytes] = None,
        traces: Optional[bytes] = None,
        tsdb: Union[str, pathlib.Path, None] = None,
    ) -> RunRecord:
        """Record one replicated-service bench run.

        *result* is the ``repro-service-bench`` document; *samples* is
        the optional per-operation JSON-lines blob, stored as a sidecar
        under :data:`SAMPLES_DIR_NAME` (outside the run's identity —
        see :meth:`samples_path`); *traces* is the optional exemplar
        trace span blob, stored under :data:`TRACES_DIR_NAME` (see
        :meth:`traces_path`); *tsdb* is the optional directory of a
        scraped :class:`~repro.obs.tsdb.TimeSeriesStore`, copied whole
        under :data:`TSDB_DIR_NAME` (see :meth:`tsdb_path`).
        """
        if result.get("format") != "repro-service-bench":
            raise ConfigurationError(
                "record_service expects a repro-service-bench document, "
                f"got format={result.get('format')!r}"
            )
        identity = canonical_bytes(result)
        lineage = self._code_lineage()
        lineage["seed"] = result.get("seed")
        lineage["policies"] = sorted(result.get("policies", {}))
        totals = result.get("totals", {})
        record = self._store(
            kind="service",
            command=command,
            identity=identity,
            files={
                "service": (
                    "service.json",
                    (json.dumps(dict(result), indent=2,
                                sort_keys=True) + "\n").encode(),
                ),
            },
            lineage=lineage,
            summary={
                "policies": ",".join(sorted(result.get("policies", {}))),
                "seed": result.get("seed"),
                "replicas": result.get("replicas"),
                "operations": totals.get("operations"),
                "kills": totals.get("kills"),
                "partitions": totals.get("partitions"),
                "violations": totals.get("violations"),
                "ok": result.get("ok"),
            },
        )
        for blob, path_of, what in (
                (samples, self.samples_path, "samples"),
                (traces, self.traces_path, "traces")):
            if not blob:
                continue
            path = path_of(record.run_id)
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_bytes(blob)
            except OSError as exc:
                raise ConfigurationError(
                    f"cannot write {what} sidecar {path}: {exc}"
                ) from exc
        if tsdb is not None:
            source = pathlib.Path(tsdb)
            destination = self.tsdb_path(record.run_id)
            try:
                if destination.exists():
                    shutil.rmtree(destination)
                destination.parent.mkdir(parents=True, exist_ok=True)
                shutil.copytree(source, destination)
            except OSError as exc:
                raise ConfigurationError(
                    f"cannot copy tsdb sidecar {source} -> "
                    f"{destination}: {exc}"
                ) from exc
        return record

    def samples_path(self, run_id: str) -> pathlib.Path:
        """Where *run_id*'s per-operation samples sidecar lives (the
        file may not exist — not every run records samples)."""
        return self.root / SAMPLES_DIR_NAME / f"{run_id}.jsonl"

    def traces_path(self, run_id: str) -> pathlib.Path:
        """Where *run_id*'s exemplar trace span sidecar lives (the
        file may not exist — only traced service runs record one)."""
        return self.root / TRACES_DIR_NAME / f"{run_id}.jsonl"

    def tsdb_path(self, run_id: str) -> pathlib.Path:
        """Where *run_id*'s time-series store directory lives (it may
        not exist — only scraped service runs record one)."""
        return self.root / TSDB_DIR_NAME / run_id

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get(self, run_id: str) -> RunRecord:
        """Load the record of *run_id* (exact id only).

        Raises:
            ConfigurationError: no such run under this root.
        """
        run_dir = self.root / run_id
        path = run_dir / "record.json"
        try:
            data = json.loads(path.read_text())
        except OSError:
            raise ConfigurationError(
                f"no run {run_id!r} under {self.root}"
            ) from None
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"run {run_id!r} has a corrupt record: {exc}"
            ) from exc
        return RunRecord.from_dict(data, path=run_dir)

    def read_index_from(
        self, offset: int = 0
    ) -> tuple[list[dict[str, Any]], int]:
        """Parse complete index lines starting at byte *offset*.

        Returns ``(records, new_offset)`` where *new_offset* points just
        past the last **complete** (newline-terminated) line consumed.
        A trailing segment with no newline — the signature of a
        concurrent writer caught mid-append — is left for the next call
        instead of raising, matching the truncation tolerance of
        :func:`repro.obs.tracer.iter_jsonl`.  A complete line that is
        not JSON is real corruption and raises.

        Raises:
            ConfigurationError: *offset* is negative or past the file,
                or a newline-terminated line fails to parse.
        """
        if offset < 0:
            raise ConfigurationError(
                f"index offset must be >= 0, got {offset}"
            )
        try:
            with self.index_path.open("rb") as handle:
                handle.seek(offset)
                data = handle.read()
        except OSError:
            if offset == 0:
                return [], 0
            raise ConfigurationError(
                f"no index to read at offset {offset} under {self.root}"
            ) from None
        records: list[dict[str, Any]] = []
        position = offset
        for raw in data.split(b"\n")[:-1]:  # drop the newline-less tail
            position += len(raw) + 1
            line = raw.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"corrupt index line at byte {position - len(raw) - 1} "
                    f"under {self.root}: {exc}"
                ) from exc
            if isinstance(payload, dict):
                records.append(payload)
        return records, position

    def adopt(self, run_dir: Union[str, pathlib.Path]) -> RunRecord:
        """Copy an external run directory into this registry.

        *run_dir* is a directory holding a ``record.json`` (for example
        the committed ``results/baseline_run``).  Its artifacts are
        copied under ``<root>/<run_id>/`` and the record appended to the
        index; adopting a run that is already stored is a no-op, like
        any other recording.

        Raises:
            ConfigurationError: *run_dir* holds no readable run record,
                or an artifact it lists is missing.
        """
        source = pathlib.Path(run_dir)
        if source.name == "record.json":
            source = source.parent
        record_path = source / "record.json"
        try:
            data = json.loads(record_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(
                f"cannot adopt {run_dir}: {exc}"
            ) from exc
        record = RunRecord.from_dict(data, path=source)
        destination = self.root / record.run_id
        if (destination / "record.json").exists():
            return self.get(record.run_id)
        try:
            destination.mkdir(parents=True, exist_ok=True)
            for file_name in record.artifacts.values():
                shutil.copyfile(source / file_name,
                                destination / file_name)
            shutil.copyfile(record_path, destination / "record.json")
            with self.index_path.open("a") as handle:
                handle.write(json.dumps(record.to_dict(),
                                        sort_keys=True) + "\n")
                handle.flush()
        except OSError as exc:
            shutil.rmtree(destination, ignore_errors=True)
            raise ConfigurationError(
                f"cannot adopt {run_dir} into {self.root}: {exc}"
            ) from exc
        return self.get(record.run_id)

    def list_runs(self, kind: Optional[str] = None) -> list[RunRecord]:
        """Every recorded run, oldest first (the index order).

        Reads the append-only index with the same truncation-tolerant
        reader the trace analytics use; runs whose directory has been
        deleted out from under the index are skipped.
        """
        from repro.obs.tracer import iter_jsonl

        if not self.index_path.exists():
            return []
        runs = []
        seen: set[str] = set()
        for line in iter_jsonl(self.index_path):
            run_id = line.get("run_id")
            if not run_id or run_id in seen:
                continue
            seen.add(run_id)
            run_dir = self.root / str(run_id)
            if not (run_dir / "record.json").exists():
                continue
            try:
                record = RunRecord.from_dict(line, path=run_dir)
            except ConfigurationError:
                continue
            if kind is None or record.kind == kind:
                runs.append(record)
        return runs

    def latest(self, kind: Optional[str] = None) -> Optional[RunRecord]:
        """The most recently recorded run (of *kind*), or ``None``."""
        runs = self.list_runs(kind=kind)
        return runs[-1] if runs else None

    # ------------------------------------------------------------------
    # live sessions
    # ------------------------------------------------------------------
    def live_sessions(self) -> list[Any]:
        """Every live-telemetry session under this root, oldest first.

        A live session (:class:`~repro.obs.live.stream.LiveSession`) is
        a directory holding a ``live.json`` descriptor and a tailable
        ``live.jsonl`` event stream.  It has no ``record.json``, so the
        index-driven run listing never sees it; this scan is the one
        place live directories are discovered.
        """
        from repro.obs.live.stream import LIVE_DESCRIPTOR_NAME, LiveSession

        sessions = []
        try:
            children = sorted(self.root.iterdir())
        except OSError:
            return []
        for child in children:
            if child.name == CACHE_DIR_NAME:
                continue
            if not (child / LIVE_DESCRIPTOR_NAME).is_file():
                continue
            try:
                sessions.append(LiveSession.load(child))
            except ConfigurationError:
                continue
        sessions.sort(
            key=lambda session: str(session.descriptor.get("started_at", ""))
        )
        return sessions

    def latest_live(self) -> Optional[Any]:
        """The most recently started live session, preferring one that
        is still running; ``None`` when there are none."""
        sessions = self.live_sessions()
        if not sessions:
            return None
        running = [s for s in sessions if s.status == "running"]
        return (running or sessions)[-1]

    def resolve_live(self, token: str) -> Any:
        """Resolve *token* to one live session.

        Accepted forms: the literal ``latest`` (running sessions win);
        an exact live id; a unique id prefix of at least 4 characters;
        or the ``run_id`` a finished session was recorded as.

        Raises:
            ConfigurationError: nothing (or more than one) matches.
        """
        if token == "latest":
            session = self.latest_live()
            if session is None:
                raise ConfigurationError(
                    f"no live sessions under {self.root}"
                )
            return session
        wanted = token.lower()
        sessions = self.live_sessions()
        matches = [
            session for session in sessions
            if session.live_id == wanted
            or str(session.descriptor.get("run_id", "")) == wanted
        ]
        if not matches and len(wanted) >= _MIN_PREFIX:
            matches = [
                session for session in sessions
                if session.live_id.startswith(wanted)
            ]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            ids = ", ".join(session.live_id for session in matches)
            raise ConfigurationError(
                f"live session prefix {token!r} is ambiguous: {ids}"
            )
        raise ConfigurationError(
            f"no live session matches {token!r} under {self.root}"
        )

    def resolve(self, token: str) -> RunRecord:
        """Resolve *token* to one run.

        Accepted forms, in order: the literal ``latest``; a path to a
        run directory (or its ``record.json``) — which is how CI diffs
        against a baseline run committed outside the registry; an exact
        run id; a unique id prefix of at least 4 characters.

        Raises:
            ConfigurationError: nothing (or more than one run) matches.
        """
        if token == "latest":
            record = self.latest()
            if record is None:
                raise ConfigurationError(
                    f"no runs recorded under {self.root}"
                )
            return record
        as_path = pathlib.Path(token)
        if as_path.name == "record.json" and as_path.is_file():
            as_path = as_path.parent
        if (as_path / "record.json").is_file():
            try:
                data = json.loads((as_path / "record.json").read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise ConfigurationError(
                    f"cannot read run record at {as_path}: {exc}"
                ) from exc
            return RunRecord.from_dict(data, path=as_path)
        if (self.root / token / "record.json").is_file():
            return self.get(token)
        if len(token) >= _MIN_PREFIX:
            matches = [
                record for record in self.list_runs()
                if record.run_id.startswith(token)
            ]
            if len(matches) == 1:
                return matches[0]
            if len(matches) > 1:
                ids = ", ".join(record.run_id for record in matches)
                raise ConfigurationError(
                    f"run prefix {token!r} is ambiguous: {ids}"
                )
        raise ConfigurationError(
            f"no run matches {token!r} under {self.root} "
            "(give a run id, a unique prefix, a run directory path, "
            "or 'latest')"
        )

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def gc(
        self,
        keep_last: Optional[int] = None,
        kinds: Optional[Iterable[str]] = None,
        dry_run: bool = False,
    ) -> list[RunRecord]:
        """Prune old runs; returns the records that were (or would be)
        deleted.

        *keep_last* keeps the N most recently recorded runs (per the
        index order); *kinds* restricts deletion to those run kinds.
        ``gc`` is the one operation that compacts the append-only index
        — survivors are rewritten in their original order.
        """
        if keep_last is not None and keep_last < 0:
            raise ConfigurationError(
                f"keep-last must be >= 0, got {keep_last}"
            )
        runs = self.list_runs()
        kind_set = set(kinds) if kinds is not None else None
        candidates = [
            record for record in runs
            if kind_set is None or record.kind in kind_set
        ]
        keep = keep_last if keep_last is not None else 0
        doomed = candidates[: max(0, len(candidates) - keep)]
        if dry_run:
            return doomed
        if doomed:
            doomed_ids = {record.run_id for record in doomed}
            for record in doomed:
                shutil.rmtree(self.root / record.run_id,
                              ignore_errors=True)
            survivors = [r for r in runs if r.run_id not in doomed_ids]
            try:
                tmp = self.index_path.with_suffix(".jsonl.tmp")
                with tmp.open("w") as handle:
                    for record in survivors:
                        handle.write(json.dumps(record.to_dict(),
                                                sort_keys=True) + "\n")
                tmp.replace(self.index_path)
            except OSError as exc:
                raise ConfigurationError(
                    f"cannot rewrite index under {self.root}: {exc}"
                ) from exc
            # Compaction is the one move that breaks the append-only
            # cursor contract, so derived summaries must be rebuilt
            # from scratch.
            shutil.rmtree(self.cache_dir, ignore_errors=True)
        # Finished live sessions are derived data too: their streams
        # were either recorded (run_id stamped) or abandoned.  Running
        # ones are left alone — another process may still be writing.
        for session in self.live_sessions():
            if session.status != "running":
                shutil.rmtree(session.path, ignore_errors=True)
        # Sidecars follow their run the same way: once the run is gone
        # from the index, the (large) per-operation sample and trace
        # files are orphans and go with it.
        alive: Optional[set[str]] = None
        for dir_name in (SAMPLES_DIR_NAME, TRACES_DIR_NAME):
            sidecar_dir = self.root / dir_name
            if not sidecar_dir.is_dir():
                continue
            if alive is None:
                alive = {record.run_id for record in self.list_runs()}
            for sidecar in sidecar_dir.glob("*.jsonl"):
                if sidecar.stem not in alive:
                    try:
                        sidecar.unlink()
                    except OSError:
                        pass
        # Time-series sidecars are whole directories, one per run id.
        tsdb_dir = self.root / TSDB_DIR_NAME
        if tsdb_dir.is_dir():
            if alive is None:
                alive = {record.run_id for record in self.list_runs()}
            for child in tsdb_dir.iterdir():
                if child.is_dir() and child.name not in alive:
                    shutil.rmtree(child, ignore_errors=True)
        return doomed
