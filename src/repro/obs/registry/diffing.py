"""Cross-run regression diffing for recorded studies.

:func:`diff_runs` aligns two recorded study runs cell by cell
(configuration × policy) and passes every *unavailability* delta
through the same noise-aware gate the benchmark trajectory uses
(:func:`repro.obs.prof.bench.noise_gated_verdict`).  The noise term for
an availability cell is its batch-means confidence half-width: a
difference only counts as a regression when it clears *both* the
relative threshold and a multiple of the wider of the two cells'
half-widths.  Re-running the identical seed therefore diffs to zero
deltas and a clean exit, while a genuinely worse protocol trips the
gate even when the relative change is small in absolute terms.

``repro runs diff`` prints the aligned table and exits 1 when any cell
regresses — the availability analogue of ``repro bench compare``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import ConfigurationError
from repro.obs.prof.bench import noise_gated_verdict

__all__ = [
    "CellDelta",
    "RunDiff",
    "diff_runs",
    "format_diff",
]

#: Relative unavailability increase below which a cell is never flagged.
DEFAULT_MAX_REGRESSION = 0.25

#: Multiplier on the wider confidence half-width a delta must also clear.
DEFAULT_NOISE_FACTOR = 1.5


@dataclass(frozen=True)
class CellDelta:
    """One aligned (configuration, policy) cell across two runs.

    Attributes:
        config: Configuration key (``"A"`` ... ``"L"``).
        policy: Voting policy name.
        baseline: Baseline unavailability (fraction of time down).
        current: Current unavailability.
        delta: ``current - baseline`` (positive = less available).
        baseline_noise: Baseline batch-means CI half-width.
        current_noise: Current batch-means CI half-width.
        verdict: ``"regression"``, ``"improvement"`` or
            ``"within-noise"`` from the shared gate.
        baseline_down: Baseline mean down duration (hours).
        current_down: Current mean down duration (hours).
    """

    config: str
    policy: str
    baseline: float
    current: float
    delta: float
    baseline_noise: float
    current_noise: float
    verdict: str
    baseline_down: float
    current_down: float

    @property
    def ratio(self) -> Optional[float]:
        """``current / baseline``, or ``None`` for a zero baseline."""
        if self.baseline == 0.0:
            return None
        return self.current / self.baseline

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable representation."""
        return {
            "config": self.config,
            "policy": self.policy,
            "baseline": self.baseline,
            "current": self.current,
            "delta": self.delta,
            "ratio": self.ratio,
            "baseline_noise": self.baseline_noise,
            "current_noise": self.current_noise,
            "verdict": self.verdict,
            "baseline_down": self.baseline_down,
            "current_down": self.current_down,
        }


@dataclass(frozen=True)
class RunDiff:
    """The full alignment of two recorded study runs.

    Attributes:
        baseline_id: Run id the comparison is anchored on.
        current_id: Run id under test.
        cells: Aligned deltas, sorted by (config, policy).
        only_baseline: Cells present only in the baseline run.
        only_current: Cells present only in the current run.
        max_regression: Relative threshold the gate used.
        noise_factor: Half-width multiplier the gate used.
    """

    baseline_id: str
    current_id: str
    cells: tuple[CellDelta, ...]
    only_baseline: tuple[tuple[str, str], ...] = ()
    only_current: tuple[tuple[str, str], ...] = ()
    max_regression: float = DEFAULT_MAX_REGRESSION
    noise_factor: float = DEFAULT_NOISE_FACTOR

    @property
    def regressions(self) -> tuple[CellDelta, ...]:
        """Cells whose verdict is ``"regression"``."""
        return tuple(c for c in self.cells if c.verdict == "regression")

    @property
    def improvements(self) -> tuple[CellDelta, ...]:
        """Cells whose verdict is ``"improvement"``."""
        return tuple(c for c in self.cells if c.verdict == "improvement")

    @property
    def ok(self) -> bool:
        """True when no cell regressed (missing cells do not gate)."""
        return not self.regressions

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable representation."""
        return {
            "format": "repro-run-diff",
            "version": 1,
            "baseline": self.baseline_id,
            "current": self.current_id,
            "max_regression": self.max_regression,
            "noise_factor": self.noise_factor,
            "ok": self.ok,
            "regressions": len(self.regressions),
            "improvements": len(self.improvements),
            "cells": [cell.to_dict() for cell in self.cells],
            "only_baseline": [list(key) for key in self.only_baseline],
            "only_current": [list(key) for key in self.only_current],
        }


def _study_cells(record: Any) -> dict:
    try:
        return record.load_study_cells()
    except ConfigurationError as exc:
        raise ConfigurationError(
            f"run {record.run_id} ({record.kind}) cannot be diffed: {exc}"
        ) from exc


def diff_runs(
    baseline: Any,
    current: Any,
    max_regression: float = DEFAULT_MAX_REGRESSION,
    noise_factor: float = DEFAULT_NOISE_FACTOR,
) -> RunDiff:
    """Align two recorded study runs cell by cell and gate the deltas.

    Args:
        baseline: The anchor :class:`~repro.obs.registry.store.RunRecord`.
        current: The record under test.
        max_regression: Relative unavailability increase tolerated
            before a cell can regress (0.25 = 25%).
        noise_factor: The delta must additionally exceed this multiple
            of the wider of the two cells' CI half-widths.

    Raises:
        ConfigurationError: either run records no study table, or the
            thresholds are malformed.
    """
    if max_regression < 0:
        raise ConfigurationError(
            f"max-regression must be >= 0, got {max_regression}"
        )
    if noise_factor < 0:
        raise ConfigurationError(
            f"noise-factor must be >= 0, got {noise_factor}"
        )
    base_cells = _study_cells(baseline)
    cur_cells = _study_cells(current)
    shared = sorted(set(base_cells) & set(cur_cells))
    deltas = []
    for key in shared:
        base = base_cells[key].result
        cur = cur_cells[key].result
        verdict = noise_gated_verdict(
            base.unavailability,
            cur.unavailability,
            base.interval.half_width,
            cur.interval.half_width,
            max_regression=max_regression,
            iqr_factor=noise_factor,
        )
        deltas.append(CellDelta(
            config=key[0],
            policy=key[1],
            baseline=base.unavailability,
            current=cur.unavailability,
            delta=cur.unavailability - base.unavailability,
            baseline_noise=base.interval.half_width,
            current_noise=cur.interval.half_width,
            verdict=verdict,
            baseline_down=base.mean_down_duration,
            current_down=cur.mean_down_duration,
        ))
    return RunDiff(
        baseline_id=baseline.run_id,
        current_id=current.run_id,
        cells=tuple(deltas),
        only_baseline=tuple(sorted(set(base_cells) - set(cur_cells))),
        only_current=tuple(sorted(set(cur_cells) - set(base_cells))),
        max_regression=max_regression,
        noise_factor=noise_factor,
    )


_MARKS = {"regression": "!", "improvement": "+", "within-noise": " "}


def format_diff(diff: RunDiff, verbose: bool = False) -> str:
    """Render *diff* as the aligned text table ``repro runs diff``
    prints.

    Quiet cells are elided unless *verbose*; regressions and
    improvements always show.
    """
    lines = [
        f"baseline {diff.baseline_id}  ->  current {diff.current_id}",
        f"cells compared: {len(diff.cells)}  "
        f"regressions: {len(diff.regressions)}  "
        f"improvements: {len(diff.improvements)}",
    ]
    shown = [
        cell for cell in diff.cells
        if verbose or cell.verdict != "within-noise"
    ]
    if shown:
        lines.append("")
        lines.append(
            f"  {'cell':<10} {'baseline':>12} {'current':>12} "
            f"{'delta':>12}  verdict"
        )
        for cell in shown:
            mark = _MARKS.get(cell.verdict, "?")
            lines.append(
                f"{mark} {cell.config + '/' + cell.policy:<10} "
                f"{cell.baseline:>12.6f} {cell.current:>12.6f} "
                f"{cell.delta:>+12.6f}  {cell.verdict}"
            )
    elif diff.cells:
        lines.append("all compared cells within noise")
    for label, keys in (
        ("only in baseline", diff.only_baseline),
        ("only in current", diff.only_current),
    ):
        if keys:
            rendered = ", ".join(f"{c}/{p}" for c, p in keys)
            lines.append(f"{label}: {rendered}")
    return "\n".join(lines)
