"""The results-explorer web service over the run registry.

``repro serve`` promotes the content-addressed registry from an
artifact dump into the project's operational surface: a browsable run
index with pregenerated summary cards, per-run pages rendered by the
same fragments as ``repro report``, CI-grade cross-run diff views, and
a versioned JSON API — all stdlib-only WSGI, with the server's own
request telemetry flowing into the ordinary metrics registry as
``serve.*`` series.

Layout:

* :mod:`~repro.obs.serve.app` — routing, pages, JSON API, ETag/304
  handling, the gunicorn-compatible :data:`~repro.obs.serve.app.app`;
* :mod:`~repro.obs.serve.cache` — ``cubedash-gen``-style summary
  pregeneration keyed on the append-only index position;
* :mod:`~repro.obs.serve.middleware` — request-timing middleware and
  structured access logs.
"""

from repro.obs.serve.app import (
    API_VERSION,
    RunExplorerApp,
    app,
    create_app,
    make_http_server,
)
from repro.obs.serve.cache import (
    SORT_KEYS,
    SummaryCache,
    caption,
    query_cards,
    summary_card,
)
from repro.obs.serve.middleware import ROUTE_KEY, RequestTimingMiddleware

__all__ = [
    "API_VERSION",
    "ROUTE_KEY",
    "RequestTimingMiddleware",
    "RunExplorerApp",
    "SORT_KEYS",
    "SummaryCache",
    "app",
    "caption",
    "create_app",
    "make_http_server",
    "query_cards",
    "summary_card",
]
