"""Request telemetry for the results explorer — observing the observer.

A WSGI middleware in the datacube-explorer ``_monitoring.py`` shape:
every request is timed into the same :class:`MetricsRegistry` the
simulator uses, as ``serve.*`` series —

* ``serve.requests`` — counter labelled ``route`` × ``status`` class
  (``2xx``/``3xx``/``4xx``/``5xx``);
* ``serve.latency.seconds`` — per-route wall-clock histogram
  (p50/p95/p99 land in ``/metricsz`` for free);
* ``serve.response.bytes`` — per-route payload-size histogram —

and one structured access-log line goes through the obs logging bridge
(logger ``repro.serve``), so explorer traffic interleaves with the rest
of the package's logs under the ordinary ``--log-level`` switch.

The inner app names its route by setting ``environ["repro.route"]``
while handling the request; the middleware reads it afterwards, so
metrics aggregate by route pattern (``run``, ``api.runs``, ...), never
by raw path — a thousand ``/runs/<id>`` pages are one series, not a
thousand.

Materialised responses are joined into one body (one write, correct
``Content-Length`` accounting).  A *streaming* response — the SSE live
endpoint — must not be buffered: the inner app marks it by setting
``environ["repro.stream"]`` truthy, and the middleware then passes
chunks through as they are produced, recording the same metrics and
access-log line when the stream ends (including a client disconnect,
which surfaces as ``close()`` on the pass-through generator).
"""

from __future__ import annotations

import logging
import time
from typing import Any, Callable, Iterable, Iterator, Optional

from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry

__all__ = ["ROUTE_KEY", "STREAM_KEY", "RequestTimingMiddleware"]

#: ``environ`` key the app sets to its matched route label.
ROUTE_KEY = "repro.route"

#: ``environ`` key the app sets (truthy) when the response must stream
#: chunk by chunk instead of being joined into one body.
STREAM_KEY = "repro.stream"


class RequestTimingMiddleware:
    """Wraps a WSGI app with per-request metrics and access logging."""

    def __init__(
        self,
        app: Callable[..., Iterable[bytes]],
        metrics: MetricsRegistry,
        logger: Optional[logging.Logger] = None,
    ):
        self.app = app
        self.metrics = metrics
        self.logger = logger if logger is not None else get_logger("serve")

    def __call__(self, environ: dict[str, Any],
                 start_response: Callable[..., Any]) -> Iterable[bytes]:
        start = time.perf_counter()
        seen_status: list[str] = []

        def counting_start_response(status, headers, exc_info=None):
            seen_status.append(status)
            return start_response(status, headers, exc_info)

        chunks = self.app(environ, counting_start_response)
        if environ.get(STREAM_KEY):
            return self._passthrough(chunks, environ, start, seen_status)
        try:
            body = b"".join(chunks)
        finally:
            close = getattr(chunks, "close", None)
            if close is not None:
                close()
        self._record(environ, start, seen_status, len(body))
        return [body]

    def _passthrough(
        self,
        chunks: Iterable[bytes],
        environ: dict[str, Any],
        start: float,
        seen_status: list[str],
    ) -> Iterator[bytes]:
        """Yield *chunks* unbuffered; account when the stream ends.

        The ``finally`` runs on normal exhaustion *and* on
        ``GeneratorExit`` — the WSGI server closes the iterable when
        the client disconnects mid-stream — so a dropped SSE client
        still produces one access-log line and its latency sample.
        The inner iterable's own ``close()`` (which releases the tail
        file handle) is always invoked.
        """
        bytes_sent = 0
        try:
            for chunk in chunks:
                bytes_sent += len(chunk)
                yield chunk
        finally:
            close = getattr(chunks, "close", None)
            if close is not None:
                close()
            self._record(environ, start, seen_status, bytes_sent)

    def _record(
        self,
        environ: dict[str, Any],
        start: float,
        seen_status: list[str],
        bytes_sent: int,
    ) -> None:
        duration = time.perf_counter() - start
        status = seen_status[-1] if seen_status else "500 Internal Error"
        try:
            code = int(status.split(None, 1)[0])
        except ValueError:
            code = 500
        klass = f"{code // 100}xx"
        route = str(environ.get(ROUTE_KEY, "unrouted"))
        self.metrics.counter(
            "serve.requests", route=route, status=klass
        ).inc()
        self.metrics.histogram(
            "serve.latency.seconds", route=route
        ).observe(duration)
        self.metrics.histogram(
            "serve.response.bytes", route=route
        ).observe(float(bytes_sent))
        if self.logger.isEnabledFor(logging.INFO):
            self.logger.info(
                "access method=%s path=%s route=%s status=%d "
                "duration_ms=%.2f bytes=%d",
                environ.get("REQUEST_METHOD", "-"),
                environ.get("PATH_INFO", "-"),
                route, code, duration * 1000.0, bytes_sent,
            )
