"""SSE wire helpers and the ``/live`` dashboard for ``repro serve``.

Wire format (Server-Sent Events, ``text/event-stream``): every
telemetry event becomes one frame ::

    id: <seq>
    data: {"seq": ..., "kind": "study.cell", "at": ..., ...}

followed by a blank line.  Idle polls emit comment heartbeats
(``: keepalive``) so proxies keep the connection warm, and the stream
ends with a named terminal frame ::

    event: end
    data: {"kind": "stream.end", "status": "finished", "run_id": ...}

The dashboard page is self-contained vanilla JS in the shared report
chrome: it lists live sessions from ``/api/live``, follows one over
``EventSource``, and renders per-run progress bars, events/s and RSS
sparklines, and invariant-violation and SLO-alert callouts as they
arrive (an ``alert.firing`` event raises a callout; the matching
``alert.resolved`` edge turns it green).
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Optional

__all__ = [
    "SSE_CONTENT_TYPE",
    "live_dashboard_body",
    "sse_comment",
    "sse_end",
    "sse_event",
]

#: Content type of the SSE endpoint.
SSE_CONTENT_TYPE = "text/event-stream; charset=utf-8"


def sse_event(event: Mapping[str, Any]) -> bytes:
    """One telemetry event as an SSE frame (``id:`` + ``data:``)."""
    seq = event.get("seq")
    prefix = f"id: {seq}\n" if isinstance(seq, int) else ""
    return (
        prefix + "data: " + json.dumps(event, sort_keys=True) + "\n\n"
    ).encode()


def sse_end(status: str, run_id: Optional[str] = None) -> bytes:
    """The terminal frame: a named ``end`` event."""
    payload: dict[str, Any] = {"kind": "stream.end", "status": status}
    if run_id:
        payload["run_id"] = run_id
    return (
        "event: end\ndata: " + json.dumps(payload, sort_keys=True) + "\n\n"
    ).encode()


def sse_comment(text: str) -> bytes:
    """A comment frame (heartbeat; ignored by ``EventSource``)."""
    return (": " + text + "\n\n").encode()


_LIVE_CSS = """
.live-grid { display: grid; gap: 1rem;
  grid-template-columns: repeat(auto-fit, minmax(280px, 1fr)); }
.panel { border: 1px solid var(--grid); border-radius: 10px;
  background: var(--panel); padding: .8rem 1rem; }
.panel h3 { margin: 0 0 .5rem; }
.stat { font-size: 1.3rem; font-variant-numeric: tabular-nums; }
.stat small { font-size: .75rem; color: var(--ink-muted); }
.progress { background: var(--surface); border: 1px solid var(--grid);
  border-radius: 6px; height: 18px; overflow: hidden; margin: .4rem 0; }
.progress .fill { background: var(--accent); height: 100%; width: 0;
  transition: width .3s; }
svg.spark { display: block; width: 100%; height: 46px; }
svg.spark polyline { fill: none; stroke: var(--accent);
  stroke-width: 1.5; }
svg.spark .frame { fill: none; stroke: var(--grid); }
#live-sessions .card { cursor: pointer; }
#live-sessions .card.active { border-color: var(--accent); }
#live-status.running { color: var(--good); }
#live-status.finished { color: var(--ink-muted); }
#live-log { font-family: ui-monospace, monospace; font-size: .78rem;
  max-height: 14rem; overflow-y: auto; white-space: pre-wrap; }
"""

_LIVE_JS = """
(function () {
  'use strict';
  var source = null, session = null;
  var total = 0, done = 0;
  var rates = [], rsses = [];
  var el = function (id) { return document.getElementById(id); };

  function fmt(n) {
    if (n === null || n === undefined) return '—';
    if (n >= 1e9) return (n / 1e9).toFixed(1) + 'G';
    if (n >= 1e6) return (n / 1e6).toFixed(1) + 'M';
    if (n >= 1e3) return (n / 1e3).toFixed(1) + 'k';
    return (Math.round(n * 100) / 100).toString();
  }

  function spark(svg, values) {
    var frame = '<rect class="frame" x="0" y="0" width="100" height="28"/>';
    if (values.length < 2) { svg.innerHTML = frame; return; }
    var tail = values.slice(-120);
    var max = Math.max.apply(null, tail), min = Math.min.apply(null, tail);
    var span = (max - min) || 1;
    var pts = tail.map(function (v, i) {
      var x = (i / (tail.length - 1)) * 100;
      var y = 26 - ((v - min) / span) * 24;
      return x.toFixed(2) + ',' + y.toFixed(2);
    }).join(' ');
    svg.innerHTML = frame + '<polyline points="' + pts + '"/>';
  }

  function logLine(text, cls) {
    var line = document.createElement('div');
    if (cls) line.className = cls;
    line.textContent = text;
    var log = el('live-log');
    log.appendChild(line);
    log.scrollTop = log.scrollHeight;
    while (log.childNodes.length > 400) log.removeChild(log.firstChild);
  }

  function violation(ev) {
    var box = document.createElement('div');
    box.className = 'callout critical';
    var icon = document.createElement('span');
    icon.className = 'icon';
    icon.textContent = '\\u2715 ' + (ev.invariant || 'violation');
    var text = document.createElement('span');
    text.textContent = (ev.policy || '?') + ' seed ' + ev.seed +
      ' step ' + ev.step + ': ' + (ev.detail || '');
    box.appendChild(icon);
    box.appendChild(text);
    el('live-violations').appendChild(box);
  }

  var alertBoxes = {};

  function alertEdge(ev, firing) {
    var name = ev.alert || 'alert';
    if (firing) {
      var box = document.createElement('div');
      box.className = 'callout ' +
        (ev.severity === 'critical' ? 'critical' : 'warning');
      var icon = document.createElement('span');
      icon.className = 'icon';
      icon.textContent = '\\u26a0 ' + name + ' FIRING';
      var text = document.createElement('span');
      var detail = [];
      if (ev.burn_fast !== undefined)
        detail.push('burn fast=' + ev.burn_fast + ' slow=' + ev.burn_slow);
      if (ev.value !== undefined && ev.value !== null)
        detail.push((ev.quantile || 'value') + '=' + ev.value +
          ' > ' + ev.threshold);
      text.textContent = '[' + (ev.severity || 'warning') + '] ' +
        detail.join(' \\u00b7 ');
      box.appendChild(icon);
      box.appendChild(text);
      if (alertBoxes[name]) alertBoxes[name].remove();
      alertBoxes[name] = box;
      el('live-violations').appendChild(box);
    } else if (alertBoxes[name]) {
      alertBoxes[name].className = 'callout good';
      var mark = alertBoxes[name].querySelector('.icon');
      if (mark) mark.textContent = '\\u2713 ' + name + ' resolved';
      var body = alertBoxes[name].querySelector('span + span');
      if (body && ev.after_seconds !== undefined)
        body.textContent = 'resolved after ' + ev.after_seconds + 's';
      delete alertBoxes[name];
    }
  }

  function handle(ev) {
    if (ev.kind === 'study.start') {
      total = ev.total_cells || 0;
      el('live-phase').textContent = 'starting (' + total + ' cells, seed ' +
        ev.seed + ', horizon ' + ev.horizon + ')';
    } else if (ev.kind === 'study.phase' || ev.kind === 'chaos.phase') {
      el('live-phase').textContent = ev.phase ||
        ('policy ' + ev.policy + ' \\u00d7 ' + ev.seeds + ' seeds');
    } else if (ev.kind === 'study.cell') {
      done = ev.cells_done || 0;
      total = ev.total_cells || total;
      var pct = total ? (100 * done / total) : 0;
      el('live-fill').style.width = pct.toFixed(1) + '%';
      el('live-cells').textContent = done + ' / ' + total +
        (ev.cell ? ' \\u00b7 last ' + [].concat(ev.cell).join('/') : '');
      if (ev.events_per_second) {
        rates.push(ev.events_per_second);
        el('live-rate').firstChild.textContent = fmt(ev.events_per_second);
        spark(el('spark-rate'), rates);
      }
      if (ev.eta_seconds !== null && ev.eta_seconds !== undefined)
        el('live-eta').textContent = 'ETA ' + fmt(ev.eta_seconds) + 's';
    } else if (ev.kind === 'resource.sample') {
      if (ev.rss_bytes) {
        rsses.push(ev.rss_bytes);
        el('live-rss').firstChild.textContent = fmt(ev.rss_bytes) + 'B';
        spark(el('spark-rss'), rsses);
      }
      if (ev.events_per_second) {
        rates.push(ev.events_per_second);
        el('live-rate').firstChild.textContent = fmt(ev.events_per_second);
        spark(el('spark-rate'), rates);
      }
    } else if (ev.kind === 'invariant.violation') {
      violation(ev);
    } else if (ev.kind === 'alert.firing') {
      alertEdge(ev, true);
    } else if (ev.kind === 'alert.resolved') {
      alertEdge(ev, false);
    } else if (ev.kind === 'study.done') {
      el('live-phase').textContent = 'done (' + ev.cells + ' cells' +
        (ev.failed_cells ? ', ' + ev.failed_cells + ' failed' : '') + ')';
    }
    logLine('#' + ev.seq + ' ' + ev.kind + ' ' + JSON.stringify(ev));
  }

  function follow(id) {
    if (source) source.close();
    session = id;
    total = 0; done = 0; rates = []; rsses = []; alertBoxes = {};
    el('live-log').textContent = '';
    el('live-violations').textContent = '';
    el('live-id').textContent = id;
    el('live-status').textContent = 'connecting';
    source = new EventSource(
      '/api/runs/' + encodeURIComponent(id) + '/live');
    source.onopen = function () {
      el('live-status').textContent = 'streaming';
      el('live-status').className = 'running';
    };
    source.onmessage = function (message) {
      try { handle(JSON.parse(message.data)); } catch (err) {}
    };
    source.addEventListener('end', function (message) {
      var payload = {};
      try { payload = JSON.parse(message.data); } catch (err) {}
      el('live-status').textContent = payload.status || 'finished';
      el('live-status').className = 'finished';
      if (payload.run_id) {
        var link = document.createElement('a');
        link.href = '/runs/' + encodeURIComponent(payload.run_id);
        link.textContent = 'recorded as ' + payload.run_id;
        el('live-recorded').textContent = '';
        el('live-recorded').appendChild(link);
      }
      source.close();
    });
    source.onerror = function () {
      el('live-status').textContent = 'reconnecting\\u2026';
    };
  }

  function card(entry) {
    var box = document.createElement('div');
    box.className = 'card' + (entry.live_id === session ? ' active' : '');
    var kind = document.createElement('span');
    kind.className = 'kind';
    kind.textContent = entry.status;
    var id = document.createElement('span');
    id.className = 'id';
    id.textContent = entry.live_id;
    var meta = document.createElement('div');
    meta.className = 'meta';
    meta.textContent = entry.kind + ' \\u00b7 ' + (entry.command || '') +
      ' \\u00b7 started ' + (entry.started_at || '').replace('T', ' ')
      .split('.')[0];
    box.appendChild(kind);
    box.appendChild(id);
    box.appendChild(meta);
    box.addEventListener('click', function () {
      follow(entry.live_id);
      refresh();
    });
    return box;
  }

  function refresh() {
    fetch('/api/live').then(function (res) {
      return res.json();
    }).then(function (doc) {
      var list = el('live-sessions');
      list.textContent = '';
      (doc.sessions || []).forEach(function (entry) {
        list.appendChild(card(entry));
      });
      if (!doc.sessions || !doc.sessions.length) {
        el('live-empty').style.display = '';
      } else if (!session) {
        var running = doc.sessions.filter(function (entry) {
          return entry.status === 'running';
        });
        var pick = (running.length ? running : doc.sessions);
        follow(pick[pick.length - 1].live_id);
      }
    }).catch(function () {});
  }

  refresh();
  window.setInterval(refresh, 10000);
})();
"""


def live_dashboard_body() -> str:
    """The ``/live`` page body (inline CSS + JS, chrome-ready HTML)."""
    return f"""<style>{_LIVE_CSS}</style>
<nav class="crumbs"><a href="/">&larr; run index</a> &middot;
<a href="/api/live">JSON</a></nav>
<p class="note" id="live-empty" style="display:none">no live sessions —
start one with <code>repro study --live</code>.</p>
<div class="cards" id="live-sessions"></div>
<section class="run">
<h2>session <span class="id" id="live-id">—</span>
<span id="live-status">idle</span></h2>
<p class="note" id="live-phase">waiting for events&hellip;</p>
<div class="progress"><div class="fill" id="live-fill"></div></div>
<div class="note" id="live-cells">0 / 0</div>
<div class="note" id="live-eta"></div>
<p class="note" id="live-recorded"></p>
<div class="live-grid">
<div class="panel"><h3>events / second</h3>
<div class="stat" id="live-rate">—<small> events/s</small></div>
<svg class="spark" id="spark-rate" viewBox="0 0 100 28"
 preserveAspectRatio="none"></svg></div>
<div class="panel"><h3>resident set size</h3>
<div class="stat" id="live-rss">—<small> RSS</small></div>
<svg class="spark" id="spark-rss" viewBox="0 0 100 28"
 preserveAspectRatio="none"></svg></div>
</div>
<div id="live-violations"></div>
<h3>event log</h3>
<div id="live-log"></div>
</section>
<script>{_LIVE_JS}</script>
"""
