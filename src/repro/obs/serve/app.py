"""The results-explorer WSGI application over the run registry.

Zero third-party dependencies: routing, pages and the JSON API are
plain WSGI (``repro serve`` runs it on a threading ``wsgiref`` server;
any WSGI container works — the module-level :data:`app` callable is
gunicorn-compatible).  Pages reuse the exact fragments ``repro report``
renders (:mod:`repro.obs.report.html`), so a per-run page in the
browser and the CI artifact file are the same pixels.

Routes::

    GET /                   paginated, sortable run index (HTML)
    GET /runs/<id>          one run (HTML; id, >=4-char prefix, latest)
    GET /runs/<id>/metrics  scraped cluster time-series, sparklined (HTML)
    GET /diff/<a>/<b>       cross-run study diff (HTML)
    GET /live               real-time dashboard over live sessions (HTML)
    GET /api/runs           summary cards (JSON; sort/kind/limit/offset)
    GET /api/runs/<id>      one run record (JSON)
    GET /api/runs/<id>/query  selector query over the .tsdb sidecar (JSON)
    GET /api/runs/<id>/live SSE stream tailing the session's live.jsonl
    GET /api/diff/<a>/<b>   noise-gated diff document (JSON)
    GET /api/live           live-session listing (JSON)
    GET /healthz            liveness + registry stats (JSON)
    GET /metricsz           the server's own MetricsRegistry (JSON; or
                            Prometheus text via Accept: text/plain /
                            ?format=prometheus)

Caching: run ids are content hashes, so every per-run response carries
a deterministic ``ETag`` and honours ``If-None-Match`` with a bodyless
304; listing responses use the summary-cache fingerprint (index
position + head checksum) the same way.  All listing endpoints read the
pregenerated summary cache (:mod:`repro.obs.serve.cache`) — a warm
index never re-reads per-run ``record.json``.
"""

from __future__ import annotations

import html as _html
import json
import re
import socketserver
import time as _time
from typing import (
    Any,
    Callable,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Union,
)
from urllib.parse import parse_qs, urlencode
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer
from wsgiref.simple_server import make_server as _wsgiref_make_server

from repro.errors import ConfigurationError
from repro.obs.live.export import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.obs.live.stream import LiveSession, LiveTail
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.registry.store import RunRecord, RunRegistry
from repro.obs.serve.cache import SORT_KEYS, SummaryCache, query_cards
from repro.obs.serve.live import (
    SSE_CONTENT_TYPE,
    live_dashboard_body,
    sse_comment,
    sse_end,
    sse_event,
)
from repro.obs.serve.middleware import (
    ROUTE_KEY,
    STREAM_KEY,
    RequestTimingMiddleware,
)

__all__ = [
    "API_VERSION",
    "RunExplorerApp",
    "app",
    "create_app",
    "make_http_server",
]

#: Version stamped into every JSON API envelope (and the ETag salt, so
#: a renderer change busts conditional caches).
API_VERSION = 1

#: Run-page tokens accepted over HTTP: a hex id/prefix or ``latest``.
#: Never a filesystem path — URL tokens must not reach the path branch
#: of :meth:`RunRegistry.resolve`.
_TOKEN = re.compile(r"^(latest|[0-9a-f]{4,64})$")

_PAGE_LIMIT = 50

_STATUS = {
    200: "200 OK",
    304: "304 Not Modified",
    400: "400 Bad Request",
    404: "404 Not Found",
    405: "405 Method Not Allowed",
    500: "500 Internal Server Error",
}


def _esc(value: Any) -> str:
    return _html.escape(str(value), quote=True)


class _Response:
    """One materialised response (status, headers, body bytes)."""

    __slots__ = ("status", "headers", "body")

    def __init__(
        self,
        body: bytes,
        status: int = 200,
        content_type: str = "text/html; charset=utf-8",
        etag: Optional[str] = None,
        extra: Optional[Sequence[tuple[str, str]]] = None,
    ):
        self.status = _STATUS.get(status, f"{status} ?")
        self.body = body
        self.headers = [
            ("Content-Type", content_type),
            ("Content-Length", str(len(body))),
        ]
        if etag is not None:
            self.headers.append(("ETag", etag))
        if extra:
            self.headers.extend(extra)


def _json_response(
    payload: Mapping[str, Any],
    status: int = 200,
    etag: Optional[str] = None,
) -> _Response:
    document = {"format": "repro-serve", "version": API_VERSION}
    document.update(payload)
    body = (json.dumps(document, sort_keys=True) + "\n").encode()
    return _Response(
        body, status=status,
        content_type="application/json; charset=utf-8", etag=etag,
    )


class _StreamResponse:
    """A chunk-by-chunk response (the SSE live stream).

    No ``Content-Length``: the connection closes when the iterator
    ends, which is how an SSE stream terminates.  The middleware sees
    ``environ["repro.stream"]`` and passes chunks through unbuffered.
    """

    __slots__ = ("status", "headers", "iterator")

    def __init__(self, iterator: Iterator[bytes],
                 content_type: str = SSE_CONTENT_TYPE):
        self.status = _STATUS[200]
        self.iterator = iterator
        self.headers = [
            ("Content-Type", content_type),
            ("Cache-Control", "no-store"),
            ("X-Accel-Buffering", "no"),
        ]

    def close(self) -> None:
        close = getattr(self.iterator, "close", None)
        if close is not None:
            close()


def _not_modified(etag: str) -> _Response:
    return _Response(b"", status=304, etag=etag)


def _first(query: Mapping[str, list[str]], key: str,
           default: Optional[str] = None) -> Optional[str]:
    values = query.get(key)
    return values[0] if values else default


def _int_param(query: Mapping[str, list[str]], key: str,
               default: Optional[int]) -> Optional[int]:
    raw = _first(query, key)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ConfigurationError(
            f"query parameter {key!r} must be an integer, got {raw!r}"
        ) from None


def _float_param(query: Mapping[str, list[str]], key: str,
                 default: float, minimum: float, maximum: float) -> float:
    raw = _first(query, key)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"query parameter {key!r} must be a number, got {raw!r}"
        ) from None
    return min(max(value, minimum), maximum)


class RunExplorerApp:
    """The explorer: one registry, one metrics registry, one cache."""

    def __init__(
        self,
        root: Union[str, None] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.registry = RunRegistry(root)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = SummaryCache(self.registry, metrics=self.metrics)
        self.logger = get_logger("serve")
        self._pipeline = RequestTimingMiddleware(
            self._respond, self.metrics, self.logger
        )

    # ------------------------------------------------------------------
    # WSGI plumbing
    # ------------------------------------------------------------------
    def __call__(self, environ: dict[str, Any],
                 start_response: Callable[..., Any]) -> Iterable[bytes]:
        return self._pipeline(environ, start_response)

    def _respond(self, environ: dict[str, Any],
                 start_response: Callable[..., Any]) -> Iterable[bytes]:
        method = environ.get("REQUEST_METHOD", "GET").upper()
        path = environ.get("PATH_INFO", "/") or "/"
        query = parse_qs(environ.get("QUERY_STRING", ""))
        etag_in = environ.get("HTTP_IF_NONE_MATCH")
        accept = environ.get("HTTP_ACCEPT", "")
        if method not in ("GET", "HEAD"):
            environ[ROUTE_KEY] = "method-not-allowed"
            response: Union[_Response, _StreamResponse] = _Response(
                b"only GET and HEAD are served\n", status=405,
                content_type="text/plain; charset=utf-8",
                extra=[("Allow", "GET, HEAD")],
            )
        else:
            route, response = self._route(path, query, etag_in, accept)
            environ[ROUTE_KEY] = route
        start_response(response.status, response.headers)
        if isinstance(response, _StreamResponse):
            if method == "HEAD":
                response.close()
                return [b""]
            environ[STREAM_KEY] = True
            return response.iterator
        if method == "HEAD":
            return [b""]
        return [response.body]

    def _route(
        self,
        path: str,
        query: Mapping[str, list[str]],
        etag_in: Optional[str],
        accept: str,
    ) -> tuple[str, Union[_Response, _StreamResponse]]:
        route, is_api, handler = self._match(path, query, etag_in, accept)
        try:
            return route, handler()
        except ConfigurationError as exc:
            message = str(exc)
            status = 404 if ("no run" in message
                             or "no live session" in message) else 400
            if is_api:
                return route, _json_response(
                    {"error": message}, status=status
                )
            return route, self._page_error(status, message)
        except Exception:  # pragma: no cover - defensive 500
            self.logger.exception("unhandled error serving %s", path)
            if is_api:
                return route, _json_response(
                    {"error": "internal server error"}, status=500
                )
            return route, self._page_error(500, "internal server error")

    def _match(
        self,
        path: str,
        query: Mapping[str, list[str]],
        etag_in: Optional[str],
        accept: str,
    ) -> tuple[str, bool,
               Callable[[], Union[_Response, _StreamResponse]]]:
        """Map *path* to ``(route_label, is_api, handler_thunk)``.

        The label is bound before the handler runs, so an error
        response is still counted against the route that produced it
        (a thousand bad ``/runs/<id>`` lookups are one ``run``/``4xx``
        series, not an anonymous error bucket).
        """
        parts = [p for p in path.split("/") if p]
        if not parts:
            return "index", False, \
                lambda: self._index_page(query, etag_in)
        if parts == ["healthz"]:
            return "healthz", True, self._healthz
        if parts == ["metricsz"]:
            return "metricsz", True, \
                lambda: self._metricsz(query, accept)
        if parts == ["live"]:
            return "live", False, self._live_page
        if parts[0] == "runs" and len(parts) == 2:
            return "run", False, \
                lambda: self._run_page(parts[1], etag_in)
        if parts[0] == "runs" and len(parts) == 3 \
                and parts[2] == "traces":
            return "run.traces", False, \
                lambda: self._traces_page(parts[1], etag_in)
        if parts[0] == "runs" and len(parts) == 3 \
                and parts[2] == "metrics":
            return "run.metrics", False, \
                lambda: self._metrics_page(parts[1], etag_in)
        if parts[0] == "diff" and len(parts) == 3:
            return "diff", False, \
                lambda: self._diff_page(parts[1], parts[2], etag_in)
        if parts[0] == "api":
            rest = parts[1:]
            if rest and rest[0] == "runs" and len(rest) == 1:
                return "api.runs", True, \
                    lambda: self._api_runs(query, etag_in)
            if rest and rest[0] == "runs" and len(rest) == 2:
                return "api.run", True, \
                    lambda: self._api_run(rest[1], etag_in)
            if (rest and rest[0] == "runs" and len(rest) == 3
                    and rest[2] == "live"):
                return "api.run.live", True, \
                    lambda: self._api_run_live(rest[1], query)
            if (rest and rest[0] == "runs" and len(rest) == 3
                    and rest[2] == "traces"):
                return "api.run.traces", True, \
                    lambda: self._api_run_traces(rest[1], etag_in)
            if (rest and rest[0] == "runs" and len(rest) == 3
                    and rest[2] == "query"):
                return "api.run.query", True, \
                    lambda: self._api_run_query(rest[1], query, etag_in)
            if rest == ["live"]:
                return "api.live", True, self._api_live
            if rest and rest[0] == "diff" and len(rest) == 3:
                return "api.diff", True, \
                    lambda: self._api_diff(rest[1], rest[2], etag_in)
            return "not-found", True, lambda: _json_response(
                {"error": "no such API endpoint"}, status=404
            )
        return "not-found", False, lambda: self._page_error(
            404, f"no page at {path}"
        )

    # ------------------------------------------------------------------
    # resolution (summary-cache backed; never filesystem paths)
    # ------------------------------------------------------------------
    def _resolve(self, token: str) -> RunRecord:
        token = token.lower()
        if not _TOKEN.match(token):
            raise ConfigurationError(
                f"no run matches {token!r}: give a run id, a >=4 char "
                "hex prefix, or 'latest'"
            )
        cards = self.cache.cards()
        if token == "latest":
            if not cards:
                raise ConfigurationError(
                    f"no run matches 'latest': registry "
                    f"{self.registry.root} is empty"
                )
            return self.registry.get(cards[-1]["run_id"])
        matches = [
            card["run_id"] for card in cards
            if card["run_id"].startswith(token)
        ]
        if not matches:
            raise ConfigurationError(f"no run matches {token!r}")
        if len(set(matches)) > 1:
            raise ConfigurationError(
                f"run prefix {token!r} is ambiguous: "
                + ", ".join(sorted(set(matches)))
            )
        return self.registry.get(matches[0])

    def _listing(
        self, query: Mapping[str, list[str]], descending: bool
    ) -> dict[str, Any]:
        sort = _first(query, "sort", "time") or "time"
        kind = _first(query, "kind") or None
        order = _first(query, "order")
        if order is not None:
            if order not in ("asc", "desc"):
                raise ConfigurationError(
                    f"order must be 'asc' or 'desc', got {order!r}"
                )
            descending = order == "desc"
        limit = _int_param(query, "limit", _PAGE_LIMIT)
        if limit == 0:
            limit = None
        offset = _int_param(query, "offset", 0) or 0
        cards = self.cache.cards()
        total, page = query_cards(
            cards, kind=kind, sort=sort, descending=descending,
            limit=limit, offset=offset,
        )
        return {
            "sort": sort, "kind": kind, "limit": limit, "offset": offset,
            "descending": descending, "total": total, "page": page,
            "all_cards": cards,
        }

    def _collection_etag(self, query: Mapping[str, list[str]],
                         flavor: str) -> str:
        canonical = urlencode(sorted(
            (key, value)
            for key, values in query.items() for value in values
        ))
        return f'"{flavor}-{API_VERSION}-{self.cache.fingerprint()}' \
               f'-{canonical}"'

    # ------------------------------------------------------------------
    # JSON API
    # ------------------------------------------------------------------
    def _api_runs(self, query: Mapping[str, list[str]],
                  etag_in: Optional[str]) -> _Response:
        etag = self._collection_etag(query, "api.runs")
        if etag_in == etag:
            return _not_modified(etag)
        listing = self._listing(query, descending=False)
        return _json_response({
            "root": str(self.registry.root),
            "total": listing["total"],
            "count": len(listing["page"]),
            "sort": listing["sort"],
            "kind": listing["kind"],
            "limit": listing["limit"],
            "offset": listing["offset"],
            "order": "desc" if listing["descending"] else "asc",
            "runs": listing["page"],
        }, etag=etag)

    def _run_etag(self, record: RunRecord) -> str:
        return f'"run-{API_VERSION}-{record.run_id}"'

    def _api_run(self, token: str, etag_in: Optional[str]) -> _Response:
        record = self._resolve(token)
        etag = self._run_etag(record)
        if etag_in == etag:
            return _not_modified(etag)
        return _json_response({"run": record.to_dict()}, etag=etag)

    def _trace_spans(self, record: RunRecord) -> list[dict[str, Any]]:
        """The run's exemplar span records (empty when untraced)."""
        from repro.obs.dtrace.collect import read_span_log

        records, _ = read_span_log(
            self.registry.traces_path(record.run_id))
        return records

    def _traces_etag(self, record: RunRecord) -> str:
        return f'"run-traces-{API_VERSION}-{record.run_id}"'

    def _api_run_traces(self, token: str,
                        etag_in: Optional[str]) -> _Response:
        from repro.obs.dtrace.collect import build_traces, summarize_trace

        record = self._resolve(token)
        etag = self._traces_etag(record)
        if etag_in == etag:
            return _not_modified(etag)
        traces = build_traces(self._trace_spans(record))
        return _json_response({
            "run": record.run_id,
            "count": len(traces),
            "traces": [summarize_trace(traces[trace_id])
                       for trace_id in sorted(traces)],
        }, etag=etag)

    def _run_tsdb_samples(self, record: RunRecord) -> list:
        """The run's stored time-series samples.

        Raises:
            ConfigurationError: the run has no ``.tsdb`` sidecar.
        """
        from repro.obs.tsdb import TimeSeriesStore

        directory = self.registry.tsdb_path(record.run_id)
        if not directory.is_dir():
            raise ConfigurationError(
                f"run {record.run_id} has no time-series sidecar — was "
                "the bench run with --scrape-interval and --record?"
            )
        return list(TimeSeriesStore(directory).samples())

    def _api_run_query(self, token: str, query: Mapping[str, list[str]],
                       etag_in: Optional[str]) -> _Response:
        from repro.obs.tsdb import run_query

        record = self._resolve(token)
        canonical = urlencode(sorted(
            (key, value)
            for key, values in query.items() for value in values
        ))
        etag = (f'"run-query-{API_VERSION}-{record.run_id}'
                f'-{canonical}"')
        if etag_in == etag:
            return _not_modified(etag)
        selector = _first(query, "selector")
        if not selector:
            raise ConfigurationError(
                "query parameter 'selector' is required, e.g. "
                '?selector=service.ops{outcome="ok"}&fn=rate&window=10'
            )
        fn = _first(query, "fn", "last") or "last"

        def number(key: str) -> Optional[float]:
            raw = _first(query, key)
            if raw is None:
                return None
            try:
                return float(raw)
            except ValueError:
                raise ConfigurationError(
                    f"query parameter {key!r} must be a number, "
                    f"got {raw!r}"
                ) from None

        samples = self._run_tsdb_samples(record)
        policy = _first(query, "policy")
        if policy:
            samples = [sample for sample in samples
                       if sample.labels.get("policy") == policy]
        result = run_query(samples, selector, fn,
                           window=number("window"), at=number("at"))
        return _json_response(
            {"run": record.run_id, "query": result}, etag=etag,
        )

    def _api_diff(self, token_a: str, token_b: str,
                  etag_in: Optional[str]) -> _Response:
        from repro.obs.registry.diffing import diff_runs

        baseline = self._resolve(token_a)
        current = self._resolve(token_b)
        etag = (f'"diff-{API_VERSION}-{baseline.run_id}'
                f'-{current.run_id}"')
        if etag_in == etag:
            return _not_modified(etag)
        diff = diff_runs(baseline, current)
        return _json_response({"diff": diff.to_dict()}, etag=etag)

    def _healthz(self) -> _Response:
        return _json_response({
            "status": "ok",
            "root": str(self.registry.root),
            "runs": len(self.cache.cards()),
            "index_position": self.registry.index_position(),
        })

    def _metricsz(self, query: Mapping[str, list[str]],
                  accept: str) -> _Response:
        fmt = _first(query, "format")
        if fmt is not None and fmt not in ("json", "prometheus"):
            raise ConfigurationError(
                f"format must be 'json' or 'prometheus', got {fmt!r}"
            )
        wants_text = fmt == "prometheus" or (
            fmt is None and "text/plain" in accept
        )
        if wants_text:
            return _Response(
                render_prometheus(self.metrics).encode(),
                content_type=PROMETHEUS_CONTENT_TYPE,
            )
        return _json_response({"metrics": self.metrics.to_dict()})

    # ------------------------------------------------------------------
    # live telemetry (SSE over live.jsonl)
    # ------------------------------------------------------------------
    def _api_live(self) -> _Response:
        sessions = []
        for session in self.registry.live_sessions():
            entry = dict(session.descriptor)
            try:
                entry["stream_bytes"] = session.stream_path.stat().st_size
            except OSError:
                entry["stream_bytes"] = 0
            sessions.append(entry)
        return _json_response({
            "root": str(self.registry.root),
            "count": len(sessions),
            "sessions": sessions,
        })

    def _api_run_live(self, token: str,
                      query: Mapping[str, list[str]]) -> _StreamResponse:
        token = token.lower()
        if not _TOKEN.match(token):
            raise ConfigurationError(
                f"no live session matches {token!r}: give a live id, a "
                ">=4 char hex prefix, or 'latest'"
            )
        session = self.registry.resolve_live(token)
        start_offset = _int_param(query, "from", 0) or 0
        interval = _float_param(query, "interval", 0.5, 0.0, 10.0)
        timeout = _float_param(query, "timeout", 300.0, 0.0, 3600.0)
        return _StreamResponse(
            self._sse_stream(session, start_offset, interval, timeout)
        )

    def _sse_stream(self, session: LiveSession, start_offset: int,
                    interval: float, timeout: float) -> Iterator[bytes]:
        """Generate SSE frames tailing *session*'s ``live.jsonl``.

        The tail handle is opened inside the generator body (not the
        handler) so ``close()`` on an unstarted generator never leaks a
        file handle, and the ``finally`` always releases it once
        iteration has begun.  ``interval == 0`` makes every ``next()``
        perform exactly one poll — that is what the in-process tests
        drive; real servers keep the default and sleep between polls.
        """
        tail = LiveTail(session.stream_path, offset=start_offset)
        deadline = _time.monotonic() + timeout
        try:
            yield sse_comment(f"live {session.live_id}")
            finishing = False
            while True:
                try:
                    events = tail.poll()
                except ConfigurationError as exc:
                    yield sse_end("corrupt", None)
                    self.logger.warning(
                        "live stream %s aborted: %s", session.live_id, exc
                    )
                    return
                for event in events:
                    yield sse_event(event)
                if finishing:
                    yield sse_end(
                        session.status, session.descriptor.get("run_id")
                    )
                    return
                if events:
                    continue
                session.refresh()
                if session.status != "running":
                    finishing = True  # one last poll drains the tail
                    continue
                if _time.monotonic() >= deadline:
                    yield sse_end("timeout", None)
                    return
                yield sse_comment("keepalive")
                if interval > 0:
                    _time.sleep(interval)
        finally:
            tail.close()

    # ------------------------------------------------------------------
    # HTML pages
    # ------------------------------------------------------------------
    def _page(self, body: str, title: str, subtitle: str) -> str:
        from repro.obs.report.html import render_page

        return render_page(
            body, title=title, subtitle=subtitle,
            footer="Served by <code>repro serve</code> over "
                   f"<code>{_esc(self.registry.root)}</code>; JSON at "
                   '<code>/api/runs</code>, live dashboard at '
                   '<code><a href="/live">/live</a></code>, liveness at '
                   '<code>/healthz</code>, request telemetry at '
                   '<code>/metricsz</code>.',
        )

    def _page_error(self, status: int, message: str) -> _Response:
        word = {400: "bad request", 404: "not found"}.get(
            status, "server error"
        )
        body = (
            f'<nav class="crumbs"><a href="/">← run index</a></nav>'
            f'<div class="callout warning"><span class="icon">⚠ '
            f"{_esc(word)}</span><span>{_esc(message)}</span></div>"
        )
        return _Response(
            self._page(body, f"{status} — dynamic voting runs",
                       "results explorer").encode(),
            status=status,
        )

    def _live_page(self) -> _Response:
        return _Response(
            self._page(
                live_dashboard_body(),
                "Dynamic voting — live telemetry",
                "streaming progress, resources and invariant callouts",
            ).encode(),
        )

    def _card_html(self, card: Mapping[str, Any]) -> str:
        created = str(card.get("created_at", "")).split(".")[0]
        created = created.replace("T", " ")
        caption = card.get("caption") or ""
        return (
            f'<a class="card" href="/runs/{_esc(card["run_id"])}">'
            f'<span class="kind">{_esc(card.get("kind", "?"))}</span>'
            f'<span class="id">{_esc(card["run_id"])}</span>'
            f'<div class="meta">{_esc(created)}</div>'
            f'<div class="meta">{_esc(caption)}</div></a>'
        )

    def _index_page(self, query: Mapping[str, list[str]],
                    etag_in: Optional[str]) -> _Response:
        etag = self._collection_etag(query, "index")
        if etag_in == etag:
            return _not_modified(etag)
        listing = self._listing(query, descending=True)
        total, page = listing["total"], listing["page"]
        sort, kind = listing["sort"], listing["kind"]
        limit = listing["limit"] or total or 1
        offset = listing["offset"]

        def link(label: str, active: bool, **params: Any) -> str:
            keep = {"sort": sort, "kind": kind}
            keep.update(params)
            qs = urlencode({k: v for k, v in keep.items() if v})
            cls = ' class="active"' if active else ""
            return f'<a{cls} href="/?{qs}">{_esc(label)}</a>'

        by_kind: dict[str, int] = {}
        for card in listing["all_cards"]:
            by_kind[card["kind"]] = by_kind.get(card["kind"], 0) + 1
        chips = "".join(
            f'<span class="chip">{_esc(k)} <b>{v}</b></span>'
            for k, v in sorted(by_kind.items())
        )
        toolbar = (
            '<div class="toolbar"><span class="note">kind:</span>'
            + link("all", kind is None, kind=None, offset=0)
            + "".join(link(k, kind == k, kind=k, offset=0)
                      for k in sorted(by_kind))
            + '<span class="note">sort:</span>'
            + "".join(link(s, sort == s, sort=s, offset=0)
                      for s in SORT_KEYS)
            + "</div>"
        )
        cards_html = (
            f'<div class="cards">{"".join(self._card_html(c) for c in page)}'
            "</div>" if page else
            '<p class="note">no runs recorded yet — record one with '
            "<code>repro study --record</code>.</p>"
        )
        pager = ""
        if total > len(page) or offset:
            first = offset + 1 if page else 0
            last = offset + len(page)
            older = newer = ""
            if offset > 0:
                newer = link("← newer", False,
                             offset=max(0, offset - limit))
            if last < total:
                older = link("older →", False, offset=offset + limit)
            pager = (
                f'<div class="pager">{newer}'
                f"<span>showing {first}–{last} of {total}</span>"
                f"{older}</div>"
            )
        body = (
            f'<div class="chips">{chips}</div>'
            f"{toolbar}{cards_html}{pager}"
        )
        subtitle = (
            f"{total} run(s) · registry "
            f"<code>{_esc(self.registry.root)}</code>"
        )
        return _Response(
            self._page(body, "Dynamic voting — run registry",
                       subtitle).encode(),
            etag=etag,
        )

    def _run_page(self, token: str, etag_in: Optional[str]) -> _Response:
        from repro.obs.report.html import run_section, table1_section

        record = self._resolve(token)
        etag = self._run_etag(record)
        if etag_in == etag:
            return _not_modified(etag)
        crumbs = [f'<nav class="crumbs"><a href="/">← run index</a>'
                  f' · <a href="/api/runs/{_esc(record.run_id)}">JSON'
                  "</a>"]
        if record.kind == "service" \
                and self.registry.traces_path(record.run_id).exists():
            crumbs.append(
                f' · <a href="/runs/{_esc(record.run_id)}/traces">'
                "traces</a>")
        if record.kind == "service" \
                and self.registry.tsdb_path(record.run_id).is_dir():
            crumbs.append(
                f' · <a href="/runs/{_esc(record.run_id)}/metrics">'
                "metrics</a>")
        if record.kind == "study":
            others = [
                card["run_id"] for card in self.cache.cards()
                if card["kind"] == "study"
                and card["run_id"] != record.run_id
            ]
            for other in others[-4:]:
                crumbs.append(
                    f' · <a href="/diff/{_esc(other)}/'
                    f'{_esc(record.run_id)}">diff vs {_esc(other[:8])}</a>'
                )
        crumbs.append("</nav>")
        table1 = table1_section() if record.kind == "study" else ""
        body = "".join(crumbs) + run_section(record) + table1
        return _Response(
            self._page(
                body, f"Run {record.run_id}",
                f"{record.kind} · recorded "
                f"{_esc(record.created_at.split('.')[0])}",
            ).encode(),
            etag=etag,
        )

    def _traces_page(self, token: str,
                     etag_in: Optional[str]) -> _Response:
        from repro.obs.dtrace.collect import (
            build_traces,
            sample_exemplars,
            summarize_trace,
        )
        from repro.obs.dtrace.render import svg_waterfall, text_waterfall

        record = self._resolve(token)
        etag = self._traces_etag(record)
        if etag_in == etag:
            return _not_modified(etag)
        crumbs = (
            f'<nav class="crumbs"><a href="/">← run index</a> · '
            f'<a href="/runs/{_esc(record.run_id)}">run</a> · '
            f'<a href="/api/runs/{_esc(record.run_id)}/traces">JSON'
            "</a></nav>"
        )
        spans = self._trace_spans(record)
        if not spans:
            body = crumbs + (
                '<div class="callout warning"><span class="icon">⚠ '
                "no traces</span><span>this run recorded no trace "
                "sidecar — rerun the bench with "
                "<code>--trace --record</code>.</span></div>"
            )
        else:
            traces = build_traces(spans)
            ordered = sample_exemplars(traces, limit=len(traces))
            blocks = []
            for trace in ordered:
                summary = summarize_trace(trace)
                windows = ", ".join(
                    f"#{w}" for w in summary["fault_windows"])
                chaos = f" · fault window(s) {windows}" if windows \
                    else ""
                causal = (
                    ' <span class="chip">causality violation</span>'
                    if summary["violations"] else ""
                )
                blocks.append(
                    f"<h3><code>{_esc(trace.trace_id)}</code> — "
                    f"{_esc(summary['name'])} → "
                    f"{_esc(summary['outcome'])} in "
                    f"{summary['duration'] * 1000:.1f} ms"
                    f"{_esc(chaos)}{causal}</h3>"
                    f'<div class="waterfall">{svg_waterfall(trace)}'
                    "</div>"
                    "<details><summary>text waterfall</summary>"
                    f"<pre>{_esc(text_waterfall(trace))}</pre>"
                    "</details>"
                )
            body = crumbs + (
                f'<p class="note">{len(ordered)} exemplar trace(s), '
                "worst first — denied/unavailable operations and "
                "fault-hit traces lead; spans are causally ordered "
                "by Lamport clock.</p>" + "".join(blocks)
            )
        return _Response(
            self._page(
                body, f"Traces — run {record.run_id}",
                f"{record.kind} · distributed trace exemplars",
            ).encode(),
            etag=etag,
        )

    def _metrics_page(self, token: str,
                      etag_in: Optional[str]) -> _Response:
        from repro.obs.report.html import metrics_sparklines

        record = self._resolve(token)
        etag = f'"run-metrics-{API_VERSION}-{record.run_id}"'
        if etag_in == etag:
            return _not_modified(etag)
        crumbs = (
            f'<nav class="crumbs"><a href="/">← run index</a> · '
            f'<a href="/runs/{_esc(record.run_id)}">run</a> · '
            f'<a href="/api/runs/{_esc(record.run_id)}/query?'
            'selector=service.ops&fn=rate&window=10">query JSON</a>'
            "</nav>"
        )
        try:
            samples = self._run_tsdb_samples(record)
        except ConfigurationError as exc:
            body = crumbs + (
                '<div class="callout warning"><span class="icon">⚠ '
                f"no metrics</span><span>{_esc(exc)}</span></div>"
            )
        else:
            charts = metrics_sparklines(samples) or (
                '<p class="note">the store holds no chartable '
                "series</p>"
            )
            example = (
                f"/api/runs/{_esc(record.run_id)}/query?selector="
                "service.ops%7Boutcome%3D%22ok%22%7D&fn=rate&window=10"
            )
            body = crumbs + charts + (
                f'<p class="note">{len(samples)} stored point(s). '
                "Ad-hoc queries: <code>GET "
                f'<a href="{example}">{example}</a></code> — '
                "<code>selector</code> plus <code>fn</code> (rate, "
                "increase, last, mean, p50/p95/p99/p999), optional "
                "<code>window</code>/<code>at</code>/"
                "<code>policy</code>.</p>"
            )
        return _Response(
            self._page(
                body, f"Metrics — run {record.run_id}",
                f"{record.kind} · scraped cluster time-series",
            ).encode(),
            etag=etag,
        )

    def _diff_page(self, token_a: str, token_b: str,
                   etag_in: Optional[str]) -> _Response:
        from repro.obs.registry.diffing import diff_runs
        from repro.obs.report.html import diff_section

        baseline = self._resolve(token_a)
        current = self._resolve(token_b)
        etag = (f'"diff-{API_VERSION}-{baseline.run_id}'
                f'-{current.run_id}"')
        if etag_in == etag:
            return _not_modified(etag)
        diff = diff_runs(baseline, current)
        body = (
            f'<nav class="crumbs"><a href="/">← run index</a> · '
            f'<a href="/runs/{_esc(baseline.run_id)}">baseline</a> · '
            f'<a href="/runs/{_esc(current.run_id)}">current</a> · '
            f'<a href="/api/diff/{_esc(baseline.run_id)}/'
            f'{_esc(current.run_id)}">JSON</a></nav>'
            + diff_section(diff)
        )
        return _Response(
            self._page(
                body,
                f"Diff {baseline.run_id} → {current.run_id}",
                "cell-by-cell availability diff, noise-gated like CI",
            ).encode(),
            etag=etag,
        )


def create_app(
    root: Union[str, None] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> RunExplorerApp:
    """Build the explorer over *root* (default: ``.repro/runs`` or
    ``REPRO_RUNS_DIR``)."""
    return RunExplorerApp(root, metrics=metrics)


#: Gunicorn-compatible module-level callable:
#: ``gunicorn repro.obs.serve.app:app``.  Construction does no I/O; the
#: registry root is read from ``REPRO_RUNS_DIR`` (or the default) at
#: import time.
app = create_app()


class _QuietHandler(WSGIRequestHandler):
    """Suppress wsgiref's per-request stderr lines — the timing
    middleware already writes one structured access-log record."""

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass


class _ThreadingWSGIServer(socketserver.ThreadingMixIn, WSGIServer):
    daemon_threads = True


def make_http_server(
    application: RunExplorerApp,
    host: str = "127.0.0.1",
    port: int = 8137,
) -> WSGIServer:
    """A threading stdlib HTTP server wired to *application*.

    Raises:
        ConfigurationError: the address cannot be bound.
    """
    try:
        return _wsgiref_make_server(
            host, port, application,
            server_class=_ThreadingWSGIServer,
            handler_class=_QuietHandler,
        )
    except OSError as exc:
        raise ConfigurationError(
            f"cannot listen on {host}:{port}: {exc}"
        ) from exc
