"""Summary pregeneration over the run-registry index.

The datacube-explorer shape (``cubedash-gen``): listing runs must not
re-read every run's ``record.json``, so a derived *summary card* per
run — id, kind, recording time, the small-scalar summary and a one-line
caption — is pregenerated under ``<root>/.cache/summaries.json`` and
served from there.

Invalidation keys on the **index position**: ``index.jsonl`` is
append-only between ``gc`` compactions, so the cache stores the byte
offset it has summarised up to (plus a checksum of the file head to
catch rewrites).  A fresh recording only appends — the next read parses
just the new tail and extends the cards in place; ``gc`` deletes the
cache outright, forcing a full rebuild.  A torn final line written by a
concurrent recorder is simply left for the next pass, the same
tolerance :func:`repro.obs.tracer.iter_jsonl` gives traces.

``repro runs list`` and every ``repro serve`` listing (HTML index and
``/api/runs``) go through :meth:`SummaryCache.cards` +
:func:`query_cards` — one code path, both consumers.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Mapping, Optional, Sequence

from repro.errors import ConfigurationError
from repro.obs.registry.store import RunRegistry

__all__ = [
    "SORT_KEYS",
    "SummaryCache",
    "caption",
    "query_cards",
    "summary_card",
]

_FORMAT = "repro-serve-summaries"
_VERSION = 1

#: Bytes of the index head checksummed to detect a rewritten file whose
#: size happens to match the cached position.
_HEAD_BYTES = 256

#: Accepted ``sort`` values for :func:`query_cards`.
SORT_KEYS = ("time", "kind", "id")

#: Summary keys tried, in order, for a card's one-line caption.
_CAPTION_KEYS = (
    "configurations", "policies", "cells", "seed", "horizon",
    "scenario", "policy", "decisions", "denied", "ok", "violation",
    "benchmarks", "source", "target", "engine",
    "replicas", "operations", "kills", "partitions", "violations",
)


def caption(summary: Mapping[str, Any], limit: int = 4) -> str:
    """A compact ``key=value`` line for one run's summary mapping."""
    parts: list[str] = []
    for key in _CAPTION_KEYS:
        value = summary.get(key)
        if value is None or value == []:
            continue
        if isinstance(value, list):
            value = ",".join(str(v) for v in value)
        parts.append(f"{key}={value}")
        if len(parts) >= limit:
            break
    return " ".join(parts)


def summary_card(line: Mapping[str, Any]) -> dict[str, Any]:
    """One index line reduced to the card the listings serve."""
    summary = dict(line.get("summary") or {})
    lineage = line.get("lineage") or {}
    return {
        "run_id": str(line.get("run_id", "")),
        "kind": str(line.get("kind", "?")),
        "command": str(line.get("command", "")),
        "created_at": str(line.get("created_at", "")),
        "summary": summary,
        "seed": lineage.get("seed", lineage.get("chaos_seed")),
        "git_sha": lineage.get("git_sha"),
        "caption": caption(summary),
    }


def query_cards(
    cards: Sequence[Mapping[str, Any]],
    kind: Optional[str] = None,
    sort: str = "time",
    descending: bool = False,
    limit: Optional[int] = None,
    offset: int = 0,
) -> tuple[int, list[Mapping[str, Any]]]:
    """Filter, sort and paginate summary cards.

    Returns ``(total_after_filter, page)``.  ``sort="time"`` is the
    index (recording) order; ``"kind"`` groups by kind keeping the time
    order inside each group; ``"id"`` is lexicographic on the run id.

    Raises:
        ConfigurationError: unknown *sort*, or negative *limit*/*offset*.
    """
    if sort not in SORT_KEYS:
        raise ConfigurationError(
            f"unknown sort {sort!r}; choose from {', '.join(SORT_KEYS)}"
        )
    if offset < 0 or (limit is not None and limit < 0):
        raise ConfigurationError(
            f"limit/offset must be >= 0, got limit={limit} offset={offset}"
        )
    selected = [
        card for card in cards
        if kind is None or card.get("kind") == kind
    ]
    if sort == "kind":
        selected.sort(key=lambda card: str(card.get("kind", "")))
    elif sort == "id":
        selected.sort(key=lambda card: str(card.get("run_id", "")))
    if descending:
        selected.reverse()
    total = len(selected)
    if limit is None:
        page = selected[offset:]
    else:
        page = selected[offset:offset + limit]
    return total, page


class SummaryCache:
    """The pregenerated summary cards of one registry.

    When *metrics* is given, every read is tallied into the
    ``serve.cache.hits`` / ``serve.cache.misses`` counters and the
    ``serve.cache.hit_ratio`` gauge — the numbers the acceptance check
    and ``/metricsz`` read.
    """

    def __init__(
        self,
        registry: RunRegistry,
        metrics: Optional[Any] = None,
    ):
        self.registry = registry
        self.metrics = metrics
        self._hits = 0
        self._misses = 0

    @property
    def path(self):
        """The cache file under the registry's ``.cache/``."""
        return self.registry.cache_dir / "summaries.json"

    # ------------------------------------------------------------------
    # invalidation signals
    # ------------------------------------------------------------------
    def _head_checksum(self) -> str:
        try:
            with self.registry.index_path.open("rb") as handle:
                return hashlib.sha256(handle.read(_HEAD_BYTES)).hexdigest()
        except OSError:
            return ""

    def fingerprint(self) -> str:
        """A token that changes whenever the listing could change.

        The serve layer uses it as the collection ETag: position plus
        head checksum — content-addressed like everything else here.
        """
        return f"{self.registry.index_position()}:{self._head_checksum()}"

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _load(self) -> Optional[dict[str, Any]]:
        try:
            document = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if (
            not isinstance(document, dict)
            or document.get("format") != _FORMAT
            or document.get("version") != _VERSION
        ):
            return None
        return document

    def _save(self, document: dict[str, Any]) -> None:
        try:
            self.registry.cache_dir.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_suffix(".json.tmp")
            tmp.write_text(json.dumps(document, sort_keys=True) + "\n")
            os.replace(tmp, self.path)
        except OSError:
            # A read-only registry still serves — every listing just
            # rebuilds from the index instead of hitting the cache.
            pass

    # ------------------------------------------------------------------
    # the one read path
    # ------------------------------------------------------------------
    def cards(self) -> list[dict[str, Any]]:
        """Every run's summary card, oldest first.

        Cache hit (the index has not grown): zero per-run I/O — one
        ``stat`` of the index plus one read of the cache file.  Index
        grew: parse only the appended tail.  Anything else (``gc``
        compaction, head mismatch, corrupt cache): full rebuild from
        the index — still never touching per-run ``record.json``.
        """
        position = self.registry.index_position()
        head = self._head_checksum()
        cached = self._load()
        if (
            cached is not None
            and cached.get("position") == position
            and cached.get("head") == head
        ):
            self._tally(hit=True)
            return list(cached.get("cards") or [])
        self._tally(hit=False)
        cards: list[dict[str, Any]]
        seen: set[str]
        if (
            cached is not None
            and isinstance(cached.get("position"), int)
            and 0 < cached["position"] <= position
            and cached.get("head") == head
        ):
            cards = list(cached.get("cards") or [])
            seen = {card["run_id"] for card in cards}
            start = cached["position"]
        else:
            cards, seen, start = [], set(), 0
        lines, new_position = self.registry.read_index_from(start)
        for line in lines:
            run_id = line.get("run_id")
            if not run_id or run_id in seen:
                continue
            seen.add(str(run_id))
            cards.append(summary_card(line))
        self._save({
            "format": _FORMAT,
            "version": _VERSION,
            "position": new_position,
            "head": self._head_checksum(),
            "cards": cards,
        })
        return cards

    def warm(self) -> tuple[int, bool]:
        """Pregenerate the cache (``repro serve warm``).

        Returns ``(card_count, was_already_fresh)``.
        """
        position = self.registry.index_position()
        head = self._head_checksum()
        cached = self._load()
        fresh = (
            cached is not None
            and cached.get("position") == position
            and cached.get("head") == head
        )
        return len(self.cards()), fresh

    # ------------------------------------------------------------------
    def _tally(self, hit: bool) -> None:
        if hit:
            self._hits += 1
        else:
            self._misses += 1
        if self.metrics is None:
            return
        name = "serve.cache.hits" if hit else "serve.cache.misses"
        self.metrics.counter(name).inc()
        total = self._hits + self._misses
        self.metrics.gauge("serve.cache.hit_ratio").set(
            self._hits / total if total else 0.0
        )
