"""Run provenance: what exactly produced a set of results.

A :class:`RunManifest` pins down everything needed to reproduce (or
distrust) a study run: the simulation parameters, the policy and
configuration sets, the code identity (git SHA, dirty flag), the
interpreter and platform, and wall-clock timings per study cell.  The
runner builds one per study and ``--metrics-out`` writes it next to the
metrics dump.
"""

from __future__ import annotations

import datetime
import json
import pathlib
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence, Union

__all__ = [
    "RunManifest",
    "build_manifest",
    "clear_revision_cache",
    "git_revision",
]

_FORMAT = "repro-manifest"
_VERSION = 1

#: Per-process ``git_revision`` results, keyed by the queried directory.
#: Shelling out to git twice per manifest is invisible for one study but
#: not for a registry building a manifest per recorded run; the revision
#: cannot change under a running process in any way we could honour
#: anyway (the sha is captured when the run starts).
_REVISION_CACHE: dict[str, tuple[Optional[str], Optional[bool]]] = {}


def clear_revision_cache() -> None:
    """Forget cached ``git_revision`` results (tests, long daemons)."""
    _REVISION_CACHE.clear()


def git_revision(
    repo_dir: Optional[Union[str, pathlib.Path]] = None,
) -> tuple[Optional[str], Optional[bool]]:
    """The ``(sha, dirty)`` of the working tree, or ``(None, None)``.

    Never raises: outside a checkout (installed wheel, tarball) there is
    simply no revision to record.  Results are cached per directory for
    the life of the process (see :func:`clear_revision_cache`).
    """
    if repo_dir is None:
        repo_dir = pathlib.Path(__file__).resolve().parent
    key = str(repo_dir)
    cached = _REVISION_CACHE.get(key)
    if cached is None:
        cached = _REVISION_CACHE[key] = _query_git(repo_dir)
    return cached


def _query_git(
    repo_dir: Union[str, pathlib.Path],
) -> tuple[Optional[str], Optional[bool]]:
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_dir, capture_output=True, text=True, timeout=5,
        )
        if sha.returncode != 0:
            return None, None
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=repo_dir, capture_output=True, text=True, timeout=5,
        )
        dirty = bool(status.stdout.strip()) if status.returncode == 0 else None
        return sha.stdout.strip(), dirty
    except (OSError, subprocess.SubprocessError):
        return None, None


@dataclass(frozen=True)
class RunManifest:
    """Provenance of one study (or validation) run.

    Attributes:
        command: What ran (``"study"``, ``"validate"``, ...).
        seed: Master RNG seed.
        horizon: Simulated days.
        warmup: Days discarded before measurement.
        batches: Batch count for confidence intervals.
        access_rate_per_day: Access-stream intensity.
        policies: Policy abbreviations evaluated.
        configurations: Configuration keys evaluated.
        git_sha: Commit the code was at (``None`` outside a checkout).
        git_dirty: Whether the tree had uncommitted changes.
        python_version: ``sys.version`` of the interpreter.
        platform: ``platform.platform()`` string.
        started_at: ISO-8601 UTC wall-clock start.
        wall_clock_seconds: Total run duration (0.0 until finished).
        cell_seconds: Wall-clock per ``"config/policy"`` cell.
        extra: Free-form annotations (e.g. job count).
    """

    command: str
    seed: int
    horizon: float
    warmup: float
    batches: int
    access_rate_per_day: float
    policies: tuple[str, ...]
    configurations: tuple[str, ...]
    git_sha: Optional[str] = None
    git_dirty: Optional[bool] = None
    python_version: str = ""
    platform: str = ""
    started_at: str = ""
    wall_clock_seconds: float = 0.0
    cell_seconds: Mapping[str, float] = field(default_factory=dict)
    extra: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable representation."""
        return {
            "format": _FORMAT,
            "version": _VERSION,
            "command": self.command,
            "seed": self.seed,
            "horizon": self.horizon,
            "warmup": self.warmup,
            "batches": self.batches,
            "access_rate_per_day": self.access_rate_per_day,
            "policies": list(self.policies),
            "configurations": list(self.configurations),
            "git_sha": self.git_sha,
            "git_dirty": self.git_dirty,
            "python_version": self.python_version,
            "platform": self.platform,
            "started_at": self.started_at,
            "wall_clock_seconds": self.wall_clock_seconds,
            "cell_seconds": dict(self.cell_seconds),
            "extra": dict(self.extra),
        }

    def write(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the manifest as JSON; returns the path written."""
        path = pathlib.Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    def finished(
        self,
        wall_clock_seconds: float,
        cell_seconds: Optional[Mapping[str, float]] = None,
    ) -> "RunManifest":
        """A copy with the run's final timings filled in."""
        return RunManifest(
            **{
                **self.__dict__,
                "wall_clock_seconds": wall_clock_seconds,
                "cell_seconds": dict(
                    cell_seconds if cell_seconds is not None
                    else self.cell_seconds
                ),
            }
        )


def build_manifest(
    command: str,
    params: Any,
    policies: Sequence[str],
    configurations: Sequence[str],
    **extra: Any,
) -> RunManifest:
    """A manifest for a run about to start.

    *params* is a :class:`~repro.experiments.runner.StudyParameters` (or
    anything with the same ``seed``/``horizon``/``warmup``/``batches``/
    ``access_rate_per_day`` attributes).
    """
    sha, dirty = git_revision()
    return RunManifest(
        command=command,
        seed=params.seed,
        horizon=params.horizon,
        warmup=params.warmup,
        batches=params.batches,
        access_rate_per_day=params.access_rate_per_day,
        policies=tuple(policies),
        configurations=tuple(configurations),
        git_sha=sha,
        git_dirty=dirty,
        python_version=sys.version.split()[0],
        platform=platform.platform(),
        started_at=datetime.datetime.now(datetime.timezone.utc).isoformat(),
        extra=extra,
    )
