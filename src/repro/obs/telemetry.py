"""Live progress telemetry for long study runs.

A paper-scale ``run_study`` replays hundreds of thousands of simulated
days across 48 (configuration, policy) cells and says nothing until it
finishes.  :class:`StudyProgress` turns cell completions into a
throttled progress line on stderr::

    progress: 12/48 cells (25%), 1.3e+05 events/s, elapsed 18s, ETA 54s

and mirrors the same numbers into the run's
:class:`~repro.obs.metrics.MetricsRegistry` (gauges
``study.cells_done``, ``study.events_per_second``,
``study.eta_seconds``) so ``--metrics-out`` captures the final state.

The reporter lives in the *parent* process and is fed as cell results
arrive, which makes it correct under the parallel worker path for free:
workers simulate, the parent observes completions, and no cross-process
state is shared.  All timing goes through an injectable clock so tests
run without sleeping.
"""

from __future__ import annotations

import sys
import time as _time
from typing import TYPE_CHECKING, Any, Callable, Optional, TextIO

from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.live.bus import TelemetryBus

__all__ = ["StudyProgress"]


class StudyProgress:
    """Throttled progress reporting over a fixed number of study cells.

    Args:
        total_cells: Cells the study will evaluate.
        events_per_cell: Simulation events (site transitions + access
            epochs) each cell replays; drives the events/s figure.
        stream: Destination for progress lines (default stderr).
        interval_seconds: Minimum wall-clock gap between lines; the
            final cell always reports, so short runs still print once.
        metrics: Registry receiving the telemetry gauges (optional).
        clock: Monotonic time source (injectable for tests).
        bus: A :class:`~repro.obs.live.bus.TelemetryBus` receiving one
            ``study.cell`` event per completion (optional; every cell
            publishes, unthrottled — the bus is cheap and the live
            dashboard wants every completion, not one per interval).
    """

    def __init__(
        self,
        total_cells: int,
        events_per_cell: int = 0,
        stream: Optional[TextIO] = None,
        interval_seconds: float = 5.0,
        metrics: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = _time.monotonic,
        bus: Optional["TelemetryBus"] = None,
    ):
        if total_cells < 1:
            raise ConfigurationError(
                f"total_cells must be >= 1, got {total_cells}"
            )
        if events_per_cell < 0:
            raise ConfigurationError(
                f"events_per_cell must be >= 0, got {events_per_cell}"
            )
        if interval_seconds < 0:
            raise ConfigurationError(
                f"interval_seconds must be >= 0, got {interval_seconds}"
            )
        self.total_cells = total_cells
        self.events_per_cell = events_per_cell
        self._stream = stream if stream is not None else sys.stderr
        self._interval = interval_seconds
        self._metrics = metrics
        self._clock = clock
        self._bus = bus
        self._started = clock()
        self._last_report: Optional[float] = None
        self.cells_done = 0
        self.lines_emitted = 0

    # ------------------------------------------------------------------
    def cell_done(self, key: Any = None) -> None:
        """Record one finished cell; emit a progress line when due.

        *key* (e.g. ``("F", "ODV")``) labels the most recent cell in
        the line.  Lines are throttled to one per *interval_seconds*,
        except the final cell, which always reports.
        """
        self.cells_done += 1
        now = self._clock()
        final = self.cells_done >= self.total_cells
        due = (
            self._last_report is None
            or now - self._last_report >= self._interval
        )
        self._publish_metrics(now)
        if self._bus is not None:
            eta = self.eta_seconds(now)
            self._bus.publish(
                "study.cell",
                cell=(list(key) if isinstance(key, tuple)
                      else (None if key is None else str(key))),
                cells_done=self.cells_done,
                total_cells=self.total_cells,
                events_per_second=self.events_per_second(now),
                eta_seconds=(None if eta == float("inf") else eta),
            )
        if final or due:
            self._emit(now, key)
            self._last_report = now

    # ------------------------------------------------------------------
    def events_per_second(self, now: Optional[float] = None) -> float:
        """Replayed events per wall-clock second so far (0.0 at start)."""
        if now is None:
            now = self._clock()
        elapsed = now - self._started
        if elapsed <= 0 or not self.events_per_cell:
            return 0.0
        return self.cells_done * self.events_per_cell / elapsed

    def eta_seconds(self, now: Optional[float] = None) -> float:
        """Estimated seconds until the last cell completes (``inf``
        before the first completion)."""
        if now is None:
            now = self._clock()
        if self.cells_done == 0:
            return float("inf")
        elapsed = now - self._started
        rate = self.cells_done / elapsed if elapsed > 0 else 0.0
        if rate <= 0:
            return float("inf")
        return (self.total_cells - self.cells_done) / rate

    # ------------------------------------------------------------------
    def _publish_metrics(self, now: float) -> None:
        if self._metrics is None:
            return
        self._metrics.gauge("study.cells_done").set(self.cells_done)
        self._metrics.gauge("study.events_per_second").set(
            self.events_per_second(now)
        )
        eta = self.eta_seconds(now)
        if eta != float("inf"):
            self._metrics.gauge("study.eta_seconds").set(eta)

    def _emit(self, now: float, key: Any) -> None:
        percent = 100.0 * self.cells_done / self.total_cells
        parts = [
            f"progress: {self.cells_done}/{self.total_cells} cells "
            f"({percent:.0f}%)"
        ]
        rate = self.events_per_second(now)
        if rate > 0:
            parts.append(f"{rate:.3g} events/s")
        parts.append(f"elapsed {now - self._started:.0f}s")
        eta = self.eta_seconds(now)
        if self.cells_done < self.total_cells and eta != float("inf"):
            parts.append(f"ETA {eta:.0f}s")
        if key is not None:
            label = "/".join(map(str, key)) if isinstance(key, tuple) else str(key)
            parts.append(f"last {label}")
        print(", ".join(parts), file=self._stream)
        self.lines_emitted += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StudyProgress {self.cells_done}/{self.total_cells} "
            f"lines={self.lines_emitted}>"
        )
