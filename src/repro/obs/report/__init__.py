"""Self-contained HTML reports over recorded runs.

``repro report <run-id ...>`` renders one HTML file — inline CSS and
JS, zero network fetches — that a reviewer opens straight from a CI
artifact: the paper's Table 1 site characteristics, measured Tables 2
and 3 side by side with the published 1988 numbers, per-policy
availability timelines, ``prof.*`` phase breakdowns and chaos
invariant verdicts, for every run id given.
"""

from repro.obs.report.html import (
    diff_section,
    render_page,
    render_report,
    run_section,
    table1_section,
    write_report,
)

__all__ = [
    "diff_section",
    "render_page",
    "render_report",
    "run_section",
    "table1_section",
    "write_report",
]
