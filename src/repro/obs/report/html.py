"""Rendering recorded runs as one self-contained HTML document.

Everything is inlined — CSS custom properties, a dozen lines of JS for
the light/dark toggle, SVG timelines drawn server-side — so the file
opens identically from a CI artifact tab, a mail attachment or
``file://`` with the network cable unplugged.  No external fonts,
scripts, styles or images are referenced.

Accessibility follows the charting rules the rest of the repo's docs
use: values and labels wear ink tokens (never the series color), status
colors always travel with an icon *and* a word, unavailable spans carry
a hatch texture on top of the status hue, and every mark has a
``<title>`` tooltip.  Dark mode is its own palette selection, not a
filter over the light one.
"""

from __future__ import annotations

import html as _html
import json
import pathlib
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

from repro.errors import ConfigurationError

__all__ = [
    "diff_section",
    "metrics_sparklines",
    "render_page",
    "render_report",
    "run_section",
    "table1_section",
    "write_report",
]


def _esc(value: Any) -> str:
    return _html.escape(str(value), quote=True)


def _unavail(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.6f}"


def _days(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.4f}"


# ----------------------------------------------------------------------
# document chrome
# ----------------------------------------------------------------------

# Ink, surface and series tokens; the dark values are selected steps,
# not an automatic inversion of the light ones.
_CSS = """
:root {
  --surface: #fcfcfb; --ink: #0b0b0b; --ink-2: #52514e;
  --ink-muted: #898781; --grid: #e1e0d9; --panel: #f4f3f0;
  --accent: #2a78d6; --accent-soft: #cde2fb;
  --good: #0ca30c; --warning: #fab219;
  --serious: #ec835a; --critical: #d03b3b;
}
[data-theme="dark"] {
  --surface: #1a1a19; --ink: #ffffff; --ink-2: #c3c2b7;
  --ink-muted: #898781; --grid: #2c2c2a; --panel: #232322;
  --accent: #3987e5; --accent-soft: #0d366b;
}
@media (prefers-color-scheme: dark) {
  :root:not([data-theme]) {
    --surface: #1a1a19; --ink: #ffffff; --ink-2: #c3c2b7;
    --ink-muted: #898781; --grid: #2c2c2a; --panel: #232322;
    --accent: #3987e5; --accent-soft: #0d366b;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 2rem clamp(1rem, 4vw, 3rem) 4rem;
  background: var(--surface); color: var(--ink);
  font: 15px/1.5 system-ui, sans-serif;
}
h1 { font-size: 1.45rem; margin: 0 0 .25rem; }
h2 { font-size: 1.15rem; margin: 2.2rem 0 .4rem; }
h3 { font-size: .95rem; margin: 1.4rem 0 .4rem; color: var(--ink-2); }
a { color: var(--accent); }
.subtitle { color: var(--ink-2); margin: 0 0 1rem; }
.topbar { display: flex; justify-content: space-between;
  align-items: baseline; gap: 1rem; }
button.theme {
  background: var(--panel); color: var(--ink);
  border: 1px solid var(--grid); border-radius: 6px;
  padding: .3rem .7rem; cursor: pointer; font: inherit;
}
.chips { display: flex; flex-wrap: wrap; gap: .4rem; margin: .4rem 0 1rem; }
.chip {
  background: var(--panel); border: 1px solid var(--grid);
  border-radius: 999px; padding: .1rem .6rem; font-size: .8rem;
  color: var(--ink-2);
}
.chip b { color: var(--ink); font-weight: 600; }
section.run {
  border: 1px solid var(--grid); border-radius: 10px;
  padding: 1rem 1.25rem 1.5rem; margin: 1.5rem 0;
}
table { border-collapse: collapse; margin: .5rem 0; }
th, td {
  padding: .3rem .65rem; text-align: right;
  border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums;
}
th { color: var(--ink-2); font-weight: 600; }
th:first-child, td:first-child { text-align: left; }
td .paper { display: block; font-size: .72rem; color: var(--ink-muted); }
.note { color: var(--ink-muted); font-size: .8rem; }
.callout {
  display: flex; gap: .6rem; align-items: baseline;
  border: 1px solid var(--grid); border-left: 4px solid var(--ink-muted);
  border-radius: 6px; background: var(--panel);
  padding: .6rem .9rem; margin: .8rem 0;
}
.callout.good { border-left-color: var(--good); }
.callout.critical { border-left-color: var(--critical); }
.callout.warning { border-left-color: var(--warning); }
.callout .icon { font-weight: 700; }
.callout.good .icon { color: var(--good); }
.callout.critical .icon { color: var(--critical); }
.callout.warning .icon { color: var(--warning); }
.timeline-grid { display: grid; gap: .45rem .8rem;
  grid-template-columns: max-content 1fr max-content; align-items: center; }
.timeline-grid .name { color: var(--ink-2); font-size: .85rem; }
.timeline-grid .value { color: var(--ink-2); font-size: .8rem;
  font-variant-numeric: tabular-nums; }
.legend { display: flex; gap: 1.2rem; margin: .5rem 0;
  color: var(--ink-2); font-size: .82rem; }
.legend .swatch { display: inline-block; width: 12px; height: 12px;
  border-radius: 3px; margin-right: .35rem; vertical-align: -1px; }
.bars { display: grid; gap: .35rem .8rem;
  grid-template-columns: max-content 1fr max-content; align-items: center; }
.bars .name { font-size: .85rem; color: var(--ink-2);
  overflow-wrap: anywhere; }
.bars .track { background: var(--panel); border-radius: 4px; height: 14px; }
.bars .fill { background: var(--accent); border-radius: 4px; height: 14px; }
.bars .value { font-size: .8rem; color: var(--ink-2);
  font-variant-numeric: tabular-nums; }
svg.timeline { display: block; width: 100%; height: 22px; }
svg .span-up { fill: var(--good); }
svg .span-down { fill: var(--critical); }
svg .frame { fill: none; stroke: var(--grid); }
svg.spark { display: block; width: 100%; height: 26px; }
svg.spark polyline { fill: none; stroke: var(--accent);
  stroke-width: 1.5; stroke-linejoin: round; }
svg.spark .floor { stroke: var(--grid); stroke-width: 1; }
footer { margin-top: 3rem; color: var(--ink-muted); font-size: .8rem; }
nav.crumbs { margin: 0 0 1rem; color: var(--ink-muted); font-size: .85rem; }
nav.crumbs a { text-decoration: none; }
.cards { display: grid; gap: .8rem; margin: 1rem 0;
  grid-template-columns: repeat(auto-fill, minmax(310px, 1fr)); }
.card {
  border: 1px solid var(--grid); border-radius: 10px;
  background: var(--panel); padding: .7rem .9rem; display: block;
  color: inherit; text-decoration: none;
}
.card:hover { border-color: var(--accent); }
.card .id { font-family: ui-monospace, monospace; font-size: .85rem; }
.card .meta { color: var(--ink-2); font-size: .78rem; margin-top: .25rem;
  overflow-wrap: anywhere; }
.card .kind { float: right; color: var(--accent); font-size: .78rem;
  text-transform: uppercase; letter-spacing: .04em; }
.pager { display: flex; gap: .8rem; align-items: baseline;
  margin: 1rem 0; color: var(--ink-2); font-size: .85rem; }
.toolbar { display: flex; flex-wrap: wrap; gap: .5rem;
  align-items: baseline; margin: .6rem 0; }
.toolbar a {
  border: 1px solid var(--grid); border-radius: 6px;
  padding: .15rem .55rem; font-size: .8rem; text-decoration: none;
}
.toolbar a.active { background: var(--accent-soft); }
"""

_JS = """
(function () {
  var root = document.documentElement;
  var button = document.getElementById('theme-toggle');
  function current() {
    var set = root.getAttribute('data-theme');
    if (set) return set;
    var dark = window.matchMedia &&
      window.matchMedia('(prefers-color-scheme: dark)').matches;
    return dark ? 'dark' : 'light';
  }
  function label() {
    button.textContent = current() === 'dark' ? 'Light mode' : 'Dark mode';
  }
  button.addEventListener('click', function () {
    root.setAttribute('data-theme',
      current() === 'dark' ? 'light' : 'dark');
    label();
  });
  label();
})();
"""


# ----------------------------------------------------------------------
# shared pieces
# ----------------------------------------------------------------------
def _chips(record: Any) -> str:
    pairs: list[tuple[str, Any]] = [
        ("kind", record.kind),
        ("command", record.command),
        ("recorded", record.created_at.split(".")[0].replace("T", " ")),
    ]
    for key in ("seed", "chaos_seed", "policy", "config", "scenario",
                "git_sha", "baseline", "bench_index", "source", "target"):
        value = record.lineage.get(key)
        if value is not None:
            pairs.append((key.replace("_", " "), value))
    rendered = "".join(
        f'<span class="chip">{_esc(key)} <b>{_esc(value)}</b></span>'
        for key, value in pairs
    )
    return f'<div class="chips">{rendered}</div>'


def _callout(status: str, icon: str, word: str, detail: str) -> str:
    """A status banner: color + icon + word, never color alone."""
    return (
        f'<div class="callout {status}"><span class="icon">{icon} '
        f'{_esc(word)}</span><span>{detail}</span></div>'
    )


# ----------------------------------------------------------------------
# Table 1 (static site characteristics)
# ----------------------------------------------------------------------
def table1_section() -> str:
    """The paper's Table 1 (static site characteristics) as HTML."""
    from repro.failures.profiles import testbed_profiles

    rows = []
    for p in testbed_profiles():
        maintenance = (
            f"{p.maintenance.duration_hours:g} h / "
            f"{p.maintenance.interval_days:g} d"
            if p.maintenance else "-"
        )
        rows.append(
            f"<tr><td>{p.site_id} {_esc(p.name)}</td>"
            f"<td>{p.mttf_days:.1f}</td>"
            f"<td>{p.hardware_fraction * 100:.0f}%</td>"
            f"<td>{p.restart_minutes:.1f}</td>"
            f"<td>{p.repair_constant_hours:.1f}</td>"
            f"<td>{p.repair_exponential_hours:.1f}</td>"
            f"<td>{_esc(maintenance)}</td></tr>"
        )
    return (
        "<h2>Table 1 — site characteristics</h2>"
        '<p class="note">The paper’s testbed, as simulated: '
        "exponential failures, hardware/software split, preventive "
        "maintenance.</p>"
        "<table><thead><tr><th>site</th><th>MTTF (d)</th><th>hw</th>"
        "<th>restart (min)</th><th>repair c (h)</th><th>repair e (h)</th>"
        "<th>maintenance</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


# ----------------------------------------------------------------------
# study runs
# ----------------------------------------------------------------------
def _grid(
    title: str,
    note: str,
    measured: Mapping[tuple[str, str], Optional[float]],
    paper: Mapping[str, Mapping[str, Optional[float]]],
    policies: Sequence[str],
    config_keys: Sequence[str],
    fmt,
) -> str:
    head = "".join(f"<th>{_esc(p)}</th>" for p in policies)
    rows = []
    for key in config_keys:
        cells = []
        for policy in policies:
            value = measured.get((key, policy))
            published = paper.get(key, {}).get(policy, None)
            cell = _esc(fmt(value)) if (key, policy) in measured else "·"
            extra = (
                f'<span class="paper">paper {_esc(fmt(published))}</span>'
                if key in paper else ""
            )
            cells.append(f"<td>{cell}{extra}</td>")
        rows.append(
            f"<tr><td>{_esc(_config_label(key))}</td>{''.join(cells)}</tr>"
        )
    return (
        f"<h3>{_esc(title)}</h3>"
        f'<p class="note">{note}</p>'
        f"<table><thead><tr><th>configuration</th>{head}</tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _config_label(key: str) -> str:
    from repro.experiments.configs import CONFIGURATIONS

    config = CONFIGURATIONS.get(key)
    return config.label if config is not None else key


def _study_tables(cells: Mapping[tuple[str, str], Any]) -> str:
    from repro.experiments.tables import PAPER_TABLE_2, PAPER_TABLE_3

    config_keys = sorted({config for config, _ in cells})
    policies = sorted(
        {policy for _, policy in cells},
        key=lambda p: _policy_rank(p),
    )
    unavail = {
        key: cell.result.unavailability for key, cell in cells.items()
    }
    down: dict[tuple[str, str], Optional[float]] = {}
    for key, cell in cells.items():
        if cell.result.down_periods == 0:
            down[key] = None
        else:
            down[key] = cell.result.mean_down_duration / 24.0
    return (
        _grid(
            "Table 2 — replicated file unavailability",
            "Fraction of time no quorum could be assembled; the small "
            "figure is the published 1988 value.",
            unavail, PAPER_TABLE_2, policies, config_keys, _unavail,
        )
        + _grid(
            "Table 3 — mean duration of unavailable periods (days)",
            "“-” means the cell never became unavailable, as in "
            "the paper’s configuration E.",
            down, PAPER_TABLE_3, policies, config_keys, _days,
        )
    )


def _policy_rank(policy: str) -> tuple[int, str]:
    from repro.core.registry import PAPER_POLICIES

    try:
        return (list(PAPER_POLICIES).index(policy), policy)
    except ValueError:
        return (len(PAPER_POLICIES), policy)


# ----------------------------------------------------------------------
# timelines
# ----------------------------------------------------------------------
_HATCH_DEF = (
    '<defs><pattern id="hatch" width="5" height="5" '
    'patternTransform="rotate(45)" patternUnits="userSpaceOnUse">'
    '<rect width="5" height="5" fill="var(--critical)"></rect>'
    '<line x1="0" y1="0" x2="0" y2="5" stroke="var(--surface)" '
    'stroke-width="1.5"></line></pattern></defs>'
)


def _timeline_svg(doc: Mapping[str, Any]) -> str:
    spans = doc.get("spans") or []
    observed = doc.get("observed") or {}
    start = float(observed.get("start", 0.0))
    end = float(observed.get("end", start))
    width = end - start
    unit = "d" if doc.get("unit") == "time" else str(doc.get("unit", ""))
    if width <= 0 or not spans:
        return '<p class="note">no observed window</p>'
    parts = ['<svg class="timeline" viewBox="0 0 1000 22" '
             'preserveAspectRatio="none" role="img">', _HATCH_DEF]
    for span in spans:
        s = float(span["start"])
        e = float(span["end"])
        if e <= s:
            continue
        x = (s - start) / width * 1000
        w = (e - s) / width * 1000
        up = bool(span.get("available"))
        fill = ' fill="url(#hatch)"' if not up else ""
        state = "available" if up else "UNAVAILABLE"
        parts.append(
            f'<rect class="{"span-up" if up else "span-down"}"{fill} '
            f'x="{x:.2f}" y="2" width="{max(w, 1.2):.2f}" height="18" '
            f'rx="2"><title>{state} {s:.3f}–{e:.3f} {unit} '
            f'({e - s:.3f} {unit})</title></rect>'
        )
    parts.append('<rect class="frame" x="0" y="1" width="999" '
                 'height="20" rx="3"></rect></svg>')
    return "".join(parts)


_TIMELINE_LEGEND = (
    '<div class="legend">'
    '<span><span class="swatch" style="background:var(--good)"></span>'
    "✓ available</span>"
    '<span><span class="swatch" style="background:'
    "repeating-linear-gradient(45deg, var(--critical), var(--critical) "
    '3px, var(--surface) 3px, var(--surface) 5px)"></span>'
    "✗ unavailable</span></div>"
)


def _timelines_section(
    heading: str,
    by_policy: Mapping[str, Mapping[str, Any]],
) -> str:
    if not by_policy:
        return ""
    rows = []
    for policy, doc in sorted(by_policy.items()):
        unavailability = doc.get("unavailability")
        measure = (
            f"u = {float(unavailability):.6f}"
            if unavailability is not None else ""
        )
        rows.append(
            f'<span class="name">{_esc(policy)}</span>'
            f"{_timeline_svg(doc)}"
            f'<span class="value">{_esc(measure)}</span>'
        )
    return (
        f"<h3>{_esc(heading)}</h3>{_TIMELINE_LEGEND}"
        f'<div class="timeline-grid">{"".join(rows)}</div>'
    )


def _study_timelines(timelines_doc: Mapping[str, Any]) -> str:
    configurations = timelines_doc.get("configurations") or {}
    if not configurations:
        return ""
    out = ["<h2>Availability timelines</h2>",
           '<p class="note">Quorum verdicts folded into alternating '
           "available/unavailable spans, one strip per policy; hover a "
           "span for its interval.</p>"]
    for config, by_policy in sorted(configurations.items()):
        out.append(_timelines_section(
            f"Configuration {_config_label(config)}", by_policy
        ))
    return "".join(out)


# ----------------------------------------------------------------------
# metrics / phase breakdown
# ----------------------------------------------------------------------
def _phase_section(metrics_doc: Mapping[str, Any]) -> str:
    series = metrics_doc.get("series") or []
    phases = [
        entry for entry in series
        if entry.get("name") == "prof.phase.seconds"
        and entry.get("labels", {}).get("phase")
    ]
    if not phases:
        return ""
    totals: dict[str, float] = {}
    for entry in phases:
        phase = str(entry["labels"]["phase"])
        totals[phase] = totals.get(phase, 0.0) + float(entry.get("sum", 0.0))
    ranked = sorted(totals.items(), key=lambda kv: -kv[1])[:20]
    top = ranked[0][1] if ranked else 1.0
    rows = []
    for phase, seconds in ranked:
        pct = 0.0 if top <= 0 else seconds / top * 100
        rows.append(
            f'<span class="name">{_esc(phase)}</span>'
            f'<span class="track"><span class="fill" '
            f'style="width:{max(pct, 0.5):.1f}%; display:block">'
            f"</span></span>"
            f'<span class="value">{seconds:.3f} s</span>'
        )
    dropped = len(totals) - len(ranked)
    note = (
        f'<p class="note">top {len(ranked)} phases by total seconds '
        f"({dropped} more elided)</p>" if dropped > 0 else ""
    )
    return (
        "<h2>Phase breakdown</h2>"
        '<p class="note">Wall-clock seconds per <code>prof.*</code> '
        "phase, from the run’s metrics dump.</p>"
        f'<div class="bars">{"".join(rows)}</div>{note}'
    )


# ----------------------------------------------------------------------
# per-kind sections
# ----------------------------------------------------------------------
def _study_section(record: Any) -> str:
    cells = record.load_study_cells()
    failed = int(record.summary.get("failed_cells", 0) or 0)
    parts = [_study_tables(cells)]
    if failed:
        parts.insert(0, _callout(
            "warning", "⚠", "incomplete",
            f"{failed} cell(s) failed and are missing from the grids.",
        ))
    if "timelines" in record.artifacts:
        parts.append(_study_timelines(record.load_json("timelines")))
    if "metrics" in record.artifacts:
        parts.append(_phase_section(record.load_json("metrics")))
    return "".join(parts)


def _chaos_section(record: Any) -> str:
    doc = record.load_json("chaos")
    violation = doc.get("violation")
    if doc.get("ok", violation is None):
        banner = _callout(
            "good", "✓", "invariants held",
            f"{doc.get('operations', '?')} operations, "
            f"{doc.get('granted', '?')} granted / "
            f"{doc.get('denied', '?')} denied, no safety violation.",
        )
    else:
        detail = violation if isinstance(violation, str) else json.dumps(
            violation, sort_keys=True
        )
        banner = _callout(
            "critical", "✗", "INVARIANT VIOLATED", _esc(detail)
        )
    rows = "".join(
        f"<tr><td>{_esc(key.replace('_', ' '))}</td>"
        f"<td>{_esc(doc.get(key))}</td></tr>"
        for key in ("policy", "seed", "config", "steps", "operations",
                    "granted", "denied", "aborted", "stale_commits",
                    "faults_injected", "messages_sent")
        if doc.get(key) is not None
    )
    table = (
        f"<table><tbody>{rows}</tbody></table>" if rows else ""
    )
    timelines = ""
    if "trace" in record.artifacts:
        timelines = _trace_timelines(record, "Availability timeline")
    return banner + table + timelines


def _trace_timelines(record: Any, heading: str) -> str:
    from repro.obs.analysis.timeline import build_timelines
    from repro.obs.tracer import iter_jsonl

    path = record.artifact_path("trace")
    timelines = build_timelines(iter_jsonl(path))
    return _timelines_section(
        heading, {p: t.to_dict() for p, t in timelines.items()}
    )


def _scenario_section(record: Any) -> str:
    summary = record.summary
    rows = "".join(
        f"<tr><td>{_esc(key)}</td><td>{_esc(summary.get(key))}</td></tr>"
        for key in ("scenario", "policy", "records", "decisions", "denied")
        if summary.get(key) is not None
    )
    return (
        f"<table><tbody>{rows}</tbody></table>"
        + _trace_timelines(record, "Decision timeline")
    )


def _bench_section(record: Any) -> str:
    doc = record.load_json("bench")
    rows = []
    for entry in doc.get("benchmarks", []):
        rows.append(
            f"<tr><td>{_esc(entry.get('name'))}</td>"
            f"<td>{float(entry.get('median', 0)):.6f}</td>"
            f"<td>{float(entry.get('iqr', 0)):.6f}</td>"
            f"<td>{entry.get('rounds', '-')}</td></tr>"
        )
    return (
        '<p class="note">Benchmark medians are seconds per round; IQR '
        "is the noise term the regression gate compares against.</p>"
        "<table><thead><tr><th>benchmark</th><th>median (s)</th>"
        "<th>IQR (s)</th><th>rounds</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _profile_section(record: Any) -> str:
    doc = record.load_json("profile")
    hot = doc.get("hot") or []
    rows = []
    for entry in hot[:15]:
        rows.append(
            f"<tr><td>{_esc(entry.get('name'))} "
            f'<span class="paper">{_esc(entry.get("location", ""))}</span>'
            f"</td>"
            f"<td>{float(entry.get('own_seconds', 0)):.4f}</td>"
            f"<td>{float(entry.get('cumulative_seconds', 0)):.4f}</td>"
            f"<td>{entry.get('calls', '-')}</td></tr>"
        )
    header = (
        f'<p class="note">{_esc(doc.get("target", "?"))} profiled with '
        f'{_esc(doc.get("engine", "?"))}, '
        f'{float(doc.get("seconds", 0)):.3f} s wall-clock.</p>'
    )
    table = (
        "<table><thead><tr><th>function</th><th>self (s)</th>"
        "<th>cumulative (s)</th><th>calls</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
        if rows else '<p class="note">no hot functions recorded</p>'
    )
    return header + table


def _service_section(record: Any) -> str:
    doc = record.load_json("service")
    totals = doc.get("totals", {})
    if doc.get("ok"):
        banner = _callout(
            "good", "✓", "service survived",
            f"{totals.get('operations', '?')} operations across "
            f"{len(doc.get('policies', {}))} polic(ies) with "
            f"{totals.get('kills', '?')} SIGKILL(s) and "
            f"{totals.get('partitions', '?')} partition(s): zero "
            "safety violations, every crashed replica recovered.",
        )
    else:
        banner = _callout(
            "critical", "✗", "SERVICE RUN FAILED",
            f"{totals.get('violations', '?')} violation(s) or failed "
            "recovery — see the per-policy tables.",
        )
    parts = [banner]
    for policy, pdoc in sorted(doc.get("policies", {}).items()):
        load = pdoc.get("load", {})
        latency_rows = []
        for op, value in sorted(load.get("latency", {}).items()):
            # Version 1 documents carried one blended series per op;
            # version 2 splits by outcome.
            series = {"ok": value} if "count" in value else value
            for outcome, hist in sorted(series.items()):
                latency_rows.append(
                    f"<tr><td>{_esc(op)}</td><td>{_esc(outcome)}</td>"
                    f"<td>{int(hist.get('count', 0))}</td>"
                    f"<td>{float(hist.get('p50', 0)) * 1000:.1f}</td>"
                    f"<td>{float(hist.get('p95', 0)) * 1000:.1f}</td>"
                    f"<td>{float(hist.get('p99', 0)) * 1000:.1f}</td></tr>"
                )
        avail_rows = []
        for op, table in sorted(load.get("availability", {}).items()):
            outcomes = ", ".join(
                f"{name}: {count}"
                for name, count in sorted(
                    table.get("outcomes", {}).items())
            )
            avail_rows.append(
                f"<tr><td>{_esc(op)}</td>"
                f"<td>{float(table.get('ok_rate', 0)):.3f}</td>"
                f"<td>{_esc(outcomes)}</td></tr>"
            )
        faults = pdoc.get("faults", [])
        fault_note = ", ".join(
            f"{fault.get('verb')}@{fault.get('at')}s"
            + (f" site {fault['site']}" if fault.get("site") else "")
            for fault in faults
        )
        parts.append(
            f"<h3>{_esc(policy)} "
            f"{'✓' if pdoc.get('ok') else '✗'}</h3>"
            '<p class="note">Latency is milliseconds, split per client '
            "outcome (a denial is one quorum round, an unavailability "
            "the whole retry budget); availability counts every "
            "outcome under live chaos.</p>"
            "<table><thead><tr><th>op</th><th>outcome</th><th>n</th>"
            "<th>p50 (ms)</th><th>p95 (ms)</th><th>p99 (ms)</th></tr>"
            "</thead>"
            f"<tbody>{''.join(latency_rows)}</tbody></table>"
            "<table><thead><tr><th>op</th><th>ok rate</th>"
            "<th>outcomes</th></tr></thead>"
            f"<tbody>{''.join(avail_rows)}</tbody></table>"
            f'<p class="note">faults: {_esc(fault_note or "none")}</p>'
            + _alerts_html(pdoc.get("alerts"))
            + _trace_exemplars_html(pdoc.get("traces"))
        )
    samples = _load_tsdb_sidecar(record)
    if samples:
        parts.append(metrics_sparklines(samples))
    parts.append(_trace_waterfalls(record))
    return "".join(parts)


def _sparkline_svg(values: Sequence[float], width: int = 300,
                   height: int = 26) -> str:
    """A tiny inline polyline chart over evenly spaced *values*."""
    if len(values) < 2:
        return ""
    low = min(values)
    high = max(values)
    span = (high - low) or 1.0
    step = (width - 2) / (len(values) - 1)
    points = " ".join(
        f"{1 + index * step:.1f},"
        f"{height - 2 - (value - low) / span * (height - 4):.1f}"
        for index, value in enumerate(values)
    )
    return (
        f'<svg class="spark" viewBox="0 0 {width} {height}" '
        'preserveAspectRatio="none" role="img">'
        f'<line class="floor" x1="0" y1="{height - 1}" x2="{width}" '
        f'y2="{height - 1}"></line>'
        f'<polyline points="{points}"></polyline></svg>'
    )


def _counter_deltas(values: Sequence[float]) -> list[float]:
    """Per-scrape growth of a cumulative counter, reset-tolerant."""
    deltas: list[float] = []
    previous: Optional[float] = None
    for value in values:
        if previous is not None:
            step = value - previous
            deltas.append(step if step >= 0 else value)
        previous = value
    return deltas


def _alerts_html(summary: Optional[Mapping[str, Any]]) -> str:
    """One policy's SLO alert history (from the bench document)."""
    if not summary:
        return ""
    events = summary.get("events") or []
    firing = summary.get("firing") or []
    if not events and not firing:
        return _callout(
            "good", "✓", "SLO held",
            f"{len(summary.get('rules', []))} alert rule(s) evaluated "
            "against the scraped series; none fired.",
        )
    parts = []
    if firing:
        parts.append(_callout(
            "critical", "✗", "alert still firing",
            ", ".join(_esc(name) for name in firing),
        ))
    rows = []
    for event in events:
        detail = []
        if "burn_fast" in event:
            detail.append(f"burn fast={event['burn_fast']:g} "
                          f"slow={event['burn_slow']:g}")
        elif event.get("value") is not None:
            detail.append(f"{event.get('quantile', 'value')}="
                          f"{event['value']:g}")
        if "after_seconds" in event:
            detail.append(f"after {event['after_seconds']:g}s")
        word = "firing" if event.get("state") == "firing" else "resolved"
        rows.append(
            f"<tr><td>{_esc(event.get('alert'))}</td>"
            f"<td>{_esc(word)}</td>"
            f"<td>{_esc(event.get('severity'))}</td>"
            f"<td>{float(event.get('at', 0)):.3f}</td>"
            f"<td>{_esc('; '.join(detail) or '-')}</td></tr>"
        )
    if rows:
        parts.append(
            '<p class="note">SLO alert transitions (multi-window '
            "burn rate over replica-side outcome counters, plus "
            "merged-quantile threshold rules).</p>"
            "<table><thead><tr><th>alert</th><th>edge</th>"
            "<th>severity</th><th>at</th><th>detail</th></tr></thead>"
            f"<tbody>{''.join(rows)}</tbody></table>"
        )
    return "".join(parts)


def _load_tsdb_sidecar(record: Any) -> list:
    """The run's stored time-series samples (empty when unscraped)."""
    path = getattr(record, "path", None)
    if path is None:
        return []
    directory = path.parent / ".tsdb" / record.run_id
    if not directory.is_dir():
        return []
    from repro.errors import ReproError
    from repro.obs.tsdb import TimeSeriesStore

    try:
        return list(TimeSeriesStore(directory).samples())
    except ReproError:
        return []


def metrics_sparklines(samples: Sequence[Any],
                       max_rows: int = 40) -> str:
    """Headline sparkline rows from flattened store samples.

    One row per (policy, target): operation throughput per scrape
    (counter deltas of ``service.ops``), the per-target p99 over time
    (count-weighted across ops), and the ``scrape.up`` health strip.
    Shared by the HTML report and the serve per-run metrics page.
    """
    by_key: dict[tuple[str, str, str], dict[float, list[Any]]] = {}
    for sample in samples:
        policy = sample.labels.get("policy", "")
        target = sample.labels.get("target", "?")
        if sample.name not in ("service.ops", "service.op.seconds",
                               "scrape.up"):
            continue
        slot = by_key.setdefault((policy, sample.name, target), {})
        slot.setdefault(sample.at, []).append(sample)

    def series(policy: str, name: str, target: str) -> list[float]:
        slots = by_key.get((policy, name, target), {})
        values: list[float] = []
        for at in sorted(slots):
            points = slots[at]
            if name == "service.ops":
                values.append(sum(p.value or 0.0 for p in points))
            elif name == "scrape.up":
                values.append(max(p.value or 0.0 for p in points))
            else:  # service.op.seconds: count-weighted p99
                weighted = weight = 0.0
                for p in points:
                    summary = p.summary or {}
                    p99 = summary.get("p99")
                    count = summary.get("count") or 0
                    if isinstance(p99, (int, float)) and count > 0:
                        weighted += float(p99) * count
                        weight += count
                values.append(weighted / weight if weight else 0.0)
        return values

    keys = sorted({(policy, target)
                   for policy, _, target in by_key
                   if target != "proxy"})
    rows = []
    for policy, target in keys:
        if len(rows) >= max_rows:
            break
        label_prefix = f"{policy} · " if policy else ""
        ops = _counter_deltas(series(policy, "service.ops", target))
        p99 = series(policy, "service.op.seconds", target)
        up = series(policy, "scrape.up", target)
        for label, values, fmt in (
                (f"{label_prefix}{target} ops/scrape", ops, "{:.0f}"),
                (f"{label_prefix}{target} p99 (s)", p99, "{:.3f}"),
                (f"{label_prefix}{target} up", up, "{:.0f}")):
            if len(values) < 2:
                continue
            rows.append(
                f'<span class="name">{_esc(label)}</span>'
                f"{_sparkline_svg(values)}"
                f'<span class="value">{fmt.format(values[-1])}</span>'
            )
    if not rows:
        return ""
    return (
        "<h3>Cluster metrics</h3>"
        '<p class="note">Scraped per-replica series over the run: '
        "operation throughput per scrape tick, count-weighted p99 "
        "latency, and scrape health (a dead replica drops to 0).</p>"
        f'<div class="timeline-grid">{"".join(rows)}</div>'
    )


def _trace_exemplars_html(summary: Optional[Mapping[str, Any]]) -> str:
    """The exemplar-trace table embedded in a policy's doc."""
    if not summary:
        return ""
    rows = []
    for entry in summary.get("exemplars", []):
        windows = ", ".join(
            f"#{w}" for w in entry.get("fault_windows", []))
        flags = []
        if entry.get("violations"):
            flags.append("causality!")
        rows.append(
            f'<tr><td><code>{_esc(entry.get("trace", "?")[:10])}</code>'
            f"</td><td>{_esc(entry.get('name'))}</td>"
            f"<td>{_esc(entry.get('outcome'))}</td>"
            f"<td>{float(entry.get('duration', 0)) * 1000:.1f}</td>"
            f"<td>{entry.get('spans', 0)}</td>"
            f"<td>{_esc(', '.join(entry.get('procs', [])))}</td>"
            f"<td>{_esc(windows or '-')} {_esc(' '.join(flags))}</td>"
            "</tr>"
        )
    if not rows:
        return ""
    return (
        f'<p class="note">{summary.get("sampled", 0)} exemplar '
        f'trace(s) sampled from {summary.get("traces", 0)} recorded '
        "(violation, denied and fault-hit traces always kept; "
        "slowest fill the rest).</p>"
        "<table><thead><tr><th>trace</th><th>op</th><th>outcome</th>"
        "<th>ms</th><th>spans</th><th>procs</th><th>chaos</th></tr>"
        f"</thead><tbody>{''.join(rows)}</tbody></table>"
    )


def _trace_waterfalls(record: Any, limit: int = 4) -> str:
    """SVG waterfalls for the worst exemplar traces of a service run.

    Reads the ``.traces`` sidecar next to the registry (via the
    record's path); silently renders nothing when the run was not
    traced or the sidecar is gone.
    """
    spans = _load_trace_sidecar(record)
    if not spans:
        return ""
    from repro.obs.dtrace.collect import build_traces, sample_exemplars
    from repro.obs.dtrace.render import svg_waterfall

    traces = sample_exemplars(build_traces(spans), limit=limit)
    blocks = []
    for trace in traces:
        blocks.append(
            f'<div class="waterfall">{svg_waterfall(trace)}</div>')
    if not blocks:
        return ""
    return (
        "<h3>Trace waterfalls</h3>"
        '<p class="note">Spans are ordered by Lamport clock (causal '
        "order), bars by wall-clock offset within the trace; a denied "
        "operation decomposes into the quorum round and the chaos "
        "verdicts that starved it.</p>"
        + "".join(blocks)
    )


def _load_trace_sidecar(record: Any) -> list:
    path = getattr(record, "path", None)
    if path is None:
        return []
    from repro.obs.dtrace.collect import read_span_log

    sidecar = path.parent / ".traces" / f"{record.run_id}.jsonl"
    records, _ = read_span_log(sidecar)
    return records


_SECTIONS = {
    "study": _study_section,
    "chaos": _chaos_section,
    "scenario": _scenario_section,
    "bench": _bench_section,
    "profile": _profile_section,
    "service": _service_section,
}


def run_section(record: Any) -> str:
    """One run's full detail block (chips + kind-specific body).

    The same fragment backs ``repro report`` documents and the serve
    per-run pages; a body that cannot be rendered degrades to a
    warning callout instead of failing the whole page.
    """
    try:
        renderer = _SECTIONS.get(record.kind)
        if renderer is None:
            body = (
                f'<p class="note">no renderer for kind '
                f"{_esc(record.kind)}</p>"
            )
        else:
            body = renderer(record)
    except ConfigurationError as exc:
        body = _callout("warning", "⚠", "unrenderable", _esc(exc))
    return (
        f'<section class="run" id="run-{_esc(record.run_id)}">'
        f"<h2>Run <code>{_esc(record.run_id)}</code></h2>"
        f"{_chips(record)}{body}</section>"
    )


# ----------------------------------------------------------------------
# cross-run diff
# ----------------------------------------------------------------------
def diff_section(diff: Any) -> str:
    """A :class:`~repro.obs.registry.diffing.RunDiff` as HTML.

    Same content as ``repro runs diff``'s text table — the noise-gated
    verdict banner, every out-of-noise cell, the one-sided cells — so
    the serve diff pages and CI agree by construction.
    """
    regressions = diff.regressions
    improvements = diff.improvements
    if regressions:
        banner = _callout(
            "critical", "✗", "REGRESSION",
            f"{len(regressions)} cell(s) lost availability beyond "
            f"{diff.max_regression:.0%} + "
            f"{diff.noise_factor:g}× noise.",
        )
    else:
        banner = _callout(
            "good", "✓", "no regression",
            f"{len(diff.cells)} aligned cell(s) within "
            f"{diff.max_regression:.0%} + "
            f"{diff.noise_factor:g}× noise; "
            f"{len(improvements)} improved.",
        )
    shown = [c for c in diff.cells if c.verdict != "within-noise"]
    rows = []
    for cell in shown:
        icon, word, status = {
            "regression": ("✗", "regression", "critical"),
            "improvement": ("✓", "improvement", "good"),
        }.get(cell.verdict, ("·", cell.verdict, ""))
        rows.append(
            f"<tr><td>{_esc(cell.config)}/{_esc(cell.policy)}</td>"
            f"<td>{cell.baseline:.6f}</td><td>{cell.current:.6f}</td>"
            f"<td>{cell.delta:+.6f}</td>"
            f'<td style="text-align:left; color:var(--{status or "ink"})">'
            f"{icon} {_esc(word)}</td></tr>"
        )
    if rows:
        table = (
            "<table><thead><tr><th>cell</th><th>baseline</th>"
            "<th>current</th><th>delta</th><th>verdict</th></tr>"
            f"</thead><tbody>{''.join(rows)}</tbody></table>"
        )
    elif diff.cells:
        table = '<p class="note">all compared cells within noise</p>'
    else:
        table = '<p class="note">no cells aligned</p>'
    extras = []
    for label, keys in (
        ("only in baseline", diff.only_baseline),
        ("only in current", diff.only_current),
    ):
        if keys:
            rendered = ", ".join(
                f"{_esc(c)}/{_esc(p)}" for c, p in keys
            )
            extras.append(f'<p class="note">{label}: {rendered}</p>')
    return (
        f'<section class="run">'
        f"<h2>Diff <code>{_esc(diff.baseline_id)}</code> → "
        f"<code>{_esc(diff.current_id)}</code></h2>"
        f"{banner}{table}{''.join(extras)}</section>"
    )


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def render_page(
    body: str,
    title: str = "Dynamic voting — recorded results",
    subtitle: str = "“Efficient Dynamic Voting Algorithms” (ICDE 1988) "
                    "reproduction",
    footer: str = "Fully self-contained (inline styles, no network "
                  "access needed).",
) -> str:
    """Wrap *body* (already-escaped HTML) in the document chrome.

    One chrome for every consumer — ``repro report`` files and every
    ``repro serve`` page share the inline CSS, the light/dark toggle
    and the offline-complete property.
    """
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_esc(title)}</title>
<style>{_CSS}</style>
</head>
<body>
<div class="topbar">
<div>
<h1>{_esc(title)}</h1>
<p class="subtitle">{subtitle}</p>
</div>
<button class="theme" id="theme-toggle" type="button">Dark mode</button>
</div>
{body}
<footer>{footer}</footer>
<script>{_JS}</script>
</body>
</html>
"""


def render_report(
    records: Iterable[Any],
    title: str = "Dynamic voting — recorded results",
) -> str:
    """Render *records* (run records) into one self-contained HTML page.

    Raises:
        ConfigurationError: no records were given.
    """
    records = list(records)
    if not records:
        raise ConfigurationError("report needs at least one run")
    sections = "".join(run_section(record) for record in records)
    study_present = any(record.kind == "study" for record in records)
    table1 = table1_section() if study_present else ""
    count = len(records)
    return render_page(
        f"{table1}\n{sections}",
        title=title,
        subtitle=(
            f"{count} recorded run{'s' if count != 1 else ''} ·\n"
            "“Efficient Dynamic Voting Algorithms” (ICDE 1988) "
            "reproduction"
        ),
        footer="Generated by <code>repro report</code>; fully "
               "self-contained (inline styles, no network access "
               "needed).",
    )


def write_report(
    records: Iterable[Any],
    path: Union[str, pathlib.Path],
    title: str = "Dynamic voting — recorded results",
) -> None:
    """Render and write the report to *path*."""
    document = render_report(records, title=title)
    pathlib.Path(path).write_text(document, encoding="utf-8")
