"""Observability: structured tracing, metrics and run provenance.

The simulation stack executes millions of quorum decisions per study;
this package makes them visible without slowing them down:

* :mod:`repro.obs.tracer` — structured event records with pluggable
  sinks (null, in-memory ring, JSONL file).  Instrumented code pays one
  ``is not None`` check when tracing is off.
* :mod:`repro.obs.metrics` — a counter/gauge/histogram registry with
  labelled series and a ``timed()`` context manager.
* :mod:`repro.obs.manifest` — run provenance (seed, horizon, policies,
  git SHA, interpreter, per-cell wall-clock).
* :mod:`repro.obs.logging` — stdlib-logging bridge behind the CLI's
  ``--log-level`` flag.
* :mod:`repro.obs.telemetry` — live progress lines for long study runs
  (``run_study(progress=True)``, ``repro study --progress``).
* :mod:`repro.obs.analysis` — streaming trace analytics: lazy record
  queries, availability timelines, denial auditing and trace diffing
  (``repro analyze {summary,timeline,audit,diff}``).
* :mod:`repro.obs.prof` — performance observability: deterministic
  phase timers and hot-path counters (:class:`~repro.obs.prof.PhaseProfiler`),
  cProfile/sampling engines with flamegraph-ready collapsed stacks
  (``repro profile``), and the benchmark trajectory with its
  regression gate (``repro bench record`` / ``repro bench compare``).

Quickstart::

    from repro.obs import MemorySink, Tracer

    tracer = Tracer(MemorySink())
    protocol.attach_tracer(tracer)       # any VotingProtocol
    protocol.write(view, site_id)
    tracer.sink.of_kind("quorum.granted")
"""

from repro.obs.manifest import RunManifest, build_manifest, git_revision
from repro.obs.prof import PhaseProfiler
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSink,
)
from repro.obs.logging import (
    LOG_LEVELS,
    LoggingSink,
    configure_logging,
    get_logger,
)
from repro.obs.telemetry import StudyProgress
from repro.obs.tracer import (
    JsonlSink,
    MemorySink,
    NullSink,
    TraceRecord,
    Tracer,
    iter_jsonl,
    read_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "LOG_LEVELS",
    "LoggingSink",
    "MemorySink",
    "MetricsRegistry",
    "MetricsSink",
    "NullSink",
    "PhaseProfiler",
    "RunManifest",
    "StudyProgress",
    "TraceRecord",
    "Tracer",
    "build_manifest",
    "configure_logging",
    "get_logger",
    "git_revision",
    "iter_jsonl",
    "read_jsonl",
]
