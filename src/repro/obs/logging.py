"""Bridge to stdlib logging.

The library itself never calls ``logging.basicConfig`` — applications
own the root logger.  This module gives the CLI (and anyone embedding
the package) two conveniences:

* :func:`configure_logging` — wire ``--log-level`` to a sane stderr
  handler under the ``"repro"`` namespace, idempotently;
* :class:`LoggingSink` — a tracer sink forwarding every
  :class:`~repro.obs.tracer.TraceRecord` to a logger, so decision
  records interleave with ordinary log lines when that is more useful
  than a JSONL file.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO

from repro.errors import ConfigurationError
from repro.obs.tracer import TraceRecord

__all__ = ["LOG_LEVELS", "LoggingSink", "configure_logging", "get_logger"]

#: Accepted ``--log-level`` names, mapped to stdlib levels.
LOG_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}

_ROOT_NAME = "repro"


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the package namespace (``repro`` or ``repro.<name>``)."""
    return logging.getLogger(f"{_ROOT_NAME}.{name}" if name else _ROOT_NAME)


def configure_logging(
    level: str = "warning", stream: Optional[TextIO] = None
) -> logging.Logger:
    """Set up the ``repro`` logger with one stderr handler.

    Idempotent: repeated calls adjust the level instead of stacking
    handlers.  Returns the configured logger.

    Raises:
        ConfigurationError: for a level name outside :data:`LOG_LEVELS`.
    """
    try:
        numeric = LOG_LEVELS[level.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown log level {level!r}; choose from {sorted(LOG_LEVELS)}"
        ) from None
    logger = get_logger()
    logger.setLevel(numeric)
    handler = next(
        (h for h in logger.handlers if getattr(h, "_repro_handler", False)),
        None,
    )
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler._repro_handler = True  # type: ignore[attr-defined]
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(levelname)-8s %(name)s: %(message)s"
        ))
        logger.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)  # type: ignore[attr-defined]
    handler.setLevel(numeric)
    logger.propagate = False
    return logger


class LoggingSink:
    """Forwards trace records to a stdlib logger at a fixed level."""

    def __init__(
        self,
        logger: Optional[logging.Logger] = None,
        level: int = logging.DEBUG,
    ):
        self._logger = logger if logger is not None else get_logger("trace")
        self._level = level

    def emit(self, record: TraceRecord) -> None:
        """Log *record* as ``<kind> k=v ...`` when the level is on."""
        if self._logger.isEnabledFor(self._level):
            payload = record.to_dict()
            kind = payload.pop("kind")
            payload.pop("seq", None)
            detail = " ".join(f"{k}={v}" for k, v in payload.items())
            self._logger.log(self._level, "%s %s", kind, detail)

    def close(self) -> None:
        """Nothing to release."""
