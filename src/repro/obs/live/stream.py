"""Persisting and tailing live telemetry streams.

A live session is a directory under the registry root::

    .repro/runs/<live-id>/
        live.json     # descriptor: command, parameters, status
        live.jsonl    # one telemetry event per line, appended + flushed

Run ids in the registry are content hashes of *results*, which do not
exist while a run is still running — so a live session is keyed by an
**input-derived** id instead: the truncated SHA-256 of the command and
its canonical parameters (:func:`live_session_id`).  Re-running the
identical command reuses (and truncates) the same session directory,
mirroring the registry's idempotent recording.  Because a live
directory holds no ``record.json``, the index-driven registry listing
never confuses it with a recorded run; once the run records, the
descriptor is stamped with the resulting ``run_id`` so watchers can
link the two.

Tailing uses the same truncation-tolerant byte-cursor contract as
:meth:`~repro.obs.registry.store.RunRegistry.read_index_from`: a
trailing segment with no newline — a concurrent writer caught
mid-append — is left unconsumed for the next poll, never mis-parsed.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import os
import pathlib
from typing import Any, Mapping, Optional, Union

from repro.errors import ConfigurationError
from repro.obs.live.bus import Subscription, TelemetryBus, TelemetryEvent

__all__ = [
    "LIVE_DESCRIPTOR_NAME",
    "LIVE_STREAM_NAME",
    "LiveSession",
    "LiveStreamSink",
    "LiveTail",
    "live_session_id",
    "read_live_events",
]

#: Descriptor file marking a directory as a live session.
LIVE_DESCRIPTOR_NAME = "live.json"

#: The appended event stream.
LIVE_STREAM_NAME = "live.jsonl"

_FORMAT = "repro-live"
_VERSION = 1

#: Hex digits kept as the live-session id (matches registry run ids).
_ID_LENGTH = 16


def _utcnow() -> str:
    return datetime.datetime.now(datetime.timezone.utc).isoformat()


def live_session_id(command: str,
                    parameters: Optional[Mapping[str, Any]] = None) -> str:
    """The input-derived id of a live session.

    Truncated SHA-256 over the command and its canonical parameters —
    never wall-clock or pid, so a watcher can compute the id of a run
    another process is about to start.
    """
    canonical = json.dumps(
        dict(parameters or {}), sort_keys=True, separators=(",", ":"),
    )
    digest = hashlib.sha256(
        b"live\x00" + command.encode() + b"\x00" + canonical.encode()
    )
    return digest.hexdigest()[:_ID_LENGTH]


class LiveStreamSink:
    """A bus subscriber appending events to a ``live.jsonl``.

    Every event is written as one JSON line and flushed immediately so
    a concurrent tailer observes it; the OS may still tear the final
    line, which the byte-cursor readers tolerate.
    """

    def __init__(self, path: Union[str, pathlib.Path]):
        self.path = pathlib.Path(path)
        try:
            self._handle = self.path.open("a", encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(
                f"cannot open live stream {self.path}: {exc}"
            ) from exc
        self.events_written = 0

    def __call__(self, event: TelemetryEvent) -> None:
        """Append one event (the bus-subscriber callback)."""
        if self._handle is None:
            return
        self._handle.write(
            json.dumps(event.to_dict(), sort_keys=True) + "\n"
        )
        self._handle.flush()
        self.events_written += 1

    def close(self) -> None:
        """Flush and close the stream (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    @property
    def closed(self) -> bool:
        return self._handle is None


class LiveSession:
    """One live run directory: descriptor plus event stream.

    Use :meth:`start` in the process running the study and
    :meth:`load` in a watcher.
    """

    def __init__(self, path: pathlib.Path, descriptor: dict[str, Any]):
        self.path = pathlib.Path(path)
        self.descriptor = descriptor
        self._sink: Optional[LiveStreamSink] = None

    # -- identity ------------------------------------------------------
    @property
    def live_id(self) -> str:
        return str(self.descriptor.get("live_id", self.path.name))

    @property
    def stream_path(self) -> pathlib.Path:
        return self.path / LIVE_STREAM_NAME

    @property
    def descriptor_path(self) -> pathlib.Path:
        return self.path / LIVE_DESCRIPTOR_NAME

    @property
    def status(self) -> str:
        """``running`` while the producer holds the session, then the
        terminal status passed to :meth:`finish`."""
        return str(self.descriptor.get("status", "unknown"))

    # -- lifecycle -----------------------------------------------------
    @classmethod
    def start(
        cls,
        root: Union[str, pathlib.Path],
        command: str,
        parameters: Optional[Mapping[str, Any]] = None,
        kind: str = "study",
    ) -> "LiveSession":
        """Create (or reuse) the session directory and mark it running.

        The stream file is truncated: re-running the identical command
        replaces its previous live stream, like the registry's
        idempotent re-record.
        """
        live_id = live_session_id(command, parameters)
        path = pathlib.Path(root) / live_id
        descriptor = {
            "format": _FORMAT,
            "version": _VERSION,
            "live_id": live_id,
            "kind": kind,
            "command": command,
            "parameters": dict(parameters or {}),
            "status": "running",
            "started_at": _utcnow(),
        }
        session = cls(path, descriptor)
        try:
            path.mkdir(parents=True, exist_ok=True)
            session.stream_path.write_text("")
            session._write_descriptor()
        except OSError as exc:
            raise ConfigurationError(
                f"cannot start live session under {root}: {exc}"
            ) from exc
        return session

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "LiveSession":
        """Load an existing session directory.

        Raises:
            ConfigurationError: no readable descriptor at *path*.
        """
        path = pathlib.Path(path)
        descriptor_path = path / LIVE_DESCRIPTOR_NAME
        try:
            descriptor = json.loads(descriptor_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(
                f"no live session at {path}: {exc}"
            ) from exc
        if not isinstance(descriptor, dict) \
                or descriptor.get("format") != _FORMAT:
            raise ConfigurationError(
                f"{descriptor_path} is not a live-session descriptor"
            )
        return cls(path, descriptor)

    def refresh(self) -> None:
        """Re-read the descriptor (a watcher polling for ``finished``)."""
        try:
            descriptor = json.loads(self.descriptor_path.read_text())
        except (OSError, json.JSONDecodeError):
            return  # keep the last good descriptor
        if isinstance(descriptor, dict):
            self.descriptor = descriptor

    def attach(self, bus: TelemetryBus) -> Subscription:
        """Subscribe a stream sink to *bus*; events persist from now on."""
        self._sink = LiveStreamSink(self.stream_path)
        return bus.subscribe(self._sink, name=f"live:{self.live_id}")

    def finish(self, status: str = "finished",
               run_id: Optional[str] = None) -> None:
        """Close the stream and stamp the terminal *status* (plus the
        recorded *run_id* when the run was ``--record``-ed)."""
        if self._sink is not None:
            self._sink.close()
            self._sink = None
        self.descriptor["status"] = status
        self.descriptor["finished_at"] = _utcnow()
        if run_id is not None:
            self.descriptor["run_id"] = run_id
        try:
            self._write_descriptor()
        except OSError as exc:
            raise ConfigurationError(
                f"cannot finish live session {self.path}: {exc}"
            ) from exc

    def _write_descriptor(self) -> None:
        tmp = self.descriptor_path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(self.descriptor, indent=2, sort_keys=True) + "\n"
        )
        os.replace(tmp, self.descriptor_path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LiveSession {self.live_id} {self.status}>"


def read_live_events(
    path: Union[str, pathlib.Path], offset: int = 0
) -> tuple[list[dict[str, Any]], int]:
    """Parse complete event lines starting at byte *offset*.

    Returns ``(events, new_offset)`` where *new_offset* points just past
    the last **complete** (newline-terminated) line consumed.  A torn
    final line — a concurrent writer caught mid-append — is left
    unconsumed for the next poll.  A missing file yields ``([],
    offset)``: live streams appear asynchronously, so absence is not an
    error.

    Raises:
        ConfigurationError: *offset* is negative, or a complete line is
            not JSON (real corruption, never a torn write).
    """
    if offset < 0:
        raise ConfigurationError(
            f"stream offset must be >= 0, got {offset}"
        )
    path = pathlib.Path(path)
    try:
        with path.open("rb") as handle:
            handle.seek(offset)
            data = handle.read()
    except OSError:
        return [], offset
    return _parse_events(data, offset, path)


def _parse_events(
    data: bytes, offset: int, path: pathlib.Path
) -> tuple[list[dict[str, Any]], int]:
    events: list[dict[str, Any]] = []
    position = offset
    for raw in data.split(b"\n")[:-1]:  # drop the newline-less tail
        position += len(raw) + 1
        line = raw.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"corrupt live-stream line at byte "
                f"{position - len(raw) - 1} of {path}: {exc}"
            ) from exc
        if isinstance(payload, dict):
            events.append(payload)
    return events, position


class LiveTail:
    """A stateful follower of one ``live.jsonl``.

    Holds a single open read handle (opened lazily, since the stream
    may not exist yet) and a byte cursor; each :meth:`poll` returns the
    complete lines appended since the last one.  ``close()`` releases
    the handle — the SSE endpoint guarantees this on client disconnect.
    """

    def __init__(self, path: Union[str, pathlib.Path], offset: int = 0):
        if offset < 0:
            raise ConfigurationError(
                f"stream offset must be >= 0, got {offset}"
            )
        self.path = pathlib.Path(path)
        self.position = offset
        self._handle: Optional[Any] = None

    def poll(self) -> list[dict[str, Any]]:
        """Events appended since the last poll (empty when none)."""
        if self._handle is None:
            try:
                self._handle = self.path.open("rb")
            except OSError:
                return []
        self._handle.seek(self.position)
        data = self._handle.read()
        events, self.position = _parse_events(data, self.position, self.path)
        return events

    def close(self) -> None:
        """Release the read handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    @property
    def closed(self) -> bool:
        return self._handle is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LiveTail {self.path} @{self.position}>"
