"""Prometheus text-format exposition of a :class:`MetricsRegistry`.

Renders any registry — the simulator's per-run series or the serve
middleware's request telemetry — in the text exposition format
(version 0.0.4) a Prometheus scraper ingests:

* counters become ``<name>_total`` samples typed ``counter``;
* gauges map one-to-one;
* histograms become *summaries*: ``{quantile="0.5|0.95|0.99|0.999"}``
  samples from the bounded reservoir plus exact ``_sum``/``_count``.

Every family is introduced by a ``# HELP`` line followed by its
``# TYPE`` line, as the exposition format specifies — scrapers work
without them, but ``promtool`` lint and metric explorers expect both.
Callers may supply per-series help text; families without any get a
generated description naming the source series.

Dotted series names are sanitised to the Prometheus grammar
(``serve.latency.seconds`` → ``serve_latency_seconds``); labels are
escaped per the format's rules.  The renderer only reads the registry,
so it can run concurrently with instrumented code the same way
``to_dict()`` does.
"""

from __future__ import annotations

import math
import re
from typing import Any, Mapping, Optional

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["PROMETHEUS_CONTENT_TYPE", "render_prometheus"]

#: The Content-Type a conforming exposition endpoint serves.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")

#: Summary quantiles exported for histogram series.
_QUANTILES = (0.5, 0.95, 0.99, 0.999)


def _metric_name(name: str) -> str:
    sanitized = _INVALID.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\")
                 .replace("\n", "\\n")
                 .replace('"', '\\"'))


def _labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [
        f'{_metric_name(key)}="{_escape_label(str(value))}"'
        for key, value in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _value(value: Any) -> str:
    if value is None:
        return "NaN"
    number = float(value)
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_prometheus(
    registry: MetricsRegistry,
    help_text: Optional[Mapping[str, str]] = None,
) -> str:
    """The registry as Prometheus text exposition (0.0.4).

    Series sharing a name render contiguously under one ``# HELP`` +
    ``# TYPE`` pair (the registry enforces one instrument kind per
    name, so the type is well defined).  *help_text* maps dotted
    series names to their ``# HELP`` descriptions; families without
    an entry get a generated one naming the source series.
    """
    lines: list[str] = []
    typed: set[str] = set()
    descriptions = help_text or {}

    def _help(name: str, family: str, fallback: str) -> None:
        text = descriptions.get(name) or fallback
        lines.append(f"# HELP {family} {_escape_help(text)}")

    for name, labels, instrument in registry.series():
        base = _metric_name(name)
        if isinstance(instrument, Counter):
            if base not in typed:
                typed.add(base)
                _help(name, f"{base}_total",
                      f"Total count of '{name}' events.")
                lines.append(f"# TYPE {base}_total counter")
            lines.append(
                f"{base}_total{_labels(labels)} {_value(instrument.value)}"
            )
        elif isinstance(instrument, Gauge):
            if base not in typed:
                typed.add(base)
                _help(name, base, f"Current value of '{name}'.")
                lines.append(f"# TYPE {base} gauge")
            lines.append(
                f"{base}{_labels(labels)} {_value(instrument.value)}"
            )
        elif isinstance(instrument, Histogram):
            if base not in typed:
                typed.add(base)
                _help(name, base,
                      f"Summary of '{name}' observations "
                      "(reservoir quantiles, exact sum/count).")
                lines.append(f"# TYPE {base} summary")
            for quantile in _QUANTILES:
                quantile_label = f'quantile="{_value(quantile)}"'
                lines.append(
                    f"{base}{_labels(labels, quantile_label)} "
                    f"{_value(instrument.quantile(quantile))}"
                )
            lines.append(
                f"{base}_sum{_labels(labels)} {_value(instrument.total)}"
            )
            lines.append(
                f"{base}_count{_labels(labels)} {_value(instrument.count)}"
            )
        # Unknown instrument kinds are skipped: exposition must never
        # break the endpoint that serves it.
    return "\n".join(lines) + "\n" if lines else ""
