"""Process resource sampling for live telemetry.

A thousand-cell sweep runs for hours; the question an operator asks is
not only "how far along" but "is it still healthy" — is RSS growing,
is the replay rate collapsing, did a worker stall.  This module reads
``/proc/self`` (with a ``resource.getrusage`` fallback off Linux) and
folds the numbers into the run's metrics as ``live.proc.*`` gauges:

* ``live.proc.rss_bytes`` — resident set size;
* ``live.proc.cpu_seconds`` — cumulative user+system CPU time;
* ``live.proc.events_per_second`` — simulation events replayed per
  wall-clock second since the previous sample.

In a parallel study each worker samples *itself* (labelled
``worker=<pid>``) into its per-cell registry, which the parent merges
— the same merge path every other per-worker series takes.  The
sampler is throttled by an injectable clock so the hot loop pays one
float comparison per call between samples.
"""

from __future__ import annotations

import os
import time as _time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = ["ResourceSample", "ResourceSampler", "sample_self"]


def _sysconf(name: str, fallback: int) -> int:
    try:
        value = os.sysconf(name)
    except (ValueError, OSError, AttributeError):  # pragma: no cover
        return fallback
    return value if value > 0 else fallback


_PAGE_SIZE = _sysconf("SC_PAGE_SIZE", 4096)
_CLK_TCK = _sysconf("SC_CLK_TCK", 100)

_STATM = "/proc/self/statm"
_STAT = "/proc/self/stat"


@dataclass(frozen=True)
class ResourceSample:
    """One point-in-time reading of this process.

    ``rss_bytes`` is ``None`` when no source could report it.
    """

    rss_bytes: Optional[int]
    cpu_seconds: float

    def to_dict(self) -> dict[str, Any]:
        """The JSON-serialisable form carried on ``resource.sample``."""
        return {"rss_bytes": self.rss_bytes,
                "cpu_seconds": self.cpu_seconds}


def _read_proc() -> ResourceSample:
    with open(_STATM, "r") as handle:
        resident_pages = int(handle.read().split()[1])
    with open(_STAT, "r") as handle:
        raw = handle.read()
    # comm (field 2) may contain spaces and parentheses; everything
    # after the *last* ')' is whitespace-split, making utime/stime
    # (fields 14/15) indices 11/12.
    after_comm = raw.rsplit(")", 1)[1].split()
    ticks = int(after_comm[11]) + int(after_comm[12])
    return ResourceSample(
        rss_bytes=resident_pages * _PAGE_SIZE,
        cpu_seconds=ticks / _CLK_TCK,
    )


def _read_rusage() -> ResourceSample:
    import resource as _resource

    usage = _resource.getrusage(_resource.RUSAGE_SELF)
    # ru_maxrss is KiB on Linux and bytes on macOS; Linux took the
    # /proc path above, so scale for the BSD convention conservatively:
    # a KiB reading is a peak-RSS approximation either way.
    rss = int(usage.ru_maxrss) * 1024 if usage.ru_maxrss else None
    return ResourceSample(
        rss_bytes=rss,
        cpu_seconds=float(usage.ru_utime + usage.ru_stime),
    )


def sample_self() -> ResourceSample:
    """Sample this process: ``/proc/self`` where available, else
    ``getrusage``, else an empty sample — never raises."""
    try:
        return _read_proc()
    except (OSError, ValueError, IndexError):
        pass
    try:
        return _read_rusage()
    except Exception:  # pragma: no cover - last-resort fallback
        return ResourceSample(rss_bytes=None, cpu_seconds=0.0)


class ResourceSampler:
    """A throttled sampler publishing ``resource.sample`` events and
    folding ``live.proc.*`` gauges.

    Args:
        min_interval: Minimum seconds between samples; :meth:`tick`
            between samples costs one clock read and a comparison.
        clock: Monotonic time source (injectable for tests).
        reader: The sampling function (injectable for tests).
    """

    def __init__(
        self,
        min_interval: float = 1.0,
        clock: Callable[[], float] = _time.monotonic,
        reader: Callable[[], ResourceSample] = sample_self,
    ):
        self._min_interval = min_interval
        self._clock = clock
        self._reader = reader
        self._last_at: Optional[float] = None
        self._last_events = 0
        self.samples_taken = 0

    def tick(
        self,
        bus: Optional[Any] = None,
        metrics: Optional[MetricsRegistry] = None,
        events: int = 0,
        force: bool = False,
        **labels: Any,
    ) -> Optional[ResourceSample]:
        """Sample if due (or *force*), fanning out to *bus* and *metrics*.

        *events* is the caller's cumulative simulation-event count; the
        per-second rate is the delta since the previous sample.  Extra
        *labels* (e.g. ``worker=<pid>``) label the gauges and ride on
        the published event.  Returns the sample, or ``None`` when
        throttled.
        """
        now = self._clock()
        if not force and self._last_at is not None \
                and now - self._last_at < self._min_interval:
            return None
        sample = self._reader()
        if self._last_at is not None and now > self._last_at:
            rate = (events - self._last_events) / (now - self._last_at)
        else:
            rate = 0.0
        self._last_at = now
        self._last_events = events
        self.samples_taken += 1
        if metrics is not None:
            if sample.rss_bytes is not None:
                metrics.gauge("live.proc.rss_bytes", **labels).set(
                    sample.rss_bytes
                )
            metrics.gauge("live.proc.cpu_seconds", **labels).set(
                sample.cpu_seconds
            )
            metrics.gauge("live.proc.events_per_second", **labels).set(rate)
        if bus is not None:
            bus.publish(
                "resource.sample",
                rss_bytes=sample.rss_bytes,
                cpu_seconds=sample.cpu_seconds,
                events_per_second=rate,
                events=events,
                **labels,
            )
        return sample

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResourceSampler samples={self.samples_taken}>"
