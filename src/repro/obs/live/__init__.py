"""Live telemetry: watch a run while it is still running.

Everything observability built so far is post-hoc — traces, metrics,
registry records and HTML reports exist only after a run finishes.
This package adds the *during*: an in-process pub/sub
:class:`TelemetryBus` that the runner, the chaos harness and the
invariant monitor publish structured events into; a
:class:`LiveStreamSink` that persists those events to a tailable
``live.jsonl`` under the run registry; a :class:`ResourceSampler`
reading ``/proc/self`` for RSS/CPU so a long sweep's footprint is
visible as ``live.proc.*`` gauges; and :func:`render_prometheus`, a
text-format exposition of any :class:`~repro.obs.metrics.
MetricsRegistry` so ``/metricsz`` speaks to a scraper.

Like every other hook in the package, the bus is zero-cost when
unused: publishers take ``bus=None`` defaults and skip all work, so a
study without ``--live`` pays nothing.
"""

from repro.obs.live.bus import Subscription, TelemetryBus, TelemetryEvent
from repro.obs.live.export import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.obs.live.resources import (
    ResourceSample,
    ResourceSampler,
    sample_self,
)
from repro.obs.live.stream import (
    LIVE_DESCRIPTOR_NAME,
    LIVE_STREAM_NAME,
    LiveSession,
    LiveStreamSink,
    LiveTail,
    live_session_id,
    read_live_events,
)

__all__ = [
    "LIVE_DESCRIPTOR_NAME",
    "LIVE_STREAM_NAME",
    "LiveSession",
    "LiveStreamSink",
    "LiveTail",
    "PROMETHEUS_CONTENT_TYPE",
    "ResourceSample",
    "ResourceSampler",
    "Subscription",
    "TelemetryBus",
    "TelemetryEvent",
    "live_session_id",
    "read_live_events",
    "render_prometheus",
    "sample_self",
]
