"""An in-process telemetry bus: sequence-numbered, bounded pub/sub.

The bus is the seam between the layers that *produce* live signals
(the study runner, the chaos harness, the invariant monitor, the
resource sampler) and the layers that *consume* them (the
``live.jsonl`` stream sink, the SSE endpoint, ``repro watch``).
Producers call ``bus.publish(kind, **fields)``; each delivered event
carries a gap-free sequence number, a wall-clock timestamp and the
free-form fields.

Design points:

* **Zero-cost when nobody listens.**  ``publish`` with no subscriber
  returns immediately without allocating an event or taking the lock
  (only a dropped-counter increment), and every call site takes
  ``bus=None`` defaults, so an un-instrumented run pays nothing —
  the same contract as ``tracer is not None`` / ``profiler is not
  None`` elsewhere in the package.
* **Gap-free sequence numbers.**  Sequence numbers are assigned only
  to delivered events, under the bus lock, so a sink attached before
  the run starts observes ``0, 1, 2, ...`` with no holes — the
  property the live-stream tests assert.
* **Bounded ring.**  The last *capacity* events are retained so a
  subscriber attaching mid-run (``replay=True``) can catch up without
  the producers ever blocking on a slow consumer.
* **Merge-safe across workers.**  In a parallel ``run_study`` the bus
  lives in the *parent* process and is fed as cell results arrive
  (exactly like :class:`~repro.obs.telemetry.StudyProgress`); workers
  fold their ``live.proc.*`` gauges into their per-cell
  :class:`~repro.obs.metrics.MetricsRegistry`, which the parent
  merges.  No cross-process bus state exists.

A subscriber that raises is detached (with a logged traceback) rather
than aborting the run: live telemetry must never change or kill the
simulation it watches.
"""

from __future__ import annotations

import threading
import time as _time
from collections import deque
from typing import Any, Callable, Mapping, Optional

from repro.errors import ConfigurationError
from repro.obs.logging import get_logger

__all__ = ["Subscription", "TelemetryBus", "TelemetryEvent"]

_log = get_logger("obs.live.bus")


class TelemetryEvent:
    """One published event.

    Attributes:
        seq: Gap-free sequence number assigned by the bus.
        kind: Dotted event kind (``study.cell``, ``resource.sample``,
            ``invariant.violation``, ...).
        at: Wall-clock POSIX timestamp at publish time.
        fields: The publisher's free-form payload.
    """

    __slots__ = ("seq", "kind", "at", "fields")

    def __init__(self, seq: int, kind: str, at: float,
                 fields: Mapping[str, Any]):
        self.seq = seq
        self.kind = kind
        self.at = at
        self.fields = fields

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable document (``seq``/``kind``/``at`` plus
        the payload fields)."""
        document: dict[str, Any] = {
            "seq": self.seq, "kind": self.kind, "at": self.at,
        }
        document.update(self.fields)
        return document

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TelemetryEvent":
        """Rebuild an event from its :meth:`to_dict` document."""
        try:
            seq = int(data["seq"])
            kind = str(data["kind"])
            at = float(data["at"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"not a telemetry event document: {dict(data)!r}"
            ) from exc
        fields = {
            key: value for key, value in data.items()
            if key not in ("seq", "kind", "at")
        }
        return cls(seq, kind, at, fields)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TelemetryEvent #{self.seq} {self.kind}>"


class Subscription:
    """A handle on one bus subscription; ``close()`` detaches it."""

    __slots__ = ("_bus", "callback", "name")

    def __init__(self, bus: "TelemetryBus",
                 callback: Callable[[TelemetryEvent], None], name: str):
        self._bus = bus
        self.callback = callback
        self.name = name

    def close(self) -> None:
        """Detach from the bus (idempotent)."""
        self._bus.unsubscribe(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Subscription {self.name}>"


class TelemetryBus:
    """Sequence-numbered, bounded-ring pub/sub of structured events.

    Args:
        capacity: Events retained in the replay ring (``>= 1``).
        clock: Wall-clock source stamped on events (injectable for
            tests; default ``time.time``).
    """

    _RESERVED = frozenset({"seq", "kind", "at"})

    def __init__(self, capacity: int = 1024,
                 clock: Callable[[], float] = _time.time):
        if capacity < 1:
            raise ConfigurationError(
                f"bus capacity must be >= 1, got {capacity}"
            )
        self._ring: deque[TelemetryEvent] = deque(maxlen=capacity)
        self._subscribers: list[Subscription] = []
        self._lock = threading.Lock()
        self._clock = clock
        self.next_seq = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    def publish(self, kind: str, **fields: Any) -> Optional[TelemetryEvent]:
        """Deliver one event to every subscriber; returns it.

        With no subscriber attached this is (nearly) free: no event is
        allocated, no lock is taken, and ``None`` is returned — only
        :attr:`dropped` is incremented.  Sequence numbers therefore
        count *delivered* events and stay gap-free for any sink that
        subscribed before the run started.

        Raises:
            ConfigurationError: a field shadows ``seq``/``kind``/``at``.
        """
        if not self._subscribers:
            self.dropped += 1
            return None
        shadowed = self._RESERVED.intersection(fields)
        if shadowed:
            raise ConfigurationError(
                f"telemetry fields {sorted(shadowed)} shadow the "
                "event envelope (seq/kind/at)"
            )
        with self._lock:
            event = TelemetryEvent(self.next_seq, str(kind),
                                   self._clock(), fields)
            self.next_seq += 1
            self._ring.append(event)
            targets = tuple(self._subscribers)
        for subscription in targets:
            try:
                subscription.callback(event)
            except Exception:
                _log.exception(
                    "telemetry subscriber %s failed on %s; detaching",
                    subscription.name, event.kind,
                )
                self.unsubscribe(subscription)
        return event

    # ------------------------------------------------------------------
    def subscribe(
        self,
        callback: Callable[[TelemetryEvent], None],
        name: str = "subscriber",
        replay: bool = False,
    ) -> Subscription:
        """Attach *callback*; with ``replay=True`` it first receives
        the retained ring (a late watcher catching up mid-run)."""
        subscription = Subscription(self, callback, name)
        with self._lock:
            backlog = tuple(self._ring) if replay else ()
            self._subscribers.append(subscription)
        for event in backlog:
            callback(event)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Detach *subscription* (idempotent)."""
        with self._lock:
            try:
                self._subscribers.remove(subscription)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    def recent(self) -> tuple[TelemetryEvent, ...]:
        """The retained ring, oldest first."""
        with self._lock:
            return tuple(self._ring)

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TelemetryBus seq={self.next_seq} "
            f"subscribers={len(self._subscribers)} dropped={self.dropped}>"
        )
