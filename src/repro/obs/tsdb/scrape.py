"""The scraping collector: poll every process, append to the store.

A scrape *target* is anything that can hand over a series list in the
``MetricsRegistry.to_dict()`` shape:

* :class:`SocketScrapeTarget` — a replica's direct (un-proxied)
  service port; the scraper opens a fresh connection per scrape and
  asks with a ``{"kind": "metrics?"}`` frame.  Going direct matters:
  scraping *through* the chaos proxy would make the monitoring pipeline
  share the faults it is meant to observe.
* :class:`RegistryScrapeTarget` — an in-process registry (the chaos
  proxy lives in the bench process, so its metrics need no socket).

Scrape failures are data, not errors: a replica that is down
mid-scrape (the chaos driver kills them on purpose) yields a batch
whose only series is ``scrape.up 0``, exactly how Prometheus renders
an unreachable instance — so availability of the *telemetry* itself is
queryable, and a dead replica never aborts the collector.

:class:`MetricsScraper` is pull-based and driven by whoever owns a
convenient loop (the bench's poll loop calls :meth:`maybe_scrape`
every tick); it throttles itself to the configured interval.
"""

from __future__ import annotations

import socket
import time as _time
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.errors import ReproError, ServiceError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tsdb.store import TimeSeriesStore

__all__ = [
    "MetricsScraper",
    "RegistryScrapeTarget",
    "SocketScrapeTarget",
]


class SocketScrapeTarget:
    """One replica reached over its direct service port."""

    def __init__(self, name: str, host: str, port: int,
                 timeout: float = 1.0):
        self.name = name
        self.host = host
        self.port = port
        self.timeout = timeout

    def collect(self) -> list[dict[str, Any]]:
        """One ``metrics?`` round trip; raises when the target is down."""
        # Imported here, not at module scope: the bench (inside the
        # repro.service package) imports this module, so a top-level
        # repro.service.frames import would be circular.
        from repro.service.frames import FrameError, recv_frame, \
            send_frame

        with socket.create_connection((self.host, self.port),
                                      timeout=self.timeout) as sock:
            sock.settimeout(self.timeout)
            send_frame(sock, {"kind": "metrics?"})
            reply = recv_frame(sock)
        if reply is None or reply.get("kind") != "metrics":
            raise FrameError(
                f"{self.name}: unexpected metrics? reply "
                f"{None if reply is None else reply.get('kind')!r}"
            )
        document = reply.get("metrics") or {}
        series = document.get("series")
        return list(series) if isinstance(series, list) else []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SocketScrapeTarget {self.name} {self.host}:{self.port}>"


class RegistryScrapeTarget:
    """An in-process registry (the proxy, or tests)."""

    def __init__(self, name: str, registry: MetricsRegistry):
        self.name = name
        self.registry = registry

    def collect(self) -> list[dict[str, Any]]:
        """The registry's current series list, no wire involved."""
        return self.registry.to_dict()["series"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RegistryScrapeTarget {self.name}>"


class MetricsScraper:
    """Polls every target on an interval, appending one batch each.

    Args:
        store: Where batches land.
        targets: Scrape targets (socket or in-process).
        interval: Minimum seconds between scrape rounds;
            :meth:`maybe_scrape` between rounds costs one clock read.
        labels: Extra labels stamped onto every batch (``policy=...``).
        clock: Wall-clock source (injectable for tests).
    """

    def __init__(
        self,
        store: TimeSeriesStore,
        targets: Sequence[Any],
        interval: float = 1.0,
        labels: Optional[Mapping[str, Any]] = None,
        clock: Callable[[], float] = _time.time,
    ):
        self.store = store
        self.targets = list(targets)
        self.interval = max(0.05, float(interval))
        self.labels = {str(k): str(v) for k, v in (labels or {}).items()}
        self._clock = clock
        self._last: Optional[float] = None
        self.scrapes = 0
        self.failures = 0

    def maybe_scrape(self, now: Optional[float] = None) -> bool:
        """Scrape if the interval elapsed; the first call always does."""
        if now is None:
            now = self._clock()
        if self._last is not None and now - self._last < self.interval:
            return False
        self.scrape(now)
        return True

    def scrape(self, now: Optional[float] = None) -> int:
        """One round over every target; returns how many were up.

        A target that fails (connection refused mid-kill, a torn reply,
        a timeout) contributes a batch holding only ``scrape.up 0``;
        the round itself never raises for a down target.
        """
        if now is None:
            now = self._clock()
        self._last = now
        healthy = 0
        for target in self.targets:
            try:
                series = target.collect()
                up = 1.0
                healthy += 1
            except (OSError, ReproError, ServiceError, ValueError):
                series = []
                up = 0.0
                self.failures += 1
            series = series + [{
                "name": "scrape.up", "labels": {},
                "type": "gauge", "value": up,
            }]
            self.store.append({
                "format": "repro-tsdb-batch",
                "version": 1,
                "at": now,
                "target": target.name,
                "labels": self.labels,
                "series": series,
            })
        self.scrapes += 1
        return healthy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<MetricsScraper targets={len(self.targets)} "
                f"scrapes={self.scrapes} failures={self.failures}>")
