"""Cluster metrics pipeline: scrape, store, query, alert.

The service layer's per-process :class:`~repro.obs.metrics.MetricsRegistry`
instances (replicas over the ``metrics?`` frame, the chaos proxy
in-process) are polled by a :class:`MetricsScraper` into a chunked
append-only :class:`TimeSeriesStore`; :func:`run_query` answers
windowed ``rate()``/last-value/quantile questions over the stored
points; and an :class:`AlertEngine` evaluates SLO rules (availability
burn rate, latency/fsync/recovery thresholds) against the same store,
publishing ``alert.firing``/``alert.resolved`` telemetry edges.
"""

from repro.obs.tsdb.alerts import (AlertEngine, AlertRule, BurnRateRule,
                                   QuantileThresholdRule, default_rules)
from repro.obs.tsdb.query import (QUERY_FUNCTIONS, group_series, increase,
                                  last_value, merged_quantile,
                                  parse_selector, run_query)
from repro.obs.tsdb.scrape import (MetricsScraper, RegistryScrapeTarget,
                                   SocketScrapeTarget)
from repro.obs.tsdb.store import Sample, TimeSeriesStore

__all__ = [
    "AlertEngine",
    "AlertRule",
    "BurnRateRule",
    "MetricsScraper",
    "QUERY_FUNCTIONS",
    "QuantileThresholdRule",
    "RegistryScrapeTarget",
    "Sample",
    "SocketScrapeTarget",
    "TimeSeriesStore",
    "default_rules",
    "group_series",
    "increase",
    "last_value",
    "merged_quantile",
    "parse_selector",
    "run_query",
]
