"""A chunked, append-only on-disk time-series store.

The scraper appends one *batch* per (target, scrape tick) — the full
``MetricsRegistry.to_dict()`` series list stamped with a wall-clock
time, a target name, and any extra labels (``policy=...``).  Batches
land in numbered chunk files under one directory::

    tsdb/
      chunk-000001.tsdb
      chunk-000002.tsdb     <- active tail

Each chunk is a flat sequence of CRC-checked records in exactly the
WAL's framing (:mod:`repro.service.wal`)::

    +------------------+----------------+----------------------+
    | length (4B, BE)  | crc32 (4B, BE) | payload (JSON bytes) |
    +------------------+----------------+----------------------+

and the read side keeps the same crash contract: a *torn final record*
in the newest chunk — the signature of a scraper killed mid-append —
is dropped silently, while corruption anywhere earlier raises
:class:`~repro.errors.WALCorruptionError` (the store must not guess
what a lying disk wrote).

Chunks rotate once the active one passes ``chunk_bytes``; retention
keeps the newest ``max_chunks`` and deletes the rest, so a long bench
holds a bounded window of history, newest-biased — the same shape a
production TSDB's head/block retention takes, scaled down.

Reads flatten batches into :class:`Sample` points (one per series per
batch) for the query layer; batch labels and the target name fold into
each sample's label set so selectors can say ``{target="site-3"}``.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Optional, Union

from repro.errors import ConfigurationError, WALCorruptionError

__all__ = [
    "CHUNK_PATTERN",
    "MAX_RECORD_BYTES",
    "Sample",
    "TimeSeriesStore",
]

_RECORD = struct.Struct(">II")

#: Upper bound on one batch's payload; a length prefix above this is
#: treated as corruption rather than an allocation request.
MAX_RECORD_BYTES = 16 * 1024 * 1024

#: Chunk file naming scheme (zero-padded so lexical order is scan order).
CHUNK_PATTERN = re.compile(r"^chunk-(\d{6})\.tsdb$")


@dataclass(frozen=True)
class Sample:
    """One flattened point: a series value at a scrape instant.

    ``labels`` merges the series' own labels with the batch labels and
    the target name (under ``target``).  For counters and gauges
    ``value`` holds the number and ``summary`` is ``None``; for
    histograms ``value`` is ``None`` and ``summary`` holds the full
    quantile/sum/count document.
    """

    at: float
    name: str
    type: str
    labels: Mapping[str, str]
    value: Optional[float]
    summary: Optional[Mapping[str, Any]]


def _scan_chunk(data: bytes, origin: str, tolerate_tail: bool) -> list[Any]:
    """Decode every complete record, tolerating a torn tail when asked."""
    entries: list[Any] = []
    offset = 0
    size = len(data)
    while offset < size:
        if offset + _RECORD.size > size:
            if tolerate_tail:
                break  # torn header at end-of-file
            raise WALCorruptionError(
                f"{origin}: torn record header at byte {offset} in a "
                "sealed chunk — only the newest chunk may be torn"
            )
        length, crc = _RECORD.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            raise WALCorruptionError(
                f"{origin}: record at byte {offset} claims {length} bytes "
                f"(limit {MAX_RECORD_BYTES}) — corrupt length prefix"
            )
        start = offset + _RECORD.size
        end = start + length
        if end > size:
            if tolerate_tail:
                break  # torn payload at end-of-file
            raise WALCorruptionError(
                f"{origin}: torn record payload at byte {offset} in a "
                "sealed chunk — only the newest chunk may be torn"
            )
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            if tolerate_tail and end == size:
                break  # torn final record: length landed, payload did not
            raise WALCorruptionError(
                f"{origin}: CRC mismatch at byte {offset} with "
                f"{size - end} bytes following — mid-chunk corruption"
            )
        try:
            entry = json.loads(payload)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WALCorruptionError(
                f"{origin}: undecodable record at byte {offset}: {exc}"
            ) from exc
        entries.append(entry)
        offset = end
    return entries


class TimeSeriesStore:
    """The on-disk metrics store for one bench/cluster run.

    Args:
        directory: Where chunk files live (created on first append).
        chunk_bytes: Rotate the active chunk once it reaches this size.
        max_chunks: Retention — keep at most this many chunks, newest
            first; older chunks are deleted at rotation time.
    """

    def __init__(self, directory: Union[str, pathlib.Path],
                 chunk_bytes: int = 256 * 1024, max_chunks: int = 64):
        if chunk_bytes < 1:
            raise ConfigurationError(
                f"chunk_bytes must be >= 1, got {chunk_bytes}")
        if max_chunks < 1:
            raise ConfigurationError(
                f"max_chunks must be >= 1, got {max_chunks}")
        self.directory = pathlib.Path(directory)
        self.chunk_bytes = chunk_bytes
        self.max_chunks = max_chunks
        self._handle: Optional[Any] = None
        self._active: Optional[pathlib.Path] = None
        self._active_size = 0

    # ------------------------------------------------------------------
    def chunk_paths(self) -> list[pathlib.Path]:
        """Existing chunk files, oldest first."""
        if not self.directory.is_dir():
            return []
        chunks = [path for path in self.directory.iterdir()
                  if CHUNK_PATTERN.match(path.name)]
        return sorted(chunks)

    def _open_active(self) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        chunks = self.chunk_paths()
        if chunks and chunks[-1].stat().st_size < self.chunk_bytes:
            self._active = chunks[-1]
        else:
            index = _chunk_index(chunks[-1]) + 1 if chunks else 1
            self._active = self.directory / f"chunk-{index:06d}.tsdb"
        self._handle = open(self._active, "ab")
        self._active_size = self._active.stat().st_size

    def _rotate(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        chunks = self.chunk_paths()
        index = _chunk_index(chunks[-1]) + 1 if chunks else 1
        self._active = self.directory / f"chunk-{index:06d}.tsdb"
        self._handle = open(self._active, "ab")
        self._active_size = 0
        # Retention: drop the oldest chunks beyond the cap.  The active
        # chunk is always newest, so it is never a deletion candidate.
        chunks = self.chunk_paths()
        for stale in chunks[:max(0, len(chunks) - self.max_chunks)]:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - racing deletes are fine
                pass

    def append(self, batch: Mapping[str, Any]) -> None:
        """Durably frame one scrape batch onto the active chunk."""
        if self._handle is None:
            try:
                self._open_active()
            except OSError as exc:
                raise ConfigurationError(
                    f"cannot open time-series store under "
                    f"{self.directory}: {exc}"
                ) from exc
        payload = json.dumps(
            batch, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        if len(payload) > MAX_RECORD_BYTES:
            raise ConfigurationError(
                f"scrape batch of {len(payload)} bytes exceeds the "
                f"{MAX_RECORD_BYTES}-byte limit"
            )
        record = _RECORD.pack(len(payload), zlib.crc32(payload)) + payload
        try:
            assert self._handle is not None
            self._handle.write(record)
            self._handle.flush()
        except OSError as exc:
            raise ConfigurationError(
                f"cannot append to chunk {self._active}: {exc}"
            ) from exc
        self._active_size += len(record)
        if self._active_size >= self.chunk_bytes:
            self._rotate()

    def close(self) -> None:
        """Close the active chunk handle (reads never need it open)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TimeSeriesStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def batches(self) -> Iterator[dict[str, Any]]:
        """Every stored batch, oldest first.

        Only the newest chunk may carry a torn tail (a scraper killed
        mid-append); sealed chunks must be whole, and mid-chunk
        corruption anywhere raises
        :class:`~repro.errors.WALCorruptionError`.
        """
        chunks = self.chunk_paths()
        for position, path in enumerate(chunks):
            data = path.read_bytes()
            tail = position == len(chunks) - 1
            for entry in _scan_chunk(data, str(path), tolerate_tail=tail):
                if isinstance(entry, dict):
                    yield entry

    def samples(self) -> Iterator[Sample]:
        """Every stored point flattened for the query layer."""
        for batch in self.batches():
            at = batch.get("at")
            if not isinstance(at, (int, float)):
                continue
            shared = {str(k): str(v)
                      for k, v in (batch.get("labels") or {}).items()}
            target = batch.get("target")
            if target is not None:
                shared["target"] = str(target)
            for entry in batch.get("series") or ():
                if not isinstance(entry, dict):
                    continue
                name = entry.get("name")
                kind = entry.get("type")
                if not name or kind not in ("counter", "gauge", "histogram"):
                    continue
                labels = dict(shared)
                labels.update({str(k): str(v) for k, v in
                               (entry.get("labels") or {}).items()})
                if kind == "histogram":
                    yield Sample(at=float(at), name=name, type=kind,
                                 labels=labels, value=None, summary=entry)
                else:
                    value = entry.get("value")
                    if not isinstance(value, (int, float)):
                        continue
                    yield Sample(at=float(at), name=name, type=kind,
                                 labels=labels, value=float(value),
                                 summary=None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TimeSeriesStore dir={self.directory} "
                f"chunks={len(self.chunk_paths())}>")


def _chunk_index(path: pathlib.Path) -> int:
    match = CHUNK_PATTERN.match(path.name)
    return int(match.group(1)) if match else 0
