"""Declarative SLO rules evaluated against the time-series store.

The paper's regime — dynamic quorums under churn — is exactly where a
static "did the bench pass" bit is too coarse: availability degrades
*during* a partition and recovers after the heal, and an operator
wants to know both edges.  This module evaluates a small set of
declarative rules against scraped series and publishes the edges as
``alert.firing`` / ``alert.resolved`` telemetry events, so they ride
the existing bus → live stream → SSE path and land as callouts on the
``/live`` dashboard and per-run pages.

The flagship rule is the classic *multi-window burn rate*: with an
availability target ``a`` the error budget is ``1 - a``, the burn rate
is ``error_ratio / (1 - a)``, and the alert fires only when **both** a
fast and a slow window burn hot — the fast window makes detection
quick, the slow window suppresses blips.  Error ratio comes from the
replica-side ``service.ops`` counters (outcome != ok over total), so
it measures what the *cluster* refused, not what one client saw.

Threshold rules read the count-weighted merged histogram quantile
(:func:`~repro.obs.tsdb.query.merged_quantile`): p99 operation
latency, WAL fsync stalls, and recovery-round overruns.

Rules are pure state machines over ``(samples, now)``; the engine owns
the firing bookkeeping so a rule never needs to remember anything.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from repro.errors import ConfigurationError
from repro.obs.tsdb.query import (group_series, increase, merged_quantile,
                                  parse_selector)
from repro.obs.tsdb.store import Sample, TimeSeriesStore

__all__ = [
    "AlertEngine",
    "AlertRule",
    "BurnRateRule",
    "QuantileThresholdRule",
    "default_rules",
]


@dataclass(frozen=True)
class AlertRule:
    """Base rule: a name, a severity, and an ``evaluate`` hook."""

    name: str
    severity: str = "warning"

    def evaluate(self, samples: Sequence[Sample],
                 now: float) -> tuple[bool, dict[str, Any]]:
        """``(active, detail)`` for the instant *now*."""
        raise NotImplementedError

    def to_dict(self) -> dict[str, Any]:
        """The declarative form shown in run documents and docs."""
        return {"name": self.name, "severity": self.severity}


@dataclass(frozen=True)
class BurnRateRule(AlertRule):
    """Multi-window availability burn rate over outcome counters.

    Attributes:
        selector: Counter family holding per-outcome op counts.
        outcome_label: Label carrying the outcome.
        ok_value: The outcome value that spends no error budget.
        target: Availability SLO (0.99 → a 1% error budget).
        fast_window / slow_window: Seconds; both must burn to fire.
        fast_burn / slow_burn: Burn-rate thresholds per window.
    """

    selector: str = "service.ops"
    outcome_label: str = "outcome"
    ok_value: str = "ok"
    target: float = 0.99
    fast_window: float = 60.0
    slow_window: float = 300.0
    fast_burn: float = 10.0
    slow_burn: float = 3.0

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ConfigurationError(
                f"availability target must be in (0, 1), got {self.target}")
        if self.fast_window <= 0 or self.slow_window < self.fast_window:
            raise ConfigurationError(
                "burn-rate windows must satisfy 0 < fast <= slow, got "
                f"fast={self.fast_window} slow={self.slow_window}")

    def _burn(self, samples: Sequence[Sample], start: float,
              end: float) -> tuple[float, float]:
        name, labels = parse_selector(self.selector)
        groups = group_series(samples, name, labels)
        total = 0.0
        ok = 0.0
        for key, points in groups.items():
            grown = increase(points, start, end)
            total += grown
            if dict(key).get(self.outcome_label) == self.ok_value:
                ok += grown
        ratio = (total - ok) / total if total > 0 else 0.0
        return ratio / (1.0 - self.target), total

    def evaluate(self, samples: Sequence[Sample],
                 now: float) -> tuple[bool, dict[str, Any]]:
        fast, fast_ops = self._burn(samples, now - self.fast_window, now)
        slow, slow_ops = self._burn(samples, now - self.slow_window, now)
        active = fast >= self.fast_burn and slow >= self.slow_burn
        return active, {
            "burn_fast": round(fast, 4),
            "burn_slow": round(slow, 4),
            "ops_fast": fast_ops,
            "ops_slow": slow_ops,
            "target": self.target,
        }

    def to_dict(self) -> dict[str, Any]:
        document = super().to_dict()
        document.update({
            "kind": "burn-rate",
            "selector": self.selector,
            "target": self.target,
            "fast_window": self.fast_window,
            "slow_window": self.slow_window,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
        })
        return document


@dataclass(frozen=True)
class QuantileThresholdRule(AlertRule):
    """Fire when the merged histogram quantile exceeds a threshold."""

    selector: str = ""
    quantile: str = "p99"
    threshold: float = 1.0
    window: float = 60.0

    def __post_init__(self) -> None:
        if not self.selector:
            raise ConfigurationError("threshold rule needs a selector")
        if self.window <= 0:
            raise ConfigurationError(
                f"threshold window must be > 0, got {self.window}")

    def evaluate(self, samples: Sequence[Sample],
                 now: float) -> tuple[bool, dict[str, Any]]:
        name, labels = parse_selector(self.selector)
        groups = group_series(samples, name, labels)
        value = merged_quantile(groups, self.quantile,
                                now - self.window, now)
        active = value is not None and value > self.threshold
        return active, {
            "value": None if value is None else round(value, 6),
            "threshold": self.threshold,
            "quantile": self.quantile,
        }

    def to_dict(self) -> dict[str, Any]:
        document = super().to_dict()
        document.update({
            "kind": "quantile-threshold",
            "selector": self.selector,
            "quantile": self.quantile,
            "threshold": self.threshold,
            "window": self.window,
        })
        return document


def default_rules(duration: float = 60.0,
                  target: float = 0.99) -> list[AlertRule]:
    """The standard rule set, windows scaled to a bench's *duration*.

    A production deployment burns over minutes and hours; a seeded
    bench lives for seconds, so windows scale with the run: the fast
    window catches the injected partition, the slow window spans
    enough history to reject single-scrape blips, and both stay small
    enough that the alert can *resolve* before the bench ends.
    """
    fast = max(0.75, 0.2 * duration)
    slow = max(2.0, 0.6 * duration)
    return [
        BurnRateRule(
            name="availability-burn-rate", severity="critical",
            selector="service.ops", target=target,
            fast_window=fast, slow_window=slow,
            fast_burn=10.0, slow_burn=3.0,
        ),
        QuantileThresholdRule(
            name="p99-latency", severity="warning",
            selector="service.op.seconds", quantile="p99",
            threshold=2.0, window=slow,
        ),
        QuantileThresholdRule(
            name="fsync-stall", severity="warning",
            selector="wal.fsync.seconds", quantile="p99",
            threshold=0.5, window=slow,
        ),
        QuantileThresholdRule(
            name="recovery-overrun", severity="warning",
            selector="replica.recover.seconds", quantile="p99",
            threshold=5.0, window=slow,
        ),
    ]


@dataclass
class _RuleState:
    firing: bool = False
    since: Optional[float] = None
    detail: dict[str, Any] = field(default_factory=dict)


class AlertEngine:
    """Evaluates rules against the store and publishes the edges.

    Args:
        store: The time-series store scrapes land in.
        rules: Declarative rules (``default_rules()`` when omitted).
        bus: Optional :class:`~repro.obs.live.bus.TelemetryBus`; firing
            and resolution edges publish ``alert.firing`` /
            ``alert.resolved`` events onto it.
        clock: Wall-clock source (injectable for tests).
    """

    def __init__(
        self,
        store: TimeSeriesStore,
        rules: Optional[Sequence[AlertRule]] = None,
        bus: Optional[Any] = None,
        clock: Any = _time.time,
    ):
        self.store = store
        self.rules = list(rules if rules is not None else default_rules())
        self.bus = bus
        self._clock = clock
        self._states: dict[str, _RuleState] = {
            rule.name: _RuleState() for rule in self.rules
        }
        #: Every firing/resolved transition, in order.
        self.events: list[dict[str, Any]] = []

    def evaluate(
        self,
        samples: Optional[Iterable[Sample]] = None,
        now: Optional[float] = None,
    ) -> list[dict[str, Any]]:
        """One evaluation pass; returns the transitions it produced.

        *samples* lets a caller that already loaded the store (the
        bench's poll loop) share the pass; omitted, the store is read.
        """
        if now is None:
            now = self._clock()
        loaded = list(samples) if samples is not None \
            else list(self.store.samples())
        transitions: list[dict[str, Any]] = []
        for rule in self.rules:
            state = self._states[rule.name]
            active, detail = rule.evaluate(loaded, now)
            state.detail = detail
            if active and not state.firing:
                state.firing = True
                state.since = now
                transitions.append(self._edge("firing", rule, now, detail))
            elif not active and state.firing:
                state.firing = False
                edge = self._edge("resolved", rule, now, detail)
                if state.since is not None:
                    edge["after_seconds"] = round(now - state.since, 3)
                state.since = None
                transitions.append(edge)
        self.events.extend(transitions)
        if self.bus is not None:
            for edge in transitions:
                # The bus stamps its own envelope ``at``; shipping the
                # edge's would shadow it and be rejected.
                self.bus.publish(f"alert.{edge['state']}",
                                 **{k: v for k, v in edge.items()
                                    if k not in ("state", "at")})
        return transitions

    def _edge(self, state: str, rule: AlertRule, now: float,
              detail: dict[str, Any]) -> dict[str, Any]:
        return {
            "state": state,
            "alert": rule.name,
            "severity": rule.severity,
            "at": now,
            **detail,
        }

    def firing(self) -> list[str]:
        """Names of currently-firing alerts."""
        return [name for name, state in self._states.items()
                if state.firing]

    def summary(self) -> dict[str, Any]:
        """The JSON block the bench embeds per policy."""
        return {
            "rules": [rule.to_dict() for rule in self.rules],
            "events": list(self.events),
            "firing": self.firing(),
        }
