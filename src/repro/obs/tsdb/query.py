"""Selectors and windowed functions over stored metric samples.

The store gives back flat :class:`~repro.obs.tsdb.store.Sample` points;
this module turns them into answers.  One grammar serves the CLI, the
serve ``/api/runs/<id>/query`` route, and the alert engine::

    service.ops{outcome="ok",target="site-1"}

— a series name plus an optional ``{key="value",...}`` label filter
(matching is subset: a sample matches when it carries every selector
label with the given value).  Functions:

* ``increase`` / ``rate`` — windowed counter deltas, tolerant of
  counter resets (a replica restart zeroes its registry; a negative
  delta counts the post-reset value instead of going negative);
* ``last`` — gauge last-value within the window;
* ``p50``/``p95``/``p99``/``p999``/``mean`` — per-series values read
  from the newest histogram summary in the window, plus a
  count-weighted merge across matched series (the cluster-wide
  quantile estimate the alert rules consume).

Histogram summaries are cumulative over a process lifetime (the
registry never resets reservoirs), so the window selects *which scrape
is fresh enough to trust*, not which observations are counted — the
honest semantics for merged quantile estimates without shipping raw
observations over the wire.
"""

from __future__ import annotations

import re
from typing import Any, Iterable, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.tsdb.store import Sample

__all__ = [
    "QUERY_FUNCTIONS",
    "group_series",
    "increase",
    "last_value",
    "merged_quantile",
    "parse_selector",
    "run_query",
]

#: Every function ``run_query`` understands.
QUERY_FUNCTIONS = ("rate", "increase", "last", "p50", "p95", "p99",
                   "p999", "mean")

_SELECTOR = re.compile(
    r"^\s*(?P<name>[A-Za-z_][\w.]*)\s*"
    r"(?:\{(?P<labels>[^}]*)\})?\s*$"
)
_LABEL = re.compile(r'^\s*([A-Za-z_][\w.]*)\s*=\s*"([^"]*)"\s*$')

_QUANTILE_KEYS = {"p50": "p50", "p95": "p95", "p99": "p99",
                  "p999": "p999", "mean": "mean"}


def parse_selector(text: str) -> Tuple[str, dict[str, str]]:
    """``name{key="value",...}`` → ``(name, labels)``.

    Raises:
        ConfigurationError: on a malformed selector.
    """
    match = _SELECTOR.match(text or "")
    if not match:
        raise ConfigurationError(
            f"malformed selector {text!r} — expected "
            'name or name{key="value",...}'
        )
    labels: dict[str, str] = {}
    body = match.group("labels")
    if body and body.strip():
        for part in body.split(","):
            pair = _LABEL.match(part)
            if not pair:
                raise ConfigurationError(
                    f"malformed label matcher {part.strip()!r} in "
                    f"selector {text!r} — expected key=\"value\""
                )
            labels[pair.group(1)] = pair.group(2)
    return match.group("name"), labels


def _matches(sample: Sample, name: str, labels: Mapping[str, str]) -> bool:
    if sample.name != name:
        return False
    return all(sample.labels.get(key) == value
               for key, value in labels.items())


def group_series(
    samples: Iterable[Sample], name: str, labels: Mapping[str, str],
) -> dict[Tuple[Tuple[str, str], ...], list[Sample]]:
    """Matched samples grouped per full label set, time-ordered."""
    groups: dict[Tuple[Tuple[str, str], ...], list[Sample]] = {}
    for sample in samples:
        if _matches(sample, name, labels):
            key = tuple(sorted(sample.labels.items()))
            groups.setdefault(key, []).append(sample)
    for points in groups.values():
        points.sort(key=lambda sample: sample.at)
    return groups


def _window(points: Sequence[Sample], start: float,
            end: float) -> list[Sample]:
    return [point for point in points if start <= point.at <= end]


def increase(points: Sequence[Sample], start: float, end: float) -> float:
    """Counter growth across the window, reset-tolerant.

    The first in-window point is the baseline; each later point adds
    its positive delta, and a *negative* delta (a process restart reset
    the counter) adds the post-reset value instead — the observations
    behind it are new since the reset.
    """
    inside = _window(points, start, end)
    total = 0.0
    previous: Optional[float] = None
    for point in inside:
        if point.value is None:
            continue
        if previous is not None:
            delta = point.value - previous
            total += delta if delta >= 0 else point.value
        previous = point.value
    return total


def last_value(points: Sequence[Sample], start: float,
               end: float) -> Optional[float]:
    """The newest in-window value, or ``None`` when the window is empty."""
    for point in reversed(_window(points, start, end)):
        if point.value is not None:
            return point.value
    return None


def _latest_summary(points: Sequence[Sample], start: float,
                    end: float) -> Optional[Mapping[str, Any]]:
    for point in reversed(_window(points, start, end)):
        if point.summary is not None:
            return point.summary
    return None


def merged_quantile(
    groups: Mapping[Any, Sequence[Sample]],
    key: str, start: float, end: float,
) -> Optional[float]:
    """Count-weighted merge of the newest per-series summaries.

    *key* names a summary field (``p99``, ``mean``, ...).  Weighting by
    each series' observation count makes a busy replica's estimate
    dominate an idle one's, which is the right bias for cluster-wide
    latency alerts.
    """
    weighted = 0.0
    weight = 0.0
    for points in groups.values():
        summary = _latest_summary(points, start, end)
        if not summary:
            continue
        value = summary.get(key)
        count = summary.get("count") or 0
        if isinstance(value, (int, float)) and count > 0:
            weighted += float(value) * count
            weight += count
    return weighted / weight if weight else None


def _time_bounds(
    groups: Mapping[Any, Sequence[Sample]],
    window: Optional[float], at: Optional[float],
) -> Tuple[float, float]:
    if at is None:
        newest = [points[-1].at for points in groups.values() if points]
        at = max(newest) if newest else 0.0
    start = at - window if window else float("-inf")
    return start, at


def run_query(
    samples: Iterable[Sample],
    selector: str,
    fn: str = "last",
    window: Optional[float] = None,
    at: Optional[float] = None,
) -> dict[str, Any]:
    """Evaluate *fn* over every series matching *selector*.

    Args:
        samples: Flattened store points (``store.samples()``).
        selector: ``name{key="value",...}``.
        fn: One of :data:`QUERY_FUNCTIONS`.
        window: Seconds of history to consider, newest-anchored;
            required for ``rate``/``increase``, optional otherwise
            (``None`` means all history).
        at: Window end as a wall-clock timestamp; defaults to the
            newest matched sample.

    Returns:
        ``{"format": "repro-tsdb-query", ...}`` with one ``results``
        row per matched series (its full label set, the value, and the
        in-window point count), plus a ``merged`` cluster-wide value
        for histogram quantile functions.
    """
    if fn not in QUERY_FUNCTIONS:
        raise ConfigurationError(
            f"unknown query function {fn!r}; expected one of "
            f"{', '.join(QUERY_FUNCTIONS)}"
        )
    if fn in ("rate", "increase") and not window:
        raise ConfigurationError(f"{fn}() needs a --window")
    name, labels = parse_selector(selector)
    groups = group_series(samples, name, labels)
    start, end = _time_bounds(groups, window, at)

    results: list[dict[str, Any]] = []
    merged: Optional[float] = None
    for key, points in sorted(groups.items()):
        inside = _window(points, start, end)
        value: Optional[float]
        if fn in ("rate", "increase"):
            grown = increase(points, start, end)
            if fn == "rate":
                span = (inside[-1].at - inside[0].at) if len(inside) > 1 \
                    else 0.0
                value = grown / span if span > 0 else None
            else:
                value = grown
        elif fn == "last":
            value = last_value(points, start, end)
        else:
            summary = _latest_summary(points, start, end)
            raw = summary.get(_QUANTILE_KEYS[fn]) if summary else None
            value = float(raw) if isinstance(raw, (int, float)) else None
        results.append({
            "labels": dict(key),
            "value": value,
            "points": len(inside),
        })
    if fn in _QUANTILE_KEYS:
        merged = merged_quantile(groups, _QUANTILE_KEYS[fn], start, end)

    document: dict[str, Any] = {
        "format": "repro-tsdb-query",
        "version": 1,
        "selector": selector,
        "fn": fn,
        "window": window,
        "at": end if groups else None,
        "results": results,
    }
    if merged is not None:
        document["merged"] = merged
    return document
