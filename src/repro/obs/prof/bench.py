"""The benchmark trajectory: recorded points and the regression gate.

A *trajectory point* is one ``BENCH_<n>.json`` document at the repo
root: a set of benchmark statistics (median + IQR, the noise-robust
pair) stamped with the git SHA and a machine/interpreter fingerprint.
``repro bench record`` appends points; ``repro bench compare`` diffs
two and exits non-zero on a regression, which is what the CI
``bench-trajectory`` step gates on.  The schema is documented in
``BENCH_SCHEMA.md`` next to the committed seed baseline
(``BENCH_0.json``).

Two sources feed a point:

* ``--quick`` — a pinned subset of micro-workloads (mirroring
  ``benchmarks/test_bench_micro.py``) timed in-process with best-of
  rounds: seconds to run, stable enough for a smoke gate;
* pytest-benchmark — ingest the ``--benchmark-json`` document the full
  suite writes, so paper-scale timings enter the same trajectory.

Comparison is noise-aware: a benchmark regresses only when the median
moved by more than ``--max-regression`` (relative) *and* by more than
``iqr_factor`` times the larger IQR (absolute) — a single noisy round
cannot fail the gate.  Points from different interpreters or machines
are *incomparable*: the gate reports that instead of inventing a
verdict (override with ``--ignore-fingerprint`` where the noise budget
accounts for it, as CI does).
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import platform
import re
import statistics
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Sequence, Union

from repro.errors import ConfigurationError

__all__ = [
    "BenchComparison",
    "BenchmarkStat",
    "QUICK_WORKLOADS",
    "build_point",
    "compare_points",
    "ingest_pytest_benchmark",
    "latest_trajectory_path",
    "load_point",
    "machine_fingerprint",
    "next_trajectory_path",
    "noise_gated_verdict",
    "run_quick",
    "validate_point",
]

FORMAT = "repro-bench"
VERSION = 1

_TRAJECTORY_RE = re.compile(r"^BENCH_(\d+)\.json$")


# ----------------------------------------------------------------------
# the pinned quick workloads (the CI smoke subset)
# ----------------------------------------------------------------------
def _quick_kernel_events() -> int:
    from repro.sim.kernel import Simulation

    sim = Simulation()
    count = 0

    def tick() -> None:
        nonlocal count
        count += 1
        if count < 10_000:
            sim.schedule(1.0, tick)

    sim.schedule(0.0, tick)
    sim.run()
    return count


def _quick_partition_oracle() -> int:
    import random

    from repro.experiments.testbed import testbed_topology

    topology = testbed_topology()
    rng = random.Random(3)
    ups = [
        frozenset(s for s in range(1, 9) if rng.random() < 0.8)
        for _ in range(500)
    ]
    return sum(len(topology.blocks(up)) for up in ups)


def _quick_quorum_evaluation() -> int:
    import random

    from repro.core.registry import make_protocol
    from repro.experiments.testbed import testbed_topology
    from repro.replica.state import ReplicaSet

    topology = testbed_topology()
    protocol = make_protocol("OTDV", ReplicaSet({1, 2, 4, 6}))
    rng = random.Random(5)
    views = [
        topology.view(frozenset(s for s in range(1, 9)
                                if rng.random() < 0.8))
        for _ in range(300)
    ]
    return sum(1 for view in views if protocol.is_available(view))


def _quick_trace_generation() -> int:
    from repro.failures.profiles import testbed_profiles
    from repro.failures.trace import generate_trace

    return len(generate_trace(testbed_profiles(), 1460.0, seed=1))


#: The pinned micro subset behind ``repro bench record --quick``.
#: Names are stable identifiers — comparisons key on them.
QUICK_WORKLOADS: dict[str, Callable[[], Any]] = {
    "micro/kernel_event_throughput": _quick_kernel_events,
    "micro/partition_oracle": _quick_partition_oracle,
    "micro/quorum_evaluation": _quick_quorum_evaluation,
    "micro/trace_generation": _quick_trace_generation,
}


# ----------------------------------------------------------------------
# point construction
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BenchmarkStat:
    """Noise-robust statistics of one benchmark in one point."""

    name: str
    rounds: int
    median: float
    iqr: float
    mean: float
    minimum: float
    maximum: float

    def to_dict(self) -> dict[str, Any]:
        """The JSON shape stored in a trajectory point."""
        return {
            "name": self.name,
            "rounds": self.rounds,
            "median": self.median,
            "iqr": self.iqr,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "unit": "seconds",
        }

    @staticmethod
    def from_rounds(name: str, rounds: Sequence[float]) -> "BenchmarkStat":
        """Summarise raw per-round timings."""
        if not rounds:
            raise ConfigurationError(f"benchmark {name!r} has no rounds")
        ordered = sorted(rounds)
        if len(ordered) >= 4:
            quartiles = statistics.quantiles(ordered, n=4)
            iqr = quartiles[2] - quartiles[0]
        elif len(ordered) >= 2:
            iqr = ordered[-1] - ordered[0]
        else:
            iqr = 0.0
        return BenchmarkStat(
            name=name,
            rounds=len(ordered),
            median=statistics.median(ordered),
            iqr=iqr,
            mean=statistics.fmean(ordered),
            minimum=ordered[0],
            maximum=ordered[-1],
        )


def machine_fingerprint() -> dict[str, Any]:
    """What must match for two points to be timing-comparable."""
    return {
        "implementation": platform.python_implementation(),
        "python": "%d.%d" % sys.version_info[:2],
        "machine": platform.machine(),
        "system": platform.system(),
        "cpu_count": os.cpu_count(),
    }


def run_quick(
    rounds: int = 5,
    workloads: Optional[Mapping[str, Callable[[], Any]]] = None,
) -> list[BenchmarkStat]:
    """Time the pinned quick workloads: one warmup, then *rounds* laps."""
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
    if workloads is None:
        workloads = QUICK_WORKLOADS
    stats = []
    for name, workload in workloads.items():
        workload()  # warmup: imports, allocator, branch caches
        laps = []
        for _ in range(rounds):
            start = time.perf_counter()
            workload()
            laps.append(time.perf_counter() - start)
        stats.append(BenchmarkStat.from_rounds(name, laps))
    return stats


def ingest_pytest_benchmark(document: Mapping[str, Any]) -> list[BenchmarkStat]:
    """Convert a pytest-benchmark ``--benchmark-json`` document."""
    benchmarks = document.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        raise ConfigurationError(
            "not a pytest-benchmark document: no 'benchmarks' array"
        )
    stats = []
    for entry in benchmarks:
        try:
            name = entry.get("fullname") or entry["name"]
            raw = entry["stats"]
            stats.append(BenchmarkStat(
                name=str(name),
                rounds=int(raw["rounds"]),
                median=float(raw["median"]),
                iqr=float(raw["iqr"]),
                mean=float(raw["mean"]),
                minimum=float(raw["min"]),
                maximum=float(raw["max"]),
            ))
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed pytest-benchmark entry: {exc}"
            ) from exc
    return stats


def build_point(
    benchmarks: Sequence[BenchmarkStat],
    source: str,
    index: Optional[int] = None,
    note: str = "",
) -> dict[str, Any]:
    """Assemble one schema-valid trajectory point."""
    from repro.obs.manifest import git_revision

    sha, dirty = git_revision()
    point = {
        "format": FORMAT,
        "version": VERSION,
        "index": index,
        "recorded_at": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(),
        "source": source,
        "note": note,
        "git_sha": sha,
        "git_dirty": dirty,
        "fingerprint": machine_fingerprint(),
        "benchmarks": [stat.to_dict() for stat in benchmarks],
    }
    validate_point(point)
    return point


# ----------------------------------------------------------------------
# schema validation and trajectory files
# ----------------------------------------------------------------------
def validate_point(document: Any) -> None:
    """Raise :class:`ConfigurationError` unless *document* fits the
    ``repro-bench`` v1 schema (see ``BENCH_SCHEMA.md``)."""
    if not isinstance(document, Mapping):
        raise ConfigurationError("trajectory point is not a JSON object")
    if document.get("format") != FORMAT:
        raise ConfigurationError(
            f"not a {FORMAT} document (format={document.get('format')!r})"
        )
    if document.get("version") != VERSION:
        raise ConfigurationError(
            f"unsupported {FORMAT} version {document.get('version')!r}"
        )
    fingerprint = document.get("fingerprint")
    if not isinstance(fingerprint, Mapping):
        raise ConfigurationError("trajectory point lacks a fingerprint")
    for key in ("implementation", "python", "machine"):
        if not isinstance(fingerprint.get(key), str):
            raise ConfigurationError(
                f"fingerprint lacks the {key!r} string"
            )
    benchmarks = document.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        raise ConfigurationError(
            "trajectory point holds no benchmarks"
        )
    seen: set[str] = set()
    for entry in benchmarks:
        if not isinstance(entry, Mapping):
            raise ConfigurationError("benchmark entry is not an object")
        name = entry.get("name")
        if not isinstance(name, str) or not name:
            raise ConfigurationError("benchmark entry lacks a name")
        if name in seen:
            raise ConfigurationError(f"duplicate benchmark name {name!r}")
        seen.add(name)
        for key in ("median", "iqr", "mean", "min", "max"):
            value = entry.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                raise ConfigurationError(
                    f"benchmark {name!r}: {key} must be a number >= 0, "
                    f"got {value!r}"
                )
        rounds = entry.get("rounds")
        if not isinstance(rounds, int) or rounds < 1:
            raise ConfigurationError(
                f"benchmark {name!r}: rounds must be an int >= 1"
            )


def load_point(path: Union[str, pathlib.Path]) -> dict[str, Any]:
    """Read and validate one trajectory point."""
    path = pathlib.Path(path)
    try:
        document = json.loads(path.read_text())
    except OSError as exc:
        raise ConfigurationError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path} is not JSON: {exc}") from exc
    try:
        validate_point(document)
    except ConfigurationError as exc:
        raise ConfigurationError(f"{path}: {exc}") from exc
    return document


def _trajectory_indices(
    directory: Union[str, pathlib.Path]
) -> list[tuple[int, pathlib.Path]]:
    directory = pathlib.Path(directory)
    found = []
    if directory.is_dir():
        for entry in directory.iterdir():
            match = _TRAJECTORY_RE.match(entry.name)
            if match:
                found.append((int(match.group(1)), entry))
    return sorted(found)


def next_trajectory_path(
    directory: Union[str, pathlib.Path]
) -> tuple[int, pathlib.Path]:
    """The ``(index, path)`` the next ``BENCH_<n>.json`` should use."""
    indices = _trajectory_indices(directory)
    index = indices[-1][0] + 1 if indices else 0
    return index, pathlib.Path(directory) / f"BENCH_{index}.json"


def latest_trajectory_path(
    directory: Union[str, pathlib.Path]
) -> Optional[pathlib.Path]:
    """The highest-numbered ``BENCH_<n>.json``, or ``None``."""
    indices = _trajectory_indices(directory)
    return indices[-1][1] if indices else None


# ----------------------------------------------------------------------
# comparison: the regression gate
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ComparisonRow:
    """One benchmark's verdict between two trajectory points."""

    name: str
    verdict: str  # improvement | within-noise | regression |
    #              only-baseline | only-current
    baseline_median: Optional[float] = None
    current_median: Optional[float] = None

    @property
    def ratio(self) -> Optional[float]:
        """current/baseline median, or ``None`` if either is missing."""
        if (
            self.baseline_median is None
            or self.current_median is None
            or self.baseline_median <= 0.0
        ):
            return None
        return self.current_median / self.baseline_median

    def to_dict(self) -> dict[str, Any]:
        """The JSON shape used in comparison exports."""
        return {
            "name": self.name,
            "verdict": self.verdict,
            "baseline_median": self.baseline_median,
            "current_median": self.current_median,
            "ratio": self.ratio,
        }


@dataclass(frozen=True)
class BenchComparison:
    """The diff of two trajectory points.

    ``status`` is ``"ok"`` (everything within noise or improved),
    ``"regression"`` (at least one benchmark regressed — the gate's
    exit-1 condition) or ``"incomparable"`` (fingerprint mismatch; no
    timing verdicts were produced).
    """

    status: str
    rows: tuple[ComparisonRow, ...]
    baseline_fingerprint: Mapping[str, Any]
    current_fingerprint: Mapping[str, Any]
    max_regression: float
    fingerprint_matches: bool

    @property
    def regressions(self) -> tuple[ComparisonRow, ...]:
        """The rows whose verdict is ``"regression"``."""
        return tuple(r for r in self.rows if r.verdict == "regression")

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable export (``--json-out``)."""
        return {
            "format": "repro-bench-comparison",
            "version": 1,
            "status": self.status,
            "max_regression": self.max_regression,
            "fingerprint_matches": self.fingerprint_matches,
            "baseline_fingerprint": dict(self.baseline_fingerprint),
            "current_fingerprint": dict(self.current_fingerprint),
            "rows": [row.to_dict() for row in self.rows],
        }


def noise_gated_verdict(
    baseline: float,
    current: float,
    baseline_noise: float,
    current_noise: float,
    max_regression: float,
    iqr_factor: float,
) -> str:
    """The dual noise gate shared by every regression comparison.

    A measurement regresses only when it grew by more than
    *max_regression* relative to the baseline **and** by more than
    *iqr_factor* times the larger of the two noise estimates — so
    neither a small drift on a quiet series nor a large wobble on a
    noisy one trips the verdict.  Improvement is symmetric.  The bench
    trajectory feeds medians and IQRs; the run registry feeds
    unavailabilities and their batch-means half-widths (``repro runs
    diff``) through the very same gate.

    Returns ``"regression"``, ``"improvement"`` or ``"within-noise"``.
    """
    delta = current - baseline
    noise = iqr_factor * max(baseline_noise, current_noise)
    threshold = max_regression * baseline
    if delta > threshold and delta > noise:
        return "regression"
    if -delta > threshold and -delta > noise:
        return "improvement"
    return "within-noise"


def _fingerprints_match(a: Mapping[str, Any], b: Mapping[str, Any]) -> bool:
    return all(
        a.get(key) == b.get(key)
        for key in ("implementation", "python", "machine")
    )


def compare_points(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    max_regression: float = 0.25,
    iqr_factor: float = 1.5,
    ignore_fingerprint: bool = False,
) -> BenchComparison:
    """Diff two trajectory points with noise-aware thresholds.

    A benchmark regresses when its median grew by more than
    *max_regression* (relative to the baseline median) **and** by more
    than *iqr_factor* times the larger of the two IQRs — both gates must
    open, so neither a small drift on a quiet benchmark nor a large
    wobble on a noisy one trips the verdict.  Improvement is symmetric.
    Benchmarks present in only one point are reported but never gate.

    Raises:
        ConfigurationError: invalid documents or thresholds.
    """
    validate_point(baseline)
    validate_point(current)
    if max_regression <= 0:
        raise ConfigurationError(
            f"max-regression must be > 0, got {max_regression}"
        )
    if iqr_factor < 0:
        raise ConfigurationError(
            f"iqr-factor must be >= 0, got {iqr_factor}"
        )
    base_fp = baseline["fingerprint"]
    cur_fp = current["fingerprint"]
    matches = _fingerprints_match(base_fp, cur_fp)
    if not matches and not ignore_fingerprint:
        return BenchComparison(
            status="incomparable",
            rows=(),
            baseline_fingerprint=base_fp,
            current_fingerprint=cur_fp,
            max_regression=max_regression,
            fingerprint_matches=False,
        )
    base_by_name = {b["name"]: b for b in baseline["benchmarks"]}
    cur_by_name = {b["name"]: b for b in current["benchmarks"]}
    rows = []
    for name in sorted(base_by_name.keys() | cur_by_name.keys()):
        base = base_by_name.get(name)
        cur = cur_by_name.get(name)
        if base is None:
            rows.append(ComparisonRow(
                name, "only-current", None, cur["median"]
            ))
            continue
        if cur is None:
            rows.append(ComparisonRow(
                name, "only-baseline", base["median"], None
            ))
            continue
        verdict = noise_gated_verdict(
            base["median"], cur["median"], base["iqr"], cur["iqr"],
            max_regression, iqr_factor,
        )
        rows.append(ComparisonRow(
            name, verdict, base["median"], cur["median"]
        ))
    status = "regression" if any(
        row.verdict == "regression" for row in rows
    ) else "ok"
    return BenchComparison(
        status=status,
        rows=tuple(rows),
        baseline_fingerprint=base_fp,
        current_fingerprint=cur_fp,
        max_regression=max_regression,
        fingerprint_matches=matches,
    )
