"""Performance observability: phase timers, profilers, bench trajectory.

Three layers, from always-on-able to fully offline:

* :mod:`repro.obs.prof.phases` — :class:`PhaseProfiler`, deterministic
  phase timers and hot-path counters.  Instrumented code (the sim
  kernel, the message engine, the protocols, the study runner) holds
  ``profiler = None`` by default and pays one ``is not None`` check per
  event when detached, exactly like the :class:`~repro.obs.tracer.
  Tracer` hooks.
* :mod:`repro.obs.prof.profiler` / :mod:`repro.obs.prof.sampler` — a
  deterministic ``cProfile`` wrapper and a signal-based stack sampler,
  both exporting collapsed stacks that standard flamegraph tooling
  renders (``repro profile <scenario|study|chaos>``).
* :mod:`repro.obs.prof.bench` — the benchmark trajectory: fingerprinted
  ``BENCH_<n>.json`` points recorded by ``repro bench record`` and the
  noise-aware regression gate behind ``repro bench compare``.
"""

from repro.obs.prof.bench import (
    BenchComparison,
    BenchmarkStat,
    build_point,
    compare_points,
    ingest_pytest_benchmark,
    latest_trajectory_path,
    load_point,
    machine_fingerprint,
    next_trajectory_path,
    noise_gated_verdict,
    run_quick,
    validate_point,
)
from repro.obs.prof.phases import PhaseProfiler
from repro.obs.prof.profiler import (
    HotFunction,
    ProfileReport,
    collapse_stats,
    hot_functions,
    run_profiled,
)
from repro.obs.prof.sampler import StackSampler

__all__ = [
    "BenchComparison",
    "BenchmarkStat",
    "HotFunction",
    "PhaseProfiler",
    "ProfileReport",
    "StackSampler",
    "build_point",
    "collapse_stats",
    "compare_points",
    "hot_functions",
    "ingest_pytest_benchmark",
    "latest_trajectory_path",
    "load_point",
    "machine_fingerprint",
    "next_trajectory_path",
    "noise_gated_verdict",
    "run_profiled",
    "run_quick",
    "validate_point",
]
