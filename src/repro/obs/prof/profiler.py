"""Profiling a workload: cProfile wrapper, collapsed stacks, reports.

Two engines behind ``repro profile``:

* ``cprofile`` (default) — deterministic: every call counted, exact
  ``tottime``/``cumtime``.  cProfile only records *immediate* callers,
  so :func:`collapse_stats` reconstructs flamegraph stacks the way
  ``flameprof`` does: walk the call graph from its roots and attribute
  each function's own time proportionally to the cumulative time of the
  edge it was reached through.  The estimate is exact for tree-shaped
  call graphs (the common case here) and proportional elsewhere.
* ``sample`` — the :class:`~repro.obs.prof.sampler.StackSampler`:
  statistical counts but *true* stacks, and overhead that does not grow
  with call volume (the better choice for the paper-scale study).

Both produce a :class:`ProfileReport` with a top-N hot-function table,
collapsed stacks renderable by standard flamegraph tooling, and a JSON
export; ``repro profile`` also folds in the deterministic
:class:`~repro.obs.prof.phases.PhaseProfiler` phases.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import ConfigurationError
from repro.obs.prof.phases import PhaseProfiler
from repro.obs.prof.sampler import StackSampler

__all__ = [
    "HotFunction",
    "ProfileReport",
    "collapse_stats",
    "hot_functions",
    "run_profiled",
]

#: Functions deeper than this are truncated in collapsed stacks.
_MAX_STACK_DEPTH = 80
#: Collapsed-stack sample unit: microseconds of estimated own time.
_STACK_SCALE = 1_000_000.0


@dataclass(frozen=True)
class HotFunction:
    """One row of the top-N hot-function report."""

    name: str
    location: str
    calls: int
    own_seconds: float
    cumulative_seconds: float

    def to_dict(self) -> dict[str, Any]:
        """One hot-function row, JSON-shaped."""
        return {
            "name": self.name,
            "location": self.location,
            "calls": self.calls,
            "own_seconds": self.own_seconds,
            "cumulative_seconds": self.cumulative_seconds,
        }


@dataclass(frozen=True)
class ProfileReport:
    """Everything one ``repro profile`` run produced.

    Attributes:
        engine: ``"cprofile"`` or ``"sample"``.
        target: What was profiled (``"scenario:..."``, ``"study"``, ...).
        seconds: Wall-clock of the profiled workload.
        hot: Hot functions, by own time (or leaf samples), descending.
        collapsed: Flamegraph-compatible ``a;b;c count`` lines.
        samples: Stack samples captured (``None`` for cprofile).
        phases: The :class:`PhaseProfiler` summary, when one ran.
    """

    engine: str
    target: str
    seconds: float
    hot: tuple[HotFunction, ...]
    collapsed: tuple[str, ...]
    samples: Optional[int] = None
    phases: Optional[dict[str, Any]] = field(default=None)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable export (``--json-out``)."""
        return {
            "format": "repro-profile",
            "version": 1,
            "engine": self.engine,
            "target": self.target,
            "seconds": self.seconds,
            "samples": self.samples,
            "hot": [entry.to_dict() for entry in self.hot],
            "collapsed": list(self.collapsed),
            "phases": self.phases,
        }

    def format_text(self, top: int = 15) -> str:
        """The human report ``repro profile`` prints."""
        lines = [
            f"profiled {self.target} with {self.engine} "
            f"({self.seconds:.3f}s wall"
            + (f", {self.samples} samples" if self.samples is not None
               else "")
            + ")",
        ]
        shown = self.hot[:top]
        if shown:
            width = max(len(entry.name) for entry in shown)
            lines.append("")
            lines.append(
                f"{'function':<{width}}  {'calls':>9}  {'own(s)':>9}  "
                f"{'cum(s)':>9}  location"
            )
            for entry in shown:
                calls = str(entry.calls) if entry.calls >= 0 else "-"
                lines.append(
                    f"{entry.name:<{width}}  {calls:>9}  "
                    f"{entry.own_seconds:>9.4f}  "
                    f"{entry.cumulative_seconds:>9.4f}  {entry.location}"
                )
        if self.phases is not None and self.phases.get("phases"):
            lines.append("")
            lines.append("phase breakdown (wall seconds):")
            width = max(
                len(e["phase"]) for e in self.phases["phases"]
            )
            for entry in self.phases["phases"]:
                lines.append(
                    f"  {entry['phase']:<{width}}  "
                    f"{entry['seconds']:>10.4f}s  x{entry['count']}"
                )
            rate = self.phases.get("events_per_second")
            if rate:
                lines.append(f"  kernel: {rate:,.0f} events/s")
        if self.phases is not None and self.phases.get("counters"):
            lines.append("")
            lines.append("hot-path counters:")
            ranked = sorted(
                self.phases["counters"].items(),
                key=lambda kv: (-kv[1], kv[0]),
            )
            for name, value in ranked[:10]:
                lines.append(f"  {name:<32} {value:>12,.0f}")
            if len(ranked) > 10:
                lines.append(f"  ... and {len(ranked) - 10} more "
                             "(--json-out has all)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# cProfile: hot functions and collapsed stacks
# ----------------------------------------------------------------------
def _func_label(func: tuple[str, int, str]) -> str:
    filename, _, name = func
    if filename == "~":  # built-ins
        module = "builtins"
    else:
        module = filename.rsplit("/", 1)[-1]
        if module.endswith(".py"):
            module = module[:-3]
    # The collapsed format reserves ';' (frame separator) and ' '
    # (count separator): sanitise both out of every frame label.
    return f"{module}:{name}".replace(";", ",").replace(" ", "_")


def _func_location(func: tuple[str, int, str]) -> str:
    filename, line, _ = func
    if filename == "~":
        return "<builtin>"
    short = filename
    for marker in ("/site-packages/", "/src/"):
        index = short.rfind(marker)
        if index >= 0:
            short = short[index + len(marker):]
            break
    return f"{short}:{line}"


def hot_functions(
    stats: pstats.Stats, limit: int = 15
) -> tuple[HotFunction, ...]:
    """The *limit* hottest functions by own (tot) time."""
    rows = []
    for func, (cc, nc, tt, ct, _callers) in stats.stats.items():  # type: ignore[attr-defined]
        rows.append(HotFunction(
            name=_func_label(func),
            location=_func_location(func),
            calls=nc,
            own_seconds=tt,
            cumulative_seconds=ct,
        ))
    rows.sort(key=lambda r: (-r.own_seconds, r.name))
    return tuple(rows[:limit])


def collapse_stats(stats: pstats.Stats) -> tuple[str, ...]:
    """Estimate collapsed (flamegraph) stacks from cProfile output.

    cProfile's call graph holds, per function, its immediate callers and
    the time spent on each caller edge.  Stacks are reconstructed by
    depth-first walking from the roots (functions nobody calls),
    attributing each function's own time proportionally to the
    cumulative time of the edge it was reached through — the
    ``flameprof`` estimation.  Values are integer microseconds; zero
    after rounding drops the line.
    """
    raw: dict = stats.stats  # type: ignore[attr-defined]
    children: dict = {}
    incoming: dict = {}
    for func, (_cc, _nc, _tt, _ct, callers) in raw.items():
        for caller, (_ccc, _cnc, _ctt, cct) in callers.items():
            children.setdefault(caller, []).append((func, cct))
            incoming[func] = incoming.get(func, 0.0) + cct
    roots = [func for func in raw if func not in incoming]
    lines: dict[str, int] = {}

    def walk(func: tuple, path: tuple, labels: str, fraction: float,
             depth: int) -> None:
        _cc, _nc, tt, _ct, _callers = raw[func]
        own = int(round(tt * fraction * _STACK_SCALE))
        label = labels + _func_label(func) if not path else \
            labels + ";" + _func_label(func)
        if own > 0:
            lines[label] = lines.get(label, 0) + own
        if depth >= _MAX_STACK_DEPTH:
            return
        for child, edge_ct in children.get(func, ()):
            if child in path or child == func:
                continue  # cycle guard: recursion collapses onto itself
            total_in = incoming.get(child, 0.0)
            if total_in <= 0.0 or edge_ct <= 0.0:
                continue
            walk(child, path + (func,), label,
                 fraction * (edge_ct / total_in), depth + 1)

    for root in roots:
        walk(root, (), "", 1.0, 0)
    return tuple(
        f"{label} {value}" for label, value in sorted(lines.items())
    )


# ----------------------------------------------------------------------
# the one entry point the CLI uses
# ----------------------------------------------------------------------
def run_profiled(
    workload: Callable[[], Any],
    target: str,
    engine: str = "cprofile",
    interval: float = 0.005,
    top: int = 15,
    phases: Optional[PhaseProfiler] = None,
) -> tuple[Any, ProfileReport]:
    """Run *workload* under the chosen engine; returns (result, report).

    Args:
        workload: Zero-argument callable to profile.
        target: Human-readable name recorded in the report.
        engine: ``"cprofile"`` (deterministic) or ``"sample"``.
        interval: Sampler period in seconds (``sample`` engine only).
        top: Hot functions to keep in the report.
        phases: A :class:`PhaseProfiler` whose summary is folded into
            the report (the CLI threads one through the workload).

    Raises:
        ConfigurationError: unknown engine, or sampling unsupported on
            this platform/thread.
    """
    import time

    if engine == "cprofile":
        profile = cProfile.Profile()
        start = time.perf_counter()
        result = profile.runcall(workload)
        seconds = time.perf_counter() - start
        stats = pstats.Stats(profile, stream=io.StringIO())
        report = ProfileReport(
            engine=engine,
            target=target,
            seconds=seconds,
            hot=hot_functions(stats, top),
            collapsed=collapse_stats(stats),
            phases=phases.to_dict() if phases is not None else None,
        )
        return result, report
    if engine == "sample":
        if not StackSampler.supported():
            raise ConfigurationError(
                "the sampling engine needs signal.setitimer and the "
                "main thread; use --engine cprofile"
            )
        sampler = StackSampler(interval=interval)
        start = time.perf_counter()
        with sampler:
            result = workload()
        seconds = time.perf_counter() - start
        hot = tuple(
            HotFunction(
                name=name,
                location="<sampled>",
                calls=-1,
                own_seconds=count * sampler.interval,
                cumulative_seconds=count * sampler.interval,
            )
            for name, count in sampler.hot_functions(top)
        )
        report = ProfileReport(
            engine=engine,
            target=target,
            seconds=seconds,
            hot=hot,
            collapsed=tuple(sampler.collapsed()),
            samples=sampler.sample_count,
            phases=phases.to_dict() if phases is not None else None,
        )
        return result, report
    raise ConfigurationError(
        f"unknown profile engine {engine!r}; choose cprofile or sample"
    )
