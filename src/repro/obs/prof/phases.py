"""Deterministic phase timers and hot-path counters.

A :class:`PhaseProfiler` answers "where did the wall-clock go?" without
a profiler's overhead: coarse *phases* (trace generation, one study
cell, a replay loop) are timed with one ``perf_counter`` pair each,
while *hot-path counters* (events fired per type, messages sent per
kind, quorum evaluations per policy) are plain dictionary increments —
cheap enough to leave in code that executes millions of times per
study.

Instrumented code follows the :class:`~repro.obs.tracer.Tracer`
convention: it holds ``profiler = None`` by default and guards every
hook with ``if profiler is not None``, so the detached hot path pays
only the ``None`` check (guarded by
``benchmarks/test_bench_prof_overhead.py``).

Counts are folded into the shared :class:`~repro.obs.metrics.
MetricsRegistry` on :meth:`~PhaseProfiler.flush` (or :meth:`~
PhaseProfiler.to_dict`), so phase timings land in the same
``--metrics-out`` document as the runner's ``cell.seconds`` series.
"""

from __future__ import annotations

import time as _time
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = ["PhaseProfiler"]


class PhaseProfiler:
    """Phase timers plus hot-path counters over a metrics registry.

    Usage::

        profiler = PhaseProfiler()
        sim.attach_profiler(profiler)          # kernel event counts
        with profiler.phase("study.trace"):
            trace = generate_trace(...)
        profiler.to_dict()                     # flushes + summarises

    Phases nest: a ``phase("cell")`` opened inside ``phase("study")``
    is recorded as ``study/cell``, giving a flamegraph-shaped breakdown
    of the run's own structure.  Counters (:meth:`count`,
    :meth:`count_event`) are plain dict increments until :meth:`flush`
    moves them into the registry as ``prof.count`` / ``prof.event``
    series.
    """

    __slots__ = ("registry", "_counts", "_event_counts", "_stack",
                 "_events_executed", "_run_seconds")

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counts: dict[str, float] = {}
        self._event_counts: dict[str, int] = {}
        self._stack: list[str] = []
        self._events_executed = 0
        self._run_seconds = 0.0

    # ------------------------------------------------------------------
    # hot-path counters (plain dict increments)
    # ------------------------------------------------------------------
    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment the hot-path counter *name* by *amount*."""
        counts = self._counts
        counts[name] = counts.get(name, 0.0) + amount

    def count_event(self, name: str) -> None:
        """Tally one kernel event of type *name* (its schedule name)."""
        key = name or "<anonymous>"
        counts = self._event_counts
        counts[key] = counts.get(key, 0) + 1

    def note_run(self, events: int, seconds: float) -> None:
        """Record one kernel run loop: *events* executed in *seconds*.

        Accumulates across runs; :attr:`events_per_second` reports the
        aggregate rate.
        """
        self._events_executed += events
        self._run_seconds += seconds

    # ------------------------------------------------------------------
    # phase timers
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str, **labels: Any) -> Iterator[None]:
        """Time a ``with`` block as phase *name* (nested phases join
        with ``/``), recording into ``prof.phase.seconds``."""
        if not name:
            raise ValueError("phase name must be non-empty")
        self._stack.append(name)
        path = "/".join(self._stack)
        start = _time.perf_counter()
        try:
            yield
        finally:
            elapsed = _time.perf_counter() - start
            self._stack.pop()
            self.registry.histogram(
                "prof.phase.seconds", phase=path, **labels
            ).observe(elapsed)

    @property
    def current_phase(self) -> str:
        """The ``/``-joined path of open phases (empty outside any)."""
        return "/".join(self._stack)

    @property
    def events_per_second(self) -> float:
        """Aggregate kernel event rate over every noted run loop."""
        if self._run_seconds <= 0.0:
            return 0.0
        return self._events_executed / self._run_seconds

    # ------------------------------------------------------------------
    # folding into the registry
    # ------------------------------------------------------------------
    def flush(self) -> MetricsRegistry:
        """Move the dict counters into the registry; returns it.

        Idempotent between hot-path updates: each flush transfers only
        the increments accumulated since the previous one.
        """
        for name, amount in self._counts.items():
            if amount:
                self.registry.counter("prof.count", counter=name).inc(amount)
        self._counts.clear()
        for name, amount in self._event_counts.items():
            if amount:
                self.registry.counter("prof.event", event=name).inc(amount)
        self._event_counts.clear()
        if self._run_seconds > 0.0:
            self.registry.counter("prof.kernel.events").inc(
                self._events_executed
            )
            self.registry.counter("prof.kernel.run_seconds").inc(
                self._run_seconds
            )
            self.registry.gauge("prof.kernel.events_per_second").set(
                self.events_per_second
            )
            self._events_executed = 0
            self._run_seconds = 0.0
        return self.registry

    def to_dict(self) -> dict[str, Any]:
        """Flush, then summarise: phases by time, counters, event rate."""
        self.flush()
        phases = []
        counters: dict[str, float] = {}
        events: dict[str, float] = {}
        events_per_second = None
        for name, labels, instrument in self.registry.series():
            if name == "prof.phase.seconds":
                entry = {"phase": labels.get("phase", "?")}
                entry.update(
                    {k: v for k, v in labels.items() if k != "phase"}
                )
                entry["seconds"] = instrument.total
                entry["count"] = instrument.count
                phases.append(entry)
            elif name == "prof.count":
                counters[labels.get("counter", "?")] = instrument.value
            elif name == "prof.event":
                events[labels.get("event", "?")] = instrument.value
            elif name == "prof.kernel.events_per_second":
                events_per_second = instrument.value
        phases.sort(key=lambda e: (-e["seconds"], e["phase"]))
        return {
            "format": "repro-prof-phases",
            "version": 1,
            "phases": phases,
            "counters": dict(sorted(counters.items())),
            "events": dict(sorted(events.items())),
            "events_per_second": events_per_second,
        }

    def report(self) -> str:
        """A small text report: phases by wall time, top counters."""
        doc = self.to_dict()
        lines = ["phase breakdown (wall seconds):"]
        if doc["phases"]:
            width = max(len(e["phase"]) for e in doc["phases"])
            for entry in doc["phases"]:
                lines.append(
                    f"  {entry['phase']:<{width}}  "
                    f"{entry['seconds']:>10.4f}s  x{entry['count']}"
                )
        else:
            lines.append("  (no phases recorded)")
        if doc["events_per_second"]:
            lines.append(
                f"kernel: {doc['events_per_second']:,.0f} events/s"
            )
        if doc["events"]:
            lines.append("kernel events by type:")
            for name, value in sorted(
                doc["events"].items(), key=lambda kv: (-kv[1], kv[0])
            ):
                lines.append(f"  {name:<32} {value:>12,.0f}")
        if doc["counters"]:
            lines.append("hot-path counters:")
            for name, value in sorted(
                doc["counters"].items(), key=lambda kv: (-kv[1], kv[0])
            ):
                lines.append(f"  {name:<32} {value:>12,.0f}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PhaseProfiler phases={len(self._stack)} "
            f"counters={len(self._counts)}>"
        )
