"""A signal-based stack sampler: true stacks, bounded overhead.

``cProfile`` times every call deterministically but only remembers
immediate callers, so its flamegraphs are estimates (see
:func:`repro.obs.prof.profiler.collapse_stats`).  The
:class:`StackSampler` takes the opposite trade: a ``SIGPROF`` timer
fires every *interval* seconds of **CPU time**, the handler walks the
current Python frame stack, and each observed stack is tallied —
exact stacks, statistical counts, near-zero overhead between samples.

Collapsed output (``root;child;leaf count`` lines) renders directly in
standard flamegraph tooling (Brendan Gregg's ``flamegraph.pl``,
speedscope, inferno).

Constraints inherited from the signal module: the sampler only works on
platforms with ``signal.setitimer`` (not Windows) and only in the main
thread.  :meth:`StackSampler.supported` reports whether it can run;
``repro profile --engine sample`` degrades with a clear error when it
cannot.
"""

from __future__ import annotations

import signal
import threading
from types import FrameType
from typing import Optional

__all__ = ["StackSampler"]


def _frame_label(frame: FrameType) -> str:
    """``module:function``, sanitised for the collapsed-stack format."""
    module = frame.f_globals.get("__name__", "?")
    name = frame.f_code.co_name
    label = f"{module}:{name}"
    # Semicolons separate frames and spaces separate the count; neither
    # may appear inside a label.
    return label.replace(";", ",").replace(" ", "_")


class StackSampler:
    """Samples the main thread's Python stack on a CPU-time timer.

    Usage::

        sampler = StackSampler(interval=0.005)
        with sampler:
            hot_workload()
        sampler.collapsed()   # ["mod:outer;mod:inner 42", ...]

    Attributes:
        interval: Seconds of CPU time between samples.
        sample_count: Stacks captured so far.
    """

    def __init__(self, interval: float = 0.005, max_depth: int = 128):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.interval = interval
        self.max_depth = max_depth
        self.sample_count = 0
        self._stacks: dict[tuple[str, ...], int] = {}
        self._previous_handler: object = None
        self._running = False

    @staticmethod
    def supported() -> bool:
        """Whether this platform/thread can host the sampler."""
        return (
            hasattr(signal, "setitimer")
            and hasattr(signal, "SIGPROF")
            and threading.current_thread() is threading.main_thread()
        )

    # ------------------------------------------------------------------
    def _handle(self, signum: int, frame: Optional[FrameType]) -> None:
        stack: list[str] = []
        depth = 0
        while frame is not None and depth < self.max_depth:
            stack.append(_frame_label(frame))
            frame = frame.f_back
            depth += 1
        if not stack:
            return
        key = tuple(reversed(stack))  # root first
        self._stacks[key] = self._stacks.get(key, 0) + 1
        self.sample_count += 1

    def start(self) -> None:
        """Install the handler and arm the CPU-time interval timer."""
        if self._running:
            raise RuntimeError("sampler already running")
        if not self.supported():
            raise RuntimeError(
                "stack sampling needs signal.setitimer and the main "
                "thread; use the cprofile engine instead"
            )
        self._previous_handler = signal.signal(signal.SIGPROF, self._handle)
        signal.setitimer(signal.ITIMER_PROF, self.interval, self.interval)
        self._running = True

    def stop(self) -> None:
        """Disarm the timer and restore the previous handler."""
        if not self._running:
            return
        signal.setitimer(signal.ITIMER_PROF, 0.0)
        if self._previous_handler is not None:
            signal.signal(signal.SIGPROF, self._previous_handler)
        self._previous_handler = None
        self._running = False

    def __enter__(self) -> "StackSampler":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def collapsed(self) -> list[str]:
        """Flamegraph-compatible ``frame;frame;... count`` lines."""
        return [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(self._stacks.items())
        ]

    def hot_functions(self, limit: int = 15) -> list[tuple[str, int]]:
        """``(leaf frame, samples)`` pairs, most-sampled first.

        The leaf of each stack is where CPU time was actually observed,
        so this is the sampling analogue of ``tottime``.
        """
        leaves: dict[str, int] = {}
        for stack, count in self._stacks.items():
            leaf = stack[-1]
            leaves[leaf] = leaves.get(leaf, 0) + count
        ranked = sorted(leaves.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:limit]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StackSampler interval={self.interval} "
            f"samples={self.sample_count}>"
        )
