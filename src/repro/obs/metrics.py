"""A small metrics registry: counters, gauges, histograms, timers.

The study harness wants numbers, not log lines: how many quorum tests
granted per policy, how long each (configuration, policy) cell took,
how tie-breaks distribute.  A :class:`MetricsRegistry` holds labelled
series of three instrument kinds:

* :class:`Counter` — monotonically increasing count (``inc``);
* :class:`Gauge` — last-write-wins value (``set``);
* :class:`Histogram` — streaming summary (count/sum/min/max/mean) plus
  a bounded reservoir for quantiles.

Series are identified by ``(name, labels)``; asking for the same pair
twice returns the same instrument, so instrumented code can call
``registry.counter("quorum.granted", policy="LDV")`` in a loop without
bookkeeping.  ``registry.timed(...)`` is a context manager recording a
wall-clock duration into a histogram — the runner wraps every study
cell in one.  ``to_dict()`` produces the JSON document that
``--metrics-out`` writes.
"""

from __future__ import annotations

import time as _time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator, Mapping, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracer import TraceRecord

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "MetricsSink"]

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (>= 0) to the count."""
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        self.value += amount

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable summary."""
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-write-wins value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* to the value."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract *amount* from the value."""
        self.value -= amount

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable summary."""
        return {"type": "gauge", "value": self.value}


class Histogram:
    """A streaming summary plus a bounded reservoir of observations.

    The summary (count, sum, min, max) is exact; quantiles come from the
    first *reservoir_size* observations, which is exact for the study's
    per-cell timings (dozens of observations) and bounded for hot-path
    use.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "_reservoir",
                 "_reservoir_size")

    def __init__(self, reservoir_size: int = 1024):
        if reservoir_size < 1:
            raise ValueError(f"reservoir size must be >= 1, got {reservoir_size}")
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._reservoir: list[float] = []
        self._reservoir_size = reservoir_size

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        if len(self._reservoir) < self._reservoir_size:
            self._reservoir.append(value)

    def merge(self, other: "Histogram") -> None:
        """Fold *other*'s observations into this histogram (for combining
        per-worker registries after a parallel study)."""
        self.count += other.count
        self.total += other.total
        if other.minimum is not None:
            if self.minimum is None or other.minimum < self.minimum:
                self.minimum = other.minimum
        if other.maximum is not None:
            if self.maximum is None or other.maximum > self.maximum:
                self.maximum = other.maximum
        room = self._reservoir_size - len(self._reservoir)
        if room > 0:
            self._reservoir.extend(other._reservoir[:room])

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile over the reservoir (0.0 if empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        if len(ordered) == 1:
            return ordered[0]
        position = q * (len(ordered) - 1)
        index = min(int(position), len(ordered) - 2)
        fraction = position - index
        return ordered[index] + fraction * (ordered[index + 1] - ordered[index])

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable summary with p50/p95/p99/p99.9.

        ``sum``/``count`` are exact, so rates and averages stay
        computable from the serialised form alone — the contract the
        time-series query layer and Prometheus exposition rely on.
        """
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "p999": self.quantile(0.999),
        }


class MetricsRegistry:
    """Labelled series of counters, gauges and histograms.

    Every accessor is get-or-create: the first
    ``registry.counter("x", policy="LDV")`` makes the series, later
    calls return it.  A name must keep one instrument kind — asking for
    ``counter("x")`` after ``gauge("x")`` raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._series: dict[tuple[str, LabelKey], Any] = {}
        self._kinds: dict[str, type] = {}

    def _get(self, cls: type, name: str, labels: Mapping[str, Any]) -> Any:
        if not name:
            raise ValueError("metric name must be non-empty")
        known = self._kinds.get(name)
        if known is not None and known is not cls:
            raise ValueError(
                f"metric {name!r} is a {known.__name__}, not a {cls.__name__}"
            )
        key = (name, _label_key(labels))
        instrument = self._series.get(key)
        if instrument is None:
            instrument = cls()
            self._series[key] = instrument
            self._kinds[name] = cls
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter series (name, labels), created on first use."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge series (name, labels), created on first use."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """The histogram series (name, labels), created on first use."""
        return self._get(Histogram, name, labels)

    @contextmanager
    def timed(self, name: str, **labels: Any) -> Iterator[Histogram]:
        """Record the wall-clock duration of a ``with`` block, in seconds.

        Yields the underlying histogram, so callers can read totals.
        Durations are recorded even when the block raises.
        """
        histogram = self.histogram(name, **labels)
        start = _time.perf_counter()
        try:
            yield histogram
        finally:
            histogram.observe(_time.perf_counter() - start)

    # ------------------------------------------------------------------
    def series(self) -> Iterator[tuple[str, dict[str, str], Any]]:
        """Iterate ``(name, labels, instrument)`` in sorted order."""
        for (name, label_key), instrument in sorted(self._series.items()):
            yield name, dict(label_key), instrument

    def value(self, name: str, **labels: Any) -> Optional[float]:
        """The value of a counter/gauge series, or ``None`` if absent."""
        instrument = self._series.get((name, _label_key(labels)))
        if instrument is None:
            return None
        return getattr(instrument, "value", None)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other*'s series into this registry.

        Counters add, gauges take the other's value, histograms merge
        their summaries.  Used to combine the per-worker registries of a
        parallel study into one document.
        """
        for (name, label_key), instrument in sorted(other._series.items()):
            mine = self._get(type(instrument), name, dict(label_key))
            if isinstance(instrument, Counter):
                mine.inc(instrument.value)
            elif isinstance(instrument, Gauge):
                mine.set(instrument.value)
            else:
                mine.merge(instrument)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable dump of every series."""
        payload = []
        for name, labels, instrument in self.series():
            entry = {"name": name, "labels": labels}
            entry.update(instrument.to_dict())
            payload.append(entry)
        return {"format": "repro-metrics", "version": 1, "series": payload}

    def __len__(self) -> int:
        return len(self._series)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MetricsRegistry series={len(self._series)}>"


class MetricsSink:
    """A tracer sink that *counts* records instead of storing them.

    Every record increments ``registry.counter(record.kind, ...)``,
    labelled by the sink's bound labels plus the record's ``policy``
    field when present.  Attaching ``Tracer(MetricsSink(registry,
    config="H"))`` to a protocol therefore turns its decision stream
    into per-policy ``quorum.granted`` / ``quorum.denied`` /
    ``tiebreak.lexicographic`` / ``votes.carried`` tallies with O(1)
    memory — what ``--metrics-out`` reports.
    """

    def __init__(self, registry: MetricsRegistry, **labels: Any):
        self._registry = registry
        self._labels = {str(k): str(v) for k, v in labels.items()}

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry

    def emit(self, record: "TraceRecord") -> None:
        """Count *record* into its per-kind (and per-policy) series."""
        policy = record.fields.get("policy")
        if policy is None:
            self._registry.counter(record.kind, **self._labels).inc()
        else:
            self._registry.counter(
                record.kind, policy=policy, **self._labels
            ).inc()

    def close(self) -> None:
        """Nothing to release; tallies live in the registry."""
