"""Lazy, composable queries over structured trace records.

A :class:`RecordStream` wraps a *re-iterable* source of record
dictionaries (a JSONL file, a :class:`~repro.obs.tracer.MemorySink`, a
list) and stacks generator transforms on top of it: filter by kind,
policy, site or time window, project fields, limit, group and count.
Nothing is materialised until a terminal operation asks for it, and the
terminals themselves are single-pass — ``count()`` and
``group_count()`` hold one counter per distinct group, never the
records.  A million-record production trace therefore streams through
in bounded memory (``benchmarks/test_bench_trace_analysis.py`` holds
the line).

Usage::

    from repro.obs.analysis import RecordStream

    stream = RecordStream.from_jsonl("trace.jsonl")
    stream.of_kind("quorum.denied").count()
    stream.of_kind("quorum.denied").group_count("policy")
    stream.between(100.0, 200.0).of_kind("quorum.granted").first()

Streams are *re-iterable* when their source is (files are reopened per
pass), so one stream object supports several queries.
"""

from __future__ import annotations

import pathlib
from collections import Counter as _Counter
from typing import (
    Any,
    Callable,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from repro.errors import ConfigurationError

__all__ = ["RecordStream", "TraceSummary", "summarize"]

Record = Mapping[str, Any]
_MISSING = object()


class _JsonlSource:
    """A re-iterable view of a JSONL trace file (reopened per pass)."""

    __slots__ = ("_path",)

    def __init__(self, path: Union[str, pathlib.Path]):
        self._path = pathlib.Path(path)

    def __iter__(self) -> Iterator[Record]:
        from repro.obs.tracer import iter_jsonl

        return iter_jsonl(self._path)


class _Transformed:
    """A re-iterable applying one iterator transform to a source."""

    __slots__ = ("_source", "_transform")

    def __init__(
        self,
        source: Iterable[Record],
        transform: Callable[[Iterator[Record]], Iterator[Record]],
    ):
        self._source = source
        self._transform = transform

    def __iter__(self) -> Iterator[Record]:
        return self._transform(iter(self._source))


class RecordStream:
    """A lazy pipeline over trace records (dictionaries).

    Filter/projection methods return new streams without touching the
    source; terminal methods (:meth:`count`, :meth:`first`,
    :meth:`group_count`, :meth:`collect`) run one pass.
    """

    def __init__(self, source: Iterable[Record]):
        self._source = source

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_jsonl(cls, path: Union[str, pathlib.Path]) -> "RecordStream":
        """Stream a JSONL trace file (``.gz`` transparently decompressed).

        The file is read lazily and reopened on every pass, so the
        stream is re-iterable and never holds the trace in memory.
        """
        path = pathlib.Path(path)
        if not path.exists():
            raise ConfigurationError(f"no trace file {path}")
        return cls(_JsonlSource(path))

    @classmethod
    def from_sink(cls, sink: Any) -> "RecordStream":
        """Stream a :class:`~repro.obs.tracer.MemorySink`'s buffered
        records (or any object exposing ``records`` of
        :class:`~repro.obs.tracer.TraceRecord`), as dictionaries."""
        if not hasattr(sink, "records"):
            raise ConfigurationError(
                f"{type(sink).__name__} keeps no records; use a MemorySink"
            )
        return cls(_Transformed(
            _SinkSource(sink), lambda records: records
        ))

    def __iter__(self) -> Iterator[Record]:
        return iter(self._source)

    def _chain(
        self, transform: Callable[[Iterator[Record]], Iterator[Record]]
    ) -> "RecordStream":
        return RecordStream(_Transformed(self._source, transform))

    # ------------------------------------------------------------------
    # lazy transforms
    # ------------------------------------------------------------------
    def of_kind(self, *kinds: str) -> "RecordStream":
        """Records whose ``kind`` is one of *kinds* (prefix match when a
        kind ends with ``.``, so ``of_kind("quorum.")`` takes both
        grants and denials)."""
        if not kinds:
            raise ConfigurationError("of_kind needs at least one kind")
        exact = frozenset(k for k in kinds if not k.endswith("."))
        prefixes = tuple(k for k in kinds if k.endswith("."))

        def transform(records: Iterator[Record]) -> Iterator[Record]:
            for record in records:
                kind = record.get("kind")
                if kind in exact:
                    yield record
                elif prefixes and isinstance(kind, str) and \
                        kind.startswith(prefixes):
                    yield record

        return self._chain(transform)

    def where(
        self,
        predicate: Optional[Callable[[Record], bool]] = None,
        **equals: Any,
    ) -> "RecordStream":
        """Records satisfying *predicate* and every ``field=value`` pair.

        ``stream.where(policy="LDV", site=7)`` keeps records whose
        fields match exactly; a callable predicate covers everything
        else.
        """
        if predicate is None and not equals:
            raise ConfigurationError("where() needs a predicate or fields")

        def transform(records: Iterator[Record]) -> Iterator[Record]:
            for record in records:
                if predicate is not None and not predicate(record):
                    continue
                if all(record.get(k, _MISSING) == v for k, v in equals.items()):
                    yield record

        return self._chain(transform)

    def between(
        self, start: float = 0.0, end: float = float("inf")
    ) -> "RecordStream":
        """Records whose ``time`` lies in ``[start, end)``.

        Untimed records (``time`` absent) are dropped — they cannot be
        placed on the window.
        """
        if end < start:
            raise ConfigurationError(
                f"empty time window [{start}, {end})"
            )

        def transform(records: Iterator[Record]) -> Iterator[Record]:
            for record in records:
                time = record.get("time")
                if time is not None and start <= time < end:
                    yield record

        return self._chain(transform)

    def project(self, *fields: str) -> "RecordStream":
        """Keep only *fields* of every record (absent fields dropped)."""
        if not fields:
            raise ConfigurationError("project() needs at least one field")

        def transform(records: Iterator[Record]) -> Iterator[Record]:
            for record in records:
                yield {k: record[k] for k in fields if k in record}

        return self._chain(transform)

    def limit(self, n: int) -> "RecordStream":
        """At most the first *n* records."""
        if n < 0:
            raise ConfigurationError(f"limit must be >= 0, got {n}")

        def transform(records: Iterator[Record]) -> Iterator[Record]:
            for index, record in enumerate(records):
                if index >= n:
                    return
                yield record

        return self._chain(transform)

    # ------------------------------------------------------------------
    # terminals (single pass, bounded memory)
    # ------------------------------------------------------------------
    def count(self) -> int:
        """Number of records in the stream."""
        return sum(1 for _ in self)

    def first(self, default: Optional[Record] = None) -> Optional[Record]:
        """The first record, or *default* when the stream is empty."""
        return next(iter(self), default)

    def group_count(self, *fields: str) -> dict[Any, int]:
        """Count records per distinct value of *fields*.

        One field keys by its value; several key by the tuple.  Memory
        is proportional to the number of distinct groups, not records.
        """
        if not fields:
            raise ConfigurationError("group_count() needs at least one field")
        counts: _Counter = _Counter()
        for record in self:
            if len(fields) == 1:
                key = _hashable(record.get(fields[0]))
            else:
                key = tuple(_hashable(record.get(f)) for f in fields)
            counts[key] += 1
        return dict(counts)

    def collect(self) -> list[Record]:
        """Materialise the stream as a list (explicit; use sparingly)."""
        return list(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RecordStream source={type(self._source).__name__}>"


class _SinkSource:
    """Re-iterable dictionaries from a MemorySink-like object."""

    __slots__ = ("_sink",)

    def __init__(self, sink: Any):
        self._sink = sink

    def __iter__(self) -> Iterator[Record]:
        for record in self._sink.records:
            yield record.to_dict()


def _hashable(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(value))
    return value


# ----------------------------------------------------------------------
# one-pass trace summary
# ----------------------------------------------------------------------
class TraceSummary:
    """Aggregate facts about one trace, computed in a single pass.

    Attributes:
        total: Number of records seen.
        by_kind: Record count per ``kind``.
        by_policy: Record count per ``policy`` (records without a
            policy tag are not counted here).
        denials: Count of ``quorum.denied`` records.
        grants: Count of ``quorum.granted`` records.
        first_time / last_time: The timed span covered (``None`` when no
            record carries a time).
        sites: Distinct ``site`` values seen on ``op.*`` and
            ``scenario.step`` records.
    """

    def __init__(self) -> None:
        self.total = 0
        self.by_kind: dict[str, int] = {}
        self.by_policy: dict[str, int] = {}
        self.denials = 0
        self.grants = 0
        self.first_time: Optional[float] = None
        self.last_time: Optional[float] = None
        self.sites: set[int] = set()

    def add(self, record: Record) -> None:
        """Fold one record into the summary."""
        self.total += 1
        kind = record.get("kind", "?")
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        policy = record.get("policy")
        if policy is not None:
            self.by_policy[policy] = self.by_policy.get(policy, 0) + 1
        if kind == "quorum.denied":
            self.denials += 1
        elif kind == "quorum.granted":
            self.grants += 1
        time = record.get("time")
        if time is not None:
            if self.first_time is None or time < self.first_time:
                self.first_time = time
            if self.last_time is None or time > self.last_time:
                self.last_time = time
        if kind.startswith(("op.", "scenario.")):
            site = record.get("site")
            if isinstance(site, int):
                self.sites.add(site)

    @property
    def denial_rate(self) -> float:
        """Denied fraction of all quorum decisions (0.0 when none)."""
        decisions = self.grants + self.denials
        return self.denials / decisions if decisions else 0.0

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable document (the ``--json-out`` payload)."""
        return {
            "format": "repro-trace-summary",
            "version": 1,
            "total_records": self.total,
            "by_kind": dict(sorted(self.by_kind.items())),
            "by_policy": dict(sorted(self.by_policy.items())),
            "quorum": {
                "granted": self.grants,
                "denied": self.denials,
                "denial_rate": self.denial_rate,
            },
            "time_span": (
                None
                if self.first_time is None
                else {"first": self.first_time, "last": self.last_time}
            ),
            "sites": sorted(self.sites),
        }


def summarize(records: Iterable[Record]) -> TraceSummary:
    """One-pass :class:`TraceSummary` of *records* (any record iterable,
    typically a :class:`RecordStream`)."""
    summary = TraceSummary()
    for record in records:
        summary.add(record)
    return summary
