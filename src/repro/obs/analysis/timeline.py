"""Rebuilding per-protocol availability intervals from a decision trace.

The simulator's measurement model probes the quorum test after every
event, so the *last* ``quorum.granted`` / ``quorum.denied`` record at
each point of the trace is the file's availability verdict there (an
``evaluate`` sweep emits one record per partition block and stops on
the granting one, and the driver's final probe follows any
synchronisation traffic).  Folding those verdicts in order yields the
mounted/unmounted spans of the file — the quantity Table 2 integrates —
without ever materialising the trace.

Positions on the timeline come from the records' ``time`` field when
the trace carries one (``evaluate_policy`` stamps the simulation clock
via :meth:`repro.obs.tracer.Tracer.set_time`); untimed scenario traces
fall back to the script's step index, and bare decision streams to the
record sequence number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional

__all__ = ["Span", "PolicyTimeline", "build_timelines"]

Record = Mapping[str, Any]


@dataclass(frozen=True)
class Span:
    """One maximal interval of constant availability.

    ``start`` / ``end`` are timeline positions (simulated days for
    timed traces, step indices for scenario traces).
    """

    start: float
    end: float
    available: bool

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable representation."""
        return {
            "start": self.start,
            "end": self.end,
            "available": self.available,
        }


class PolicyTimeline:
    """The availability history of one policy, as alternating spans."""

    def __init__(self, policy: str, unit: str = "time"):
        self.policy = policy
        #: ``"time"`` (simulated days), ``"step"`` or ``"seq"``.
        self.unit = unit
        self.spans: list[Span] = []
        self._state: Optional[bool] = None
        self._since: Optional[float] = None
        self._pending_pos: Optional[float] = None
        self._pending_granted: Optional[bool] = None
        self._final_pos: Optional[float] = None
        self.decisions = 0

    # ------------------------------------------------------------------
    # streaming construction
    # ------------------------------------------------------------------
    def observe(self, position: float, granted: bool) -> None:
        """Fold one quorum verdict at *position* into the timeline.

        Verdicts at the same position overwrite each other — the last
        record at a position is the driver's final probe.
        """
        self.decisions += 1
        if self._pending_pos is not None and position != self._pending_pos:
            self._commit()
        self._pending_pos = position
        self._pending_granted = granted
        self._final_pos = position

    def _commit(self) -> None:
        assert self._pending_pos is not None
        granted = bool(self._pending_granted)
        if self._state is None:
            self._state = granted
            self._since = self._pending_pos
        elif granted != self._state:
            self.spans.append(
                Span(float(self._since), float(self._pending_pos), self._state)
            )
            self._state = granted
            self._since = self._pending_pos

    def finish(self) -> "PolicyTimeline":
        """Close the open span; call once after the last record."""
        if self._pending_pos is not None:
            self._commit()
            self._pending_pos = None
        if self._state is not None and self._since is not None:
            last_end = self.spans[-1].end if self.spans else self._since
            end = max(last_end, self._last_position())
            if end > self._since or not self.spans:
                self.spans.append(
                    Span(float(self._since), float(end), self._state)
                )
            self._state = None
        return self

    def _last_position(self) -> float:
        return float(self._final_pos if self._final_pos is not None else 0.0)

    # ------------------------------------------------------------------
    # measures
    # ------------------------------------------------------------------
    @property
    def start(self) -> float:
        return self.spans[0].start if self.spans else 0.0

    @property
    def end(self) -> float:
        return self.spans[-1].end if self.spans else 0.0

    @property
    def observed(self) -> float:
        """Length of the observed window."""
        return self.end - self.start

    def unavailable_time(self, since: float = 0.0) -> float:
        """Total unavailable span length at positions >= *since*."""
        total = 0.0
        for span in self.spans:
            if span.available:
                continue
            lo = max(span.start, since)
            if span.end > lo:
                total += span.end - lo
        return total

    def unavailability(self, since: float = 0.0) -> float:
        """Unavailable fraction of the observed window past *since* —
        the Table 2 quantity when the trace spans a full study replay."""
        lo = max(self.start, since)
        window = self.end - lo
        if window <= 0:
            return 0.0
        return self.unavailable_time(since) / window

    @property
    def down_spans(self) -> tuple[Span, ...]:
        return tuple(s for s in self.spans if not s.available)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable document."""
        return {
            "policy": self.policy,
            "unit": self.unit,
            "decisions": self.decisions,
            "observed": {"start": self.start, "end": self.end},
            "unavailable_time": self.unavailable_time(),
            "unavailability": self.unavailability(),
            "down_periods": len(self.down_spans),
            "spans": [span.to_dict() for span in self.spans],
        }


def build_timelines(records: Iterable[Record]) -> dict[str, PolicyTimeline]:
    """Reconstruct one :class:`PolicyTimeline` per policy from a record
    stream (single pass, memory bounded by span count, not trace size)."""
    timelines: dict[str, PolicyTimeline] = {}
    current_step: Optional[float] = None
    for record in records:
        kind = record.get("kind")
        if kind == "scenario.step":
            index = record.get("index")
            if index is not None:
                current_step = float(index)
            continue
        if kind not in ("quorum.granted", "quorum.denied"):
            continue
        time = record.get("time")
        if time is not None:
            position, unit = float(time), "time"
        elif current_step is not None:
            position, unit = current_step, "step"
        else:
            position, unit = float(record.get("seq", 0)), "seq"
        policy = str(record.get("policy", "?"))
        timeline = timelines.get(policy)
        if timeline is None:
            timeline = timelines[policy] = PolicyTimeline(policy, unit)
        timeline.observe(position, kind == "quorum.granted")
    for timeline in timelines.values():
        timeline.finish()
    return timelines
