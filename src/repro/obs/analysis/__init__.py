"""Streaming analytics over structured decision traces.

PR 1 made the simulator *emit* evidence (``quorum.granted`` /
``quorum.denied``, ``tiebreak.lexicographic``, ``votes.carried``,
``op.*``); this package *consumes* it, answering the paper's own
questions from a trace instead of from raw JSONL:

* :mod:`repro.obs.analysis.query` — a lazy record pipeline (filter /
  project / group / count) that never materialises the trace;
* :mod:`repro.obs.analysis.timeline` — mounted/unmounted availability
  spans per policy, the Table 2 quantity rebuilt from decisions;
* :mod:`repro.obs.analysis.audit` — every denial mapped back to the
  Algorithm-1 rule that failed, in the paper's vocabulary;
* :mod:`repro.obs.analysis.diff` — two protocols' traces over the same
  failure history aligned, with the first divergent decision explained
  from both sides.

Surfaced on the command line as ``repro analyze
{summary,timeline,audit,diff}``.
"""

from repro.obs.analysis.audit import (
    RULES,
    DenialExplanation,
    audit_trace,
    explain_denial,
    explain_grant,
    explain_violation,
    violations_in_trace,
)
from repro.obs.analysis.diff import (
    Decision,
    Divergence,
    TraceDiff,
    decisions,
    diff_traces,
)
from repro.obs.analysis.query import RecordStream, TraceSummary, summarize
from repro.obs.analysis.timeline import PolicyTimeline, Span, build_timelines

__all__ = [
    "Decision",
    "DenialExplanation",
    "Divergence",
    "PolicyTimeline",
    "RULES",
    "RecordStream",
    "Span",
    "TraceDiff",
    "TraceSummary",
    "audit_trace",
    "build_timelines",
    "decisions",
    "diff_traces",
    "explain_denial",
    "explain_grant",
    "explain_violation",
    "summarize",
    "violations_in_trace",
]
