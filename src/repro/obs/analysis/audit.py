"""Explaining quorum decisions in the paper's Algorithm-1 vocabulary.

Every ``quorum.denied`` record carries the raw ingredients of the
majority-partition test — the reachable set *R*, the counted set (*Q*,
or the claimable set *T* for topological protocols), and the previous
partition set *P*.  This module maps each denial back to the rule of
Algorithm 1 that failed, phrased the way Section 2 of the paper argues
its worked example:

* ``no-reachable-copy`` — the requester's partition block holds no copy
  at all;
* ``no-majority`` — fewer than half of the previous partition set could
  be counted (the B-restarts-alone denial of Section 2);
* ``lost-tiebreak`` — exactly half was counted, but the
  lexicographically greatest member of *P* sits on the other side
  (Jajodia's rule, LDV/ODV/TDV/OTDV);
* ``tie-unbroken`` — exactly half, under a protocol with no
  tie-breaking rule (plain DV denies both halves);
* ``stale-generation`` — the lineage guard of the topological
  protocols (docs/CORRECTNESS.md §4);
* ``no-static-majority`` — MCV-family static quorum misses;
* ``other`` — anything the classifier does not recognise (witness or
  weighted extensions with their own reasons).

For topological protocols the explainer also notes whether the segment
rule could have helped: when the counted set equals *Q* (no votes were
carried), no unreachable member of *P* shares a segment with a live
claimant — "no topological claim possible" in the paper's terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Optional

__all__ = [
    "DenialExplanation",
    "RULES",
    "audit_trace",
    "explain_denial",
    "explain_grant",
    "explain_violation",
    "violations_in_trace",
]

Record = Mapping[str, Any]

#: Rule slugs, in the order Algorithm 1 fails them.
RULES = (
    "no-reachable-copy",
    "no-majority",
    "lost-tiebreak",
    "tie-unbroken",
    "stale-generation",
    "no-static-majority",
    "other",
)

#: Protocols whose counted set is the claimable set T (Section 3).
_TOPOLOGICAL_POLICIES = frozenset({"TDV", "OTDV", "TDV+W"})


@dataclass(frozen=True)
class DenialExplanation:
    """One denied access, mapped to the Algorithm-1 rule that failed.

    Attributes:
        seq: The trace record's sequence number.
        time: Simulated time, when the trace carries one.
        policy: The deciding protocol.
        rule: One of :data:`RULES`.
        counted: The votes counted (*Q*, or *T* for topological
            protocols).
        partition_set: The previous partition set *P* (the denominator).
        needed: Votes that would have carried a strict majority.
        explanation: The denial in the paper's prose.
        topological_note: Why vote-claiming did not help (topological
            protocols only, empty otherwise).
        reason: The protocol's raw reason string, for cross-checking.
    """

    seq: int
    time: Optional[float]
    policy: str
    rule: str
    counted: tuple[int, ...]
    partition_set: tuple[int, ...]
    needed: int
    explanation: str
    topological_note: str = ""
    reason: str = ""

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable representation."""
        payload = {
            "seq": self.seq,
            "policy": self.policy,
            "rule": self.rule,
            "counted": list(self.counted),
            "partition_set": list(self.partition_set),
            "needed": self.needed,
            "explanation": self.explanation,
        }
        if self.time is not None:
            payload["time"] = self.time
        if self.topological_note:
            payload["topological_note"] = self.topological_note
        if self.reason:
            payload["reason"] = self.reason
        return payload


def _as_tuple(value: Any) -> tuple[int, ...]:
    if value is None:
        return ()
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(value))
    return tuple(value)


def _classify(reason: str) -> str:
    if reason.startswith("no copies reachable") or reason.startswith(
        "no partition block"
    ):
        return "no-reachable-copy"
    if reason.startswith("fewer than half"):
        return "no-majority"
    if reason.startswith("tie:"):
        if "no tie-breaking rule" in reason:
            return "tie-unbroken"
        return "lost-tiebreak"
    if reason.startswith("stale generation"):
        return "stale-generation"
    if "quorum is" in reason:
        return "no-static-majority"
    return "other"


def explain_denial(record: Record) -> DenialExplanation:
    """Map one ``quorum.denied`` record to the rule of Algorithm 1 that
    failed, with an explanation in the paper's vocabulary."""
    policy = str(record.get("policy", "?"))
    reason = str(record.get("reason", ""))
    counted = _as_tuple(record.get("counted"))
    partition_set = _as_tuple(record.get("partition_set"))
    rule = _classify(reason)
    size = len(partition_set)
    needed = size // 2 + 1
    p_text = "{" + ", ".join(map(str, partition_set)) + "}"

    if rule == "no-reachable-copy":
        explanation = (
            "no copy of the file is reachable from the requesting "
            "site's partition block; Algorithm 1 cannot even find R"
        )
    elif rule == "no-majority":
        explanation = (
            f"only {len(counted)} of the {size} members of the previous "
            f"partition set P = {p_text} could be counted — Algorithm 1 "
            f"requires more than half ({needed} votes) to proceed"
        )
    elif rule == "lost-tiebreak":
        explanation = (
            f"exactly half of P = {p_text} was counted "
            f"({len(counted)} of {size}), and the lexicographically "
            "greatest member of P is on the other side, so this half "
            "loses the tie (Jajodia's rule)"
        )
    elif rule == "tie-unbroken":
        explanation = (
            f"exactly half of P = {p_text} was counted "
            f"({len(counted)} of {size}); the protocol has no "
            "tie-breaking rule, so neither half may proceed (the "
            "blocking case LDV was invented to fix)"
        )
    elif rule == "stale-generation":
        explanation = (
            "a newer commit exists at an unreachable copy; the lineage "
            "guard refuses to anchor a quorum on a superseded "
            "generation (docs/CORRECTNESS.md §4)"
        )
    elif rule == "no-static-majority":
        explanation = (
            f"{len(counted)} reachable of {size} copies is below the "
            "static majority quorum; MCV never adapts the denominator"
        )
    else:
        explanation = reason or "denied for a protocol-specific reason"

    topological_note = ""
    if policy in _TOPOLOGICAL_POLICIES and rule in (
        "no-majority", "lost-tiebreak", "tie-unbroken",
    ):
        reachable = frozenset(_as_tuple(record.get("reachable")))
        carried = frozenset(counted) - reachable
        if carried:
            topological_note = (
                "even after carrying the votes of down segment-mates "
                f"{sorted(carried)}, the counted set falls short"
            )
        else:
            topological_note = (
                "no topological claim possible: no unreachable member "
                "of P shares a segment with a reachable current copy"
            )

    return DenialExplanation(
        seq=int(record.get("seq", -1)),
        time=record.get("time"),
        policy=policy,
        rule=rule,
        counted=counted,
        partition_set=partition_set,
        needed=needed,
        explanation=explanation,
        topological_note=topological_note,
        reason=reason,
    )


def explain_grant(record: Record) -> str:
    """A one-line Algorithm-1 reading of a ``quorum.granted`` record."""
    counted = _as_tuple(record.get("counted"))
    partition_set = _as_tuple(record.get("partition_set"))
    reachable = frozenset(_as_tuple(record.get("reachable")))
    size = len(partition_set)
    p_text = "{" + ", ".join(map(str, partition_set)) + "}"
    carried = sorted(frozenset(counted) - reachable)
    if size and 2 * len(counted) > size:
        text = (
            f"{len(counted)} of the {size} members of P = {p_text} "
            "counted — a strict majority"
        )
    elif size:
        text = (
            f"exactly half of P = {p_text} counted, holding the "
            "lexicographically greatest member — the tie is won"
        )
    else:
        text = "granted"
    if carried:
        text += (
            f"; the votes of down segment-mates {carried} were carried "
            "topologically"
        )
    return text


def audit_trace(records: Iterable[Record]) -> Iterator[DenialExplanation]:
    """Stream a :class:`DenialExplanation` for every ``quorum.denied``
    record of *records* (lazy; bounded memory on any trace size)."""
    for record in records:
        if record.get("kind") == "quorum.denied":
            yield explain_denial(record)


#: What each safety invariant protects, in the paper's terms.
_INVARIANT_STORIES = {
    "quorum-exclusion": (
        "mutual exclusion (Theorem 1): at most one partition block may "
        "hold a quorum at any instant"
    ),
    "divergent-commit": (
        "single-writer history: one operation number must commit one "
        "(version, partition-set) body"
    ),
    "non-monotone-state": (
        "replica monotonicity: committed (o, v) never moves backwards"
    ),
    "quorum-escape": (
        "commit containment: the new partition set is drawn from the "
        "quorum that granted the access"
    ),
    "carried-partitioned-vote": (
        "topological soundness: only votes of down (or same-block) "
        "segment-mates may be claimed"
    ),
    "divergent-state": (
        "generation agreement among current sites (Algorithm 1's "
        "precondition for the majority test)"
    ),
}


def explain_violation(record: Record) -> str:
    """A one-paragraph reading of an ``invariant.violation`` record:
    which safety property broke, the evidence, and how to replay it."""
    invariant = str(record.get("invariant", "?"))
    detail = str(record.get("detail", ""))
    story = _INVARIANT_STORIES.get(
        invariant, "a protocol safety invariant"
    )
    parts = [f"{invariant}: broke {story}."]
    if detail:
        parts.append(f"Evidence: {detail}.")
    policy = record.get("policy")
    seed = record.get("seed")
    step = record.get("step")
    where = []
    if policy is not None:
        where.append(f"policy {policy}")
    if step is not None:
        where.append(f"step {step}")
    if where:
        parts.append(f"Observed under {', '.join(where)}.")
    if seed is not None:
        parts.append(f"Replay with: repro chaos replay --seed {seed}"
                     + (f" --policy {policy}" if policy is not None else "")
                     + ".")
    return " ".join(parts)


def violations_in_trace(records: Iterable[Record]) -> Iterator[Record]:
    """Stream every ``invariant.violation`` record of *records* (the
    chaos monitor emits one just before it aborts the run)."""
    for record in records:
        if record.get("kind") == "invariant.violation":
            yield record
