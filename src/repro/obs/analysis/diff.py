"""Diffing two decision traces of different protocols.

The paper's whole argument is comparative: the *same* failure history
and the *same* access stream, replayed under two protocols, and the
availability difference traced back to individual quorum decisions
(the Section 2 worked example; the TOB-SVD line of related work argues
safety exactly this way).  This module aligns two traces on their
shared decision points — the scenario step index for scripted replays,
the simulated time for study traces — and reports the first point
where the protocols disagree, with both sides' Algorithm-1 reasoning.

Both traces stream: alignment is a merge-join over two lazy decision
iterators, so million-record traces diff in bounded memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Optional

from repro.obs.analysis.audit import explain_denial, explain_grant

__all__ = ["Decision", "Divergence", "TraceDiff", "decisions", "diff_traces"]

Record = Mapping[str, Any]

#: Keep at most this many divergence reports; beyond it, only count.
MAX_REPORTED_DIVERGENCES = 32


@dataclass
class Decision:
    """The final quorum verdict at one decision point of a trace.

    A decision point is a position on the trace's timeline (scenario
    step index, simulated time, or sequence number); the *last*
    ``quorum.*`` record there is the verdict the driver acted on.
    ``tiebreak`` / ``carried`` hold the companion records emitted for
    that same verdict, when the rules fired.
    """

    position: float
    policy: str
    granted: bool
    record: Record
    action: str = ""
    tiebreak: Optional[Record] = None
    carried: Optional[Record] = None

    def explain(self) -> str:
        """This verdict in the paper's Algorithm-1 vocabulary."""
        if self.granted:
            return explain_grant(self.record)
        return explain_denial(self.record).explanation

    def rule(self) -> str:
        """The failed Algorithm-1 rule (denials; ``""`` for grants)."""
        if self.granted:
            return ""
        return explain_denial(self.record).rule

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable representation."""
        payload: dict[str, Any] = {
            "position": self.position,
            "policy": self.policy,
            "granted": self.granted,
            "explanation": self.explain(),
        }
        if not self.granted:
            payload["rule"] = self.rule()
        if self.action:
            payload["action"] = self.action
        if self.carried is not None:
            payload["votes_carried"] = list(self.carried.get("carried", ()))
        if self.tiebreak is not None:
            payload["tiebreak_winner"] = self.tiebreak.get("winner")
        return payload


def _describe_step(record: Record) -> str:
    action = str(record.get("action", "?"))
    index = record.get("index")
    text = f"step {index}: {action}" if index is not None else action
    site = record.get("site")
    if site is not None:
        text += f" at site {site}"
        peer = record.get("peer")
        if peer is not None:
            text += f"-{peer}"
    return text


def decisions(records: Iterable[Record]) -> Iterator[Decision]:
    """Collapse a record stream into its decision points, lazily.

    Multiple ``quorum.*`` records at one position (an ``evaluate``
    sweep over blocks, synchronisation traffic before the final probe)
    collapse to the last verdict there, exactly as the driver saw it.
    """
    current_step: Optional[float] = None
    current_action = ""
    pending: Optional[Decision] = None
    for record in records:
        kind = record.get("kind")
        if kind == "scenario.step":
            index = record.get("index")
            if index is not None:
                current_step = float(index)
            current_action = _describe_step(record)
            continue
        if kind == "tiebreak.lexicographic":
            if pending is not None and pending.tiebreak is None:
                pending.tiebreak = record
            continue
        if kind == "votes.carried":
            if pending is not None and pending.carried is None:
                pending.carried = record
            continue
        if kind not in ("quorum.granted", "quorum.denied"):
            continue
        time = record.get("time")
        if time is not None:
            position = float(time)
        elif current_step is not None:
            position = current_step
        else:
            position = float(record.get("seq", 0))
        if pending is not None and position != pending.position:
            yield pending
            pending = None
        pending = Decision(
            position=position,
            policy=str(record.get("policy", "?")),
            granted=(kind == "quorum.granted"),
            record=record,
            action=current_action,
        )
    if pending is not None:
        yield pending


@dataclass(frozen=True)
class Divergence:
    """One decision point where the two protocols disagreed."""

    position: float
    action: str
    a: Decision
    b: Decision

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable representation."""
        return {
            "position": self.position,
            "action": self.action,
            "a": self.a.to_dict(),
            "b": self.b.to_dict(),
        }


@dataclass
class TraceDiff:
    """The alignment of two decision traces.

    Attributes:
        policy_a / policy_b: The two protocols (first policy seen on
            each side).
        aligned: Decision points present in both traces.
        divergent: Aligned points where the grant verdicts differ.
        first_divergence: The earliest disagreement, with both sides'
            Algorithm-1 reasoning (``None`` when the traces agree).
        divergences: Up to :data:`MAX_REPORTED_DIVERGENCES` reports, in
            order.
        a_granted_b_denied / b_granted_a_denied: Direction tallies.
        only_a / only_b: Decision points present on one side only
            (0 when both traces replay the same script).
    """

    policy_a: str = "?"
    policy_b: str = "?"
    aligned: int = 0
    divergent: int = 0
    first_divergence: Optional[Divergence] = None
    divergences: list[Divergence] = field(default_factory=list)
    a_granted_b_denied: int = 0
    b_granted_a_denied: int = 0
    only_a: int = 0
    only_b: int = 0

    @property
    def agreements(self) -> int:
        return self.aligned - self.divergent

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable document (the ``--json-out`` payload)."""
        return {
            "format": "repro-trace-diff",
            "version": 1,
            "policies": [self.policy_a, self.policy_b],
            "aligned_decisions": self.aligned,
            "agreements": self.agreements,
            "divergent": self.divergent,
            "a_granted_b_denied": self.a_granted_b_denied,
            "b_granted_a_denied": self.b_granted_a_denied,
            "only_a": self.only_a,
            "only_b": self.only_b,
            "first_divergence": (
                None
                if self.first_divergence is None
                else self.first_divergence.to_dict()
            ),
            "divergences": [d.to_dict() for d in self.divergences],
        }


def diff_traces(
    records_a: Iterable[Record], records_b: Iterable[Record]
) -> TraceDiff:
    """Align two traces on their decision points and diff the verdicts.

    Single streaming pass over both inputs (merge-join on position);
    memory is bounded by the number of *divergences kept*, never the
    trace length.
    """
    diff = TraceDiff()
    it_a = decisions(records_a)
    it_b = decisions(records_b)
    a = next(it_a, None)
    b = next(it_b, None)
    while a is not None and b is not None:
        if diff.policy_a == "?":
            diff.policy_a = a.policy
        if diff.policy_b == "?":
            diff.policy_b = b.policy
        if a.position == b.position:
            diff.aligned += 1
            if a.granted != b.granted:
                diff.divergent += 1
                if a.granted:
                    diff.a_granted_b_denied += 1
                else:
                    diff.b_granted_a_denied += 1
                if len(diff.divergences) < MAX_REPORTED_DIVERGENCES:
                    divergence = Divergence(
                        position=a.position,
                        action=a.action or b.action,
                        a=a,
                        b=b,
                    )
                    diff.divergences.append(divergence)
                    if diff.first_divergence is None:
                        diff.first_divergence = divergence
            a = next(it_a, None)
            b = next(it_b, None)
        elif a.position < b.position:
            diff.only_a += 1
            a = next(it_a, None)
        else:
            diff.only_b += 1
            b = next(it_b, None)
    while a is not None:
        diff.only_a += 1
        a = next(it_a, None)
    while b is not None:
        diff.only_b += 1
        b = next(it_b, None)
    return diff
