"""Structured event tracing.

A :class:`Tracer` turns interesting moments — an event firing in the
kernel, a quorum test granting or denying an access, a lexicographic
tie-break — into :class:`TraceRecord` objects and hands them to a
pluggable sink.  Three sinks cover the useful space:

* :class:`NullSink` drops everything (the default; instrumented code
  pays only a ``tracer is not None`` check when no tracer is attached,
  and one extra call when a null tracer is);
* :class:`MemorySink` keeps the last *capacity* records in a ring
  buffer, for tests and interactive debugging;
* :class:`JsonlSink` appends one JSON object per record to a file —
  the format ``python -m repro trace <scenario> --out trace.jsonl``
  emits and the docs' walkthroughs read back.

Records carry a monotonically increasing sequence number, an event
``kind`` (dotted, e.g. ``"quorum.granted"``), an optional simulated
time, and free-form ``fields``.  Sets are serialised as sorted lists so
JSONL output is deterministic.
"""

from __future__ import annotations

import collections
import io
import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Optional, Union

__all__ = [
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "TraceRecord",
    "Tracer",
    "read_jsonl",
]


@dataclass(frozen=True)
class TraceRecord:
    """One structured trace event.

    Attributes:
        seq: Position in the tracer's emission order (0-based).
        kind: Dotted event name, e.g. ``"event.fired"``.
        time: Simulated time of the event, when one applies.
        fields: Event-specific payload (JSON-serialisable values).
    """

    seq: int
    kind: str
    time: Optional[float] = None
    fields: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable representation (sets become sorted lists)."""
        payload: dict[str, Any] = {"seq": self.seq, "kind": self.kind}
        if self.time is not None:
            payload["time"] = self.time
        for key, value in self.fields.items():
            payload[key] = _jsonable(value)
        return payload


def _jsonable(value: Any) -> Any:
    if isinstance(value, (frozenset, set)):
        return sorted(value)
    if isinstance(value, tuple):
        return list(value)
    return value


class NullSink:
    """Discards every record."""

    def emit(self, record: TraceRecord) -> None:
        """Drop *record*."""

    def close(self) -> None:
        """Nothing to release."""


class MemorySink:
    """Keeps the most recent *capacity* records in a ring buffer."""

    def __init__(self, capacity: int = 10_000):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._buffer: collections.deque[TraceRecord] = collections.deque(
            maxlen=capacity
        )
        self.emitted = 0

    def emit(self, record: TraceRecord) -> None:
        """Append *record*, evicting the oldest when full."""
        self._buffer.append(record)
        self.emitted += 1

    def close(self) -> None:
        """Nothing to release; the buffer stays readable."""

    @property
    def records(self) -> tuple[TraceRecord, ...]:
        """The buffered records, oldest first."""
        return tuple(self._buffer)

    def of_kind(self, kind: str) -> tuple[TraceRecord, ...]:
        """Buffered records whose kind equals *kind*."""
        return tuple(r for r in self._buffer if r.kind == kind)

    def clear(self) -> None:
        """Empty the buffer (the ``emitted`` count is kept)."""
        self._buffer.clear()


class JsonlSink:
    """Writes one JSON object per record to a file or stream."""

    def __init__(self, destination: Union[str, pathlib.Path, io.TextIOBase]):
        if isinstance(destination, (str, pathlib.Path)):
            self._handle: Any = open(destination, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = destination
            self._owns_handle = False
        self.emitted = 0

    def emit(self, record: TraceRecord) -> None:
        """Write *record* as one JSON line."""
        json.dump(record.to_dict(), self._handle, separators=(",", ":"))
        self._handle.write("\n")
        self.emitted += 1

    def close(self) -> None:
        """Close the file if this sink opened it (borrowed streams stay
        open)."""
        if self._owns_handle and not self._handle.closed:
            self._handle.close()


def read_jsonl(path: Union[str, pathlib.Path]) -> list[dict[str, Any]]:
    """Parse a JSONL trace file back into a list of dictionaries."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


class Tracer:
    """Hands structured records to a sink, with bound context fields.

    Instrumented code holds ``tracer = None`` by default and guards every
    emission with ``if tracer is not None`` — the disabled path costs one
    attribute check.  :meth:`bind` returns a child tracer that stamps
    extra fields (e.g. ``policy="LDV", config="H"``) onto every record,
    sharing the parent's sink and sequence counter.

    Usage::

        tracer = Tracer(JsonlSink("trace.jsonl"))
        tracer.record("quorum.granted", time=3.5, site=1, operation=4)
        tracer.close()
    """

    __slots__ = ("_sink", "_context", "_seq_box")

    def __init__(self, sink: Any = None, **context: Any):
        self._sink = sink if sink is not None else NullSink()
        self._context = dict(context)
        self._seq_box = [0]

    @property
    def sink(self) -> Any:
        return self._sink

    @property
    def context(self) -> Mapping[str, Any]:
        return dict(self._context)

    def bind(self, **context: Any) -> "Tracer":
        """A child tracer stamping *context* onto every record."""
        child = Tracer.__new__(Tracer)
        child._sink = self._sink
        child._context = {**self._context, **context}
        child._seq_box = self._seq_box
        return child

    def record(
        self, kind: str, time: Optional[float] = None, **fields: Any
    ) -> None:
        """Emit one record of *kind* at simulated *time* (optional)."""
        seq = self._seq_box[0]
        self._seq_box[0] = seq + 1
        if self._context:
            merged = {**self._context, **fields}
        else:
            merged = fields
        self._sink.emit(TraceRecord(seq=seq, kind=kind, time=time, fields=merged))

    def close(self) -> None:
        """Flush and close the underlying sink."""
        self._sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __iter__(self) -> Iterator[TraceRecord]:
        """Iterate buffered records when the sink keeps them in memory."""
        records = getattr(self._sink, "records", ())
        return iter(records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Tracer sink={type(self._sink).__name__} seq={self._seq_box[0]}>"
