"""Structured event tracing.

A :class:`Tracer` turns interesting moments — an event firing in the
kernel, a quorum test granting or denying an access, a lexicographic
tie-break — into :class:`TraceRecord` objects and hands them to a
pluggable sink.  Three sinks cover the useful space:

* :class:`NullSink` drops everything (the default; instrumented code
  pays only a ``tracer is not None`` check when no tracer is attached,
  and one extra call when a null tracer is);
* :class:`MemorySink` keeps the last *capacity* records in a ring
  buffer, for tests and interactive debugging;
* :class:`JsonlSink` appends one JSON object per record to a file —
  the format ``python -m repro trace <scenario> --out trace.jsonl``
  emits and the docs' walkthroughs read back.  Paths ending in ``.gz``
  are gzip-compressed transparently (and decompressed by
  :func:`iter_jsonl` / :func:`read_jsonl`).

Records carry a monotonically increasing sequence number, an event
``kind`` (dotted, e.g. ``"quorum.granted"``), an optional simulated
time, and free-form ``fields``.  Sets are serialised as sorted lists so
JSONL output is deterministic.
"""

from __future__ import annotations

import collections
import gzip
import io
import json
import pathlib
import warnings
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Optional, Union

__all__ = [
    "FanoutSink",
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "TraceRecord",
    "Tracer",
    "iter_jsonl",
    "read_jsonl",
]


@dataclass(frozen=True)
class TraceRecord:
    """One structured trace event.

    Attributes:
        seq: Position in the tracer's emission order (0-based).
        kind: Dotted event name, e.g. ``"event.fired"``.
        time: Simulated time of the event, when one applies.
        fields: Event-specific payload (JSON-serialisable values).
    """

    seq: int
    kind: str
    time: Optional[float] = None
    fields: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable representation (sets become sorted lists)."""
        payload: dict[str, Any] = {"seq": self.seq, "kind": self.kind}
        if self.time is not None:
            payload["time"] = self.time
        for key, value in self.fields.items():
            payload[key] = _jsonable(value)
        return payload


def _jsonable(value: Any) -> Any:
    if isinstance(value, (frozenset, set)):
        return sorted(value)
    if isinstance(value, tuple):
        return list(value)
    return value


class NullSink:
    """Discards every record."""

    def emit(self, record: TraceRecord) -> None:
        """Drop *record*."""

    def close(self) -> None:
        """Nothing to release."""


class MemorySink:
    """Keeps the most recent *capacity* records in a ring buffer."""

    def __init__(self, capacity: int = 10_000):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._buffer: collections.deque[TraceRecord] = collections.deque(
            maxlen=capacity
        )
        self.emitted = 0

    def emit(self, record: TraceRecord) -> None:
        """Append *record*, evicting the oldest when full."""
        self._buffer.append(record)
        self.emitted += 1

    def close(self) -> None:
        """Nothing to release; the buffer stays readable."""

    @property
    def records(self) -> tuple[TraceRecord, ...]:
        """The buffered records, oldest first."""
        return tuple(self._buffer)

    def of_kind(self, kind: str) -> tuple[TraceRecord, ...]:
        """Buffered records whose kind equals *kind*."""
        return tuple(r for r in self._buffer if r.kind == kind)

    def clear(self) -> None:
        """Empty the buffer (the ``emitted`` count is kept)."""
        self._buffer.clear()


class FanoutSink:
    """Forwards every record to several sinks (file + memory + ...)."""

    def __init__(self, sinks: Iterable[Any]):
        self._sinks = tuple(sinks)

    @property
    def sinks(self) -> tuple[Any, ...]:
        """The receiving sinks, in delivery order."""
        return self._sinks

    def emit(self, record: TraceRecord) -> None:
        """Deliver *record* to every sink, in order."""
        for sink in self._sinks:
            sink.emit(record)

    def close(self) -> None:
        """Close every sink, in order."""
        for sink in self._sinks:
            sink.close()


def _is_gzip_path(path: Union[str, pathlib.Path]) -> bool:
    return str(path).endswith(".gz")


class JsonlSink:
    """Writes one JSON object per record to a file or stream.

    Paths ending in ``.gz`` are written gzip-compressed.  The sink is a
    context manager; on exit (or :meth:`close`) the destination is
    flushed even when it is a borrowed stream the sink will not close —
    ``repro trace`` output is therefore never left partially buffered.

    ``fsync_every=N`` flushes *and* fsyncs the file every N records, so
    an artifact being written by an interrupted run (a chaos replay
    killed mid-violation, a crashed study) survives on disk up to the
    last synced record — :func:`iter_jsonl` then tolerates the one
    possibly truncated final line.  Off by default: durability costs
    syscalls the hot tracing path must not pay.
    """

    def __init__(self, destination: Union[str, pathlib.Path, io.TextIOBase],
                 fsync_every: Optional[int] = None):
        if fsync_every is not None and fsync_every < 1:
            raise ValueError(
                f"fsync_every must be >= 1, got {fsync_every}"
            )
        if isinstance(destination, (str, pathlib.Path)):
            if _is_gzip_path(destination):
                self._handle: Any = gzip.open(
                    destination, "wt", encoding="utf-8"
                )
            else:
                self._handle = open(destination, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = destination
            self._owns_handle = False
        self._fsync_every = fsync_every
        self.emitted = 0

    def emit(self, record: TraceRecord) -> None:
        """Write *record* as one JSON line."""
        json.dump(record.to_dict(), self._handle, separators=(",", ":"))
        self._handle.write("\n")
        self.emitted += 1
        if self._fsync_every is not None and \
                self.emitted % self._fsync_every == 0:
            self._sync()

    def _sync(self) -> None:
        """Flush and, when the handle has a file descriptor, fsync it."""
        import os

        self._handle.flush()
        try:
            os.fsync(self._handle.fileno())
        except (AttributeError, OSError, io.UnsupportedOperation):
            pass  # in-memory streams and pipes have nothing to sync

    def close(self) -> None:
        """Flush, then close the file if this sink opened it.

        Borrowed streams are flushed but stay open, so interleaving with
        other writers (stdout) keeps working.
        """
        if getattr(self._handle, "closed", False):
            return
        try:
            self._handle.flush()
        except (OSError, ValueError):  # pragma: no cover - defensive
            pass
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def iter_jsonl(
    path: Union[str, pathlib.Path]
) -> Iterator[dict[str, Any]]:
    """Stream a JSONL trace file as dictionaries, one record at a time.

    Never materialises the whole trace — million-record files cost one
    record of memory.  ``.gz`` paths are decompressed transparently.  A
    truncated final line (the signature of an interrupted run) produces
    a :class:`UserWarning` and ends the stream instead of raising; a
    malformed line *followed by further records* still raises
    ``json.JSONDecodeError``, because that is corruption, not
    truncation.
    """
    opener = gzip.open if _is_gzip_path(path) else open
    with opener(path, "rt", encoding="utf-8") as handle:
        pending: Optional[tuple[int, str]] = None
        for number, line in enumerate(handle, start=1):
            if pending is not None:
                yield _parse_line(*pending, final=False)
                pending = None
            line = line.strip()
            if line:
                pending = (number, line)
        if pending is not None:
            record = _parse_line(*pending, final=True)
            if record is not None:
                yield record


def _parse_line(
    number: int, line: str, final: bool
) -> Optional[dict[str, Any]]:
    try:
        return json.loads(line)
    except json.JSONDecodeError:
        if not final:
            raise
        warnings.warn(
            f"discarding truncated final line {number} of JSONL trace "
            "(interrupted run?)",
            UserWarning,
            stacklevel=3,
        )
        return None


def read_jsonl(path: Union[str, pathlib.Path]) -> list[dict[str, Any]]:
    """Parse a JSONL trace file back into a list of dictionaries.

    Convenience wrapper over :func:`iter_jsonl` (same gzip and
    truncated-final-line handling); prefer the iterator for large
    traces.
    """
    return list(iter_jsonl(path))


class Tracer:
    """Hands structured records to a sink, with bound context fields.

    Instrumented code holds ``tracer = None`` by default and guards every
    emission with ``if tracer is not None`` — the disabled path costs one
    attribute check.  :meth:`bind` returns a child tracer that stamps
    extra fields (e.g. ``policy="LDV", config="H"``) onto every record,
    sharing the parent's sink and sequence counter.

    A tracer also carries a *clock*: drivers that know the simulated
    time call :meth:`set_time` as they advance, and records emitted
    without an explicit ``time`` are stamped with the clock's value.
    Instrumented code (protocols) stays clock-ignorant while its
    decision records still land on the simulation timeline — which is
    what lets :mod:`repro.obs.analysis.timeline` rebuild availability
    intervals from a trace.

    Usage::

        tracer = Tracer(JsonlSink("trace.jsonl"))
        tracer.record("quorum.granted", time=3.5, site=1, operation=4)
        tracer.close()
    """

    __slots__ = ("_sink", "_context", "_seq_box", "_time_box")

    def __init__(self, sink: Any = None, **context: Any):
        self._sink = sink if sink is not None else NullSink()
        self._context = dict(context)
        self._seq_box = [0]
        self._time_box: list[Optional[float]] = [None]

    @property
    def sink(self) -> Any:
        return self._sink

    @property
    def context(self) -> Mapping[str, Any]:
        return dict(self._context)

    def bind(self, **context: Any) -> "Tracer":
        """A child tracer stamping *context* onto every record."""
        child = Tracer.__new__(Tracer)
        child._sink = self._sink
        child._context = {**self._context, **context}
        child._seq_box = self._seq_box
        child._time_box = self._time_box
        return child

    def set_time(self, time: Optional[float]) -> None:
        """Advance the shared clock (``None`` stops time-stamping).

        The clock is shared with every :meth:`bind` child, so one
        driver-side call per event stamps all instrumented layers.
        """
        self._time_box[0] = time

    def record(
        self, kind: str, time: Optional[float] = None, **fields: Any
    ) -> None:
        """Emit one record of *kind* at simulated *time* (optional).

        Without an explicit *time*, the shared clock's value (see
        :meth:`set_time`) is used when one has been set.
        """
        seq = self._seq_box[0]
        self._seq_box[0] = seq + 1
        if time is None:
            time = self._time_box[0]
        if self._context:
            merged = {**self._context, **fields}
        else:
            merged = fields
        self._sink.emit(TraceRecord(seq=seq, kind=kind, time=time, fields=merged))

    def close(self) -> None:
        """Flush and close the underlying sink."""
        self._sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __iter__(self) -> Iterator[TraceRecord]:
        """Iterate buffered records when the sink keeps them in memory."""
        records = getattr(self._sink, "records", ())
        return iter(records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Tracer sink={type(self._sink).__name__} seq={self._seq_box[0]}>"
