"""Command-line interface: ``repro <command>`` or ``python -m repro``.

Commands regenerate everything in the paper from the terminal:

* ``repro testbed``   — Figure 8 (topology) and Table 1 (site data);
* ``repro table2``    — Table 2 (unavailabilities), paper vs measured;
* ``repro table3``    — Table 3 (mean unavailable-period durations);
* ``repro study``     — both tables from one simulation;
* ``repro sweep``     — the access-rate ablation (experiment X1);
* ``repro placement`` — the copy-placement study (experiment X5);
* ``repro trace``     — per-site availability of a generated trace, or,
  given a scenario file, a full JSONL decision trace of its replay;
* ``repro analyze``   — streaming analytics over a decision trace:
  ``summary`` (record counts), ``timeline`` (availability spans),
  ``audit`` (every denial mapped to its Algorithm-1 rule) and ``diff``
  (two protocols' decisions over the same history, first divergence
  explained);
* ``repro chaos``     — fuzz the message-passing engine with seeded
  perturbations while the safety-invariant monitor watches every trace
  record: ``run`` (one schedule), ``sweep`` (many seeds x all
  protocols), ``replay`` (reproduce a violating schedule
  deterministically);
* ``repro profile``   — profile a ``scenario``, a (small) ``study`` or a
  ``chaos`` run: top-N hot functions, flamegraph-compatible collapsed
  stacks (``--collapsed``), deterministic phase timers and kernel
  hot-path counters, via cProfile or a signal-based stack sampler;
* ``repro bench``     — the benchmark trajectory: ``record`` appends a
  ``BENCH_<n>.json`` point (quick in-process subset, or ingest a
  pytest-benchmark JSON), ``compare`` diffs two points with noise-aware
  thresholds and exits 1 on a regression (the CI gate);
* ``repro runs``      — the content-addressed run registry: ``list``,
  ``show``, ``gc``, and ``diff``, which aligns two recorded studies
  cell by cell and exits 1 on an availability regression beyond noise;
* ``repro report``    — render recorded runs as one self-contained
  HTML file (tables vs paper, availability timelines, phase
  breakdowns, chaos verdicts) that opens offline;
* ``repro serve``     — the registry as a web service: a paginated run
  index over pregenerated summary cards, per-run pages reusing the
  report renderer, noise-gated cross-run diff views, and a versioned
  JSON API (``/api/runs``, ``/healthz``, ``/metricsz``), all stdlib
  WSGI with request telemetry recorded as ``serve.*`` metrics;
  ``repro serve warm`` pregenerates the summary cache and exits;
* ``repro demo``      — the engine walkthrough from Section 2's example.

Observability: a global ``--log-level`` flag configures the package
logger; ``study``/``table2``/``table3`` and ``validate`` accept
``--metrics-out PATH`` to write a run manifest plus metrics dump, and
the study commands accept ``--progress`` for a live progress line (see
:mod:`repro.obs`).  The study, trace-scenario, chaos, profile and
bench-record commands all accept ``--record`` to store the run (with
its manifest, lineage and artifacts) in the registry under
``--runs-dir`` (default ``.repro/runs``, or ``REPRO_RUNS_DIR``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.registry import PAPER_POLICIES, available_policies
from repro.errors import ConfigurationError, ReproError
from repro.experiments.configs import CONFIGURATIONS, configuration
from repro.experiments.runner import StudyParameters, run_study
from repro.experiments.sweep import access_rate_sweep, placement_sweep
from repro.experiments.tables import (
    PAPER_TABLE_2,
    PAPER_TABLE_3,
    format_comparison,
    format_intervals,
    format_table2,
    format_table3,
)
from repro.experiments.testbed import render_testbed
from repro.failures.profiles import testbed_profiles
from repro.failures.trace import generate_trace

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Paris & Long, 'Efficient Dynamic Voting "
            "Algorithms' (ICDE 1988)."
        ),
    )
    from repro.obs.logging import LOG_LEVELS

    parser.add_argument(
        "--log-level", default=None, choices=sorted(LOG_LEVELS),
        help="configure the 'repro' logger on stderr (default: off)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_sim_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--horizon", type=float, default=None,
            help="simulated days (default 40000, or REPRO_SIM_DAYS)",
        )
        p.add_argument("--seed", type=int, default=1988, help="master RNG seed")
        p.add_argument("--warmup", type=float, default=360.0,
                       help="days discarded before measurement")
        p.add_argument("--batches", type=int, default=20,
                       help="batch count for confidence intervals")
        p.add_argument("--access-rate", type=float, default=1.0,
                       help="file accesses per day (optimistic policies)")

    def add_record_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--record", action="store_true",
                       help="store this run (manifest, lineage, "
                            "artifacts) in the content-addressed run "
                            "registry")
        p.add_argument("--runs-dir", metavar="DIR", default=None,
                       help="registry root (default .repro/runs, or "
                            "REPRO_RUNS_DIR)")

    sub.add_parser("testbed", help="print the Figure 8 network and Table 1")

    for name, help_text in (
        ("table2", "regenerate Table 2 (unavailabilities)"),
        ("table3", "regenerate Table 3 (mean unavailable periods)"),
        ("study", "regenerate both tables from one simulation"),
    ):
        p = sub.add_parser(name, help=help_text)
        add_sim_args(p)
        p.add_argument("--no-compare", action="store_true",
                       help="print only measured values, not paper-vs-ours")
        p.add_argument("--intervals", action="store_true",
                       help="also print 95%% batch-means confidence intervals")
        p.add_argument("--jobs", type=int, default=None,
                       help="evaluate cells in N parallel processes")
        p.add_argument("--metrics-out", metavar="PATH", default=None,
                       help="write a run manifest + metrics JSON "
                            "(per-cell wall-clock, quorum decision tallies)")
        p.add_argument("--progress", action="store_true",
                       help="print a live progress line (cells done, "
                            "events/s, ETA) to stderr as cells complete")
        p.add_argument("--live", action="store_true",
                       help="stream telemetry (cell completions, phases, "
                            "resource samples) to a live session under "
                            "the run registry; follow it with 'repro "
                            "watch' or the /live page of 'repro serve'")
        add_record_args(p)

    p = sub.add_parser("sweep", help="access-rate ablation for ODV/OTDV")
    add_sim_args(p)
    p.add_argument("--config", default="F", choices=sorted(CONFIGURATIONS),
                   help="configuration to sweep (default F)")
    p.add_argument("--rates", default="0.1,0.5,1,2,5,10,50",
                   help="comma-separated accesses per day")

    p = sub.add_parser("placement", help="rank every copy placement")
    add_sim_args(p)
    p.add_argument("--copies", type=int, default=3, help="copies to place")
    p.add_argument("--policy", default="TDV",
                   choices=sorted(available_policies()))
    p.add_argument("--top", type=int, default=10, help="rows to print")

    p = sub.add_parser(
        "trace",
        help="per-site availability of a trace, or a JSONL decision "
             "trace of a scenario replay",
    )
    add_sim_args(p)
    p.add_argument("scenario", nargs="?", default=None,
                   help="repro-scenario JSON file: replay it with full "
                        "structured tracing instead of sampling a trace")
    p.add_argument("--save", metavar="PATH", default=None,
                   help="also write the generated trace to a JSON file")
    p.add_argument("--out", metavar="PATH", default=None,
                   help="JSONL destination for the scenario decision "
                        "trace (default: stdout)")
    add_record_args(p)

    p = sub.add_parser("overhead", help="per-policy message bill")
    add_sim_args(p)
    p.add_argument("--config", default="F", choices=sorted(CONFIGURATIONS),
                   help="configuration to replay (default F)")
    p.add_argument("--days", type=float, default=365.0,
                   help="days of history to replay through the engine")

    p = sub.add_parser(
        "validate",
        help="self-check: simulator vs exact analytic availability",
    )
    add_sim_args(p)
    p.add_argument("--metrics-out", metavar="PATH", default=None,
                   help="write a run manifest + metrics JSON for the "
                        "validation checks")

    p = sub.add_parser("scenario", help="run a JSON scenario file")
    p.add_argument("file", help="path to a repro-scenario JSON document")

    p = sub.add_parser(
        "analyze",
        help="streaming analytics over a JSONL decision trace",
    )
    asub = p.add_subparsers(dest="analyze_command", required=True)

    def add_json_out(q: argparse.ArgumentParser) -> None:
        q.add_argument("--json-out", metavar="PATH", default=None,
                       help="also write the full result as a JSON document")

    q = asub.add_parser(
        "summary",
        help="record counts, quorum decision tallies, covered span",
    )
    q.add_argument("trace", help="JSONL decision trace (.jsonl or .jsonl.gz)")
    add_json_out(q)

    q = asub.add_parser(
        "timeline",
        help="per-policy availability spans rebuilt from the decisions",
    )
    q.add_argument("trace", help="JSONL decision trace (.jsonl or .jsonl.gz)")
    q.add_argument("--policy", default=None,
                   help="restrict to one policy's timeline")
    add_json_out(q)

    q = asub.add_parser(
        "audit",
        help="map every quorum denial to the Algorithm-1 rule that failed",
    )
    q.add_argument("trace", help="JSONL decision trace (.jsonl or .jsonl.gz)")
    q.add_argument("--limit", type=int, default=20,
                   help="denials to explain in full (default 20)")
    add_json_out(q)

    q = asub.add_parser(
        "diff",
        help="align two protocols' traces over the same history and "
             "explain the first divergent quorum decision",
    )
    q.add_argument("traces", nargs="*", metavar="TRACE",
                   help="two JSONL decision traces to align")
    q.add_argument("--scenario", metavar="FILE", default=None,
                   help="instead of trace files: replay this scenario "
                        "under two policies and diff the decisions")
    q.add_argument("--policies", default="ODV,OTDV",
                   help="comma-separated policy pair for --scenario "
                        "(default ODV,OTDV)")
    add_json_out(q)

    p = sub.add_parser(
        "chaos",
        help="fuzz the protocols under seeded chaos with the "
             "safety-invariant monitor always on",
    )
    csub = p.add_subparsers(dest="chaos_command", required=True)

    def add_chaos_build(q: argparse.ArgumentParser) -> None:
        q.add_argument("--steps", type=int, default=60,
                       help="schedule length in steps (default 60)")
        q.add_argument("--config", default="H",
                       choices=sorted(CONFIGURATIONS),
                       help="copy placement (default H)")
        q.add_argument("--unsafe-partial-commits", action="store_true",
                       help="lift the commit-fault safety budget "
                            "(demonstrates forks on correct protocols)")

    q = csub.add_parser(
        "run", help="one seeded schedule against one protocol",
    )
    q.add_argument("--seed", type=int, default=0, help="chaos seed")
    q.add_argument("--policy", default="LDV",
                   help="MCV/DV/LDV/ODV/TDV/OTDV, or BROKEN-TIE "
                        "(deliberately unsafe, for the monitor demo)")
    add_chaos_build(q)
    q.add_argument("--out", metavar="PATH", default=None,
                   help="JSONL destination for the structured trace")
    q.add_argument("--save-schedule", metavar="PATH", default=None,
                   help="write the schedule as replayable JSON")
    q.add_argument("--json-out", metavar="PATH", default=None,
                   help="also write the run summary as a JSON document")
    add_record_args(q)

    q = csub.add_parser(
        "sweep",
        help="fuzz many seeded schedules across the paper's protocols",
    )
    q.add_argument("--seeds", type=int, default=40,
                   help="seeds per policy, 0..N-1 (default 40)")
    q.add_argument("--policies", default="MCV,DV,LDV,ODV,TDV,OTDV",
                   help="comma-separated protocols to fuzz")
    add_chaos_build(q)
    q.add_argument("--quick", action="store_true",
                   help="8 seeds per policy: the CI smoke variant")
    q.add_argument("--json-out", metavar="PATH", default=None,
                   help="also write the sweep report as a JSON document")
    q.add_argument("--live", action="store_true",
                   help="stream per-policy phases, run summaries and "
                        "invariant violations to a live session under "
                        "the run registry")
    q.add_argument("--runs-dir", metavar="DIR", default=None,
                   help="registry root for --live (default .repro/runs, "
                        "or REPRO_RUNS_DIR)")

    q = csub.add_parser(
        "replay",
        help="re-run a violating schedule deterministically",
    )
    q.add_argument("--schedule", metavar="FILE", default=None,
                   help="schedule JSON written by run --save-schedule")
    q.add_argument("--seed", type=int, default=None,
                   help="rebuild the schedule from this seed instead")
    q.add_argument("--policy", default=None,
                   help="protocol to replay against (default: the one "
                        "recorded in --schedule, else LDV)")
    add_chaos_build(q)
    q.add_argument("--out", metavar="PATH", default=None,
                   help="JSONL destination for the structured trace")
    q.add_argument("--json-out", metavar="PATH", default=None,
                   help="also write the run summary as a JSON document")
    add_record_args(q)

    p = sub.add_parser(
        "profile",
        help="profile a workload: hot functions, flamegraph stacks, "
             "phase timers",
    )
    psub = p.add_subparsers(dest="profile_command", required=True)

    def add_profile_common(q: argparse.ArgumentParser) -> None:
        q.add_argument("--engine", default="cprofile",
                       choices=("cprofile", "sample"),
                       help="cprofile (deterministic, exact counts) or "
                            "sample (signal-based stack sampler, true "
                            "stacks, low overhead)")
        q.add_argument("--interval", type=float, default=5.0,
                       help="sampling period in milliseconds "
                            "(sample engine only; default 5)")
        q.add_argument("--top", type=int, default=15,
                       help="hot functions to print (default 15)")
        q.add_argument("--collapsed", metavar="PATH", default=None,
                       help="write flamegraph-compatible collapsed "
                            "stacks ('a;b;c count' lines)")
        q.add_argument("--json-out", metavar="PATH", default=None,
                       help="also write the full report as a JSON "
                            "document")
        q.add_argument("--out", metavar="PATH", default=None,
                       help="write the text report here instead of "
                            "stdout")
        add_record_args(q)

    q = psub.add_parser("scenario", help="profile one scenario replay")
    q.add_argument("file", help="path to a repro-scenario JSON document")
    q.add_argument("--policy", default=None,
                   help="override the scenario's policy")
    add_profile_common(q)

    q = psub.add_parser(
        "study", help="profile a (small) availability study",
    )
    add_sim_args(q)
    q.add_argument("--configs", default="A,F",
                   help="comma-separated configuration keys "
                        "(default A,F)")
    q.add_argument("--policies", default=",".join(PAPER_POLICIES),
                   help="comma-separated policies "
                        "(default: all six paper columns)")
    add_profile_common(q)

    q = psub.add_parser("chaos", help="profile one chaos schedule run")
    q.add_argument("--seed", type=int, default=0, help="chaos seed")
    q.add_argument("--policy", default="LDV",
                   help="protocol to run the schedule against")
    add_chaos_build(q)
    add_profile_common(q)

    p = sub.add_parser(
        "bench",
        help="record benchmark trajectory points and gate on "
             "regressions",
    )
    bsub = p.add_subparsers(dest="bench_command", required=True)

    q = bsub.add_parser(
        "record", help="append a BENCH_<n>.json trajectory point",
    )
    q.add_argument("--quick", action="store_true",
                   help="time the pinned micro subset in-process "
                        "(seconds to run; the CI smoke source) instead "
                        "of the full pytest-benchmark suite")
    q.add_argument("--rounds", type=int, default=5,
                   help="rounds per quick workload (default 5)")
    q.add_argument("--from-json", metavar="FILE", default=None,
                   help="ingest a pytest-benchmark --benchmark-json "
                        "document instead of running anything")
    q.add_argument("--out", metavar="PATH", default=None,
                   help="write the point here instead of the next "
                        "BENCH_<n>.json in --dir")
    q.add_argument("--dir", default=".", metavar="DIR",
                   help="trajectory directory (default: current "
                        "directory)")
    q.add_argument("--note", default="",
                   help="free-text note stored in the point")
    add_record_args(q)

    q = bsub.add_parser(
        "compare",
        help="diff two trajectory points; exit 1 on a regression",
    )
    q.add_argument("current", nargs="?", default=None,
                   help="current point (default: the highest-numbered "
                        "BENCH_<n>.json in --dir)")
    q.add_argument("--baseline", required=True, metavar="FILE",
                   help="baseline trajectory point")
    q.add_argument("--dir", default=".", metavar="DIR",
                   help="where to look for the default current point")
    q.add_argument("--max-regression", type=float, default=0.25,
                   help="relative median growth that counts as a "
                        "regression (default 0.25 = 25%%)")
    q.add_argument("--iqr-factor", type=float, default=1.5,
                   help="the median must also move by this many IQRs "
                        "(default 1.5)")
    q.add_argument("--ignore-fingerprint", action="store_true",
                   help="compare across machines/interpreters anyway "
                        "(CI does, with a wide --max-regression)")
    q.add_argument("--json-out", metavar="PATH", default=None,
                   help="also write the comparison as a JSON document")

    p = sub.add_parser(
        "service",
        help="the crash-tolerant replicated KV service: replica "
             "processes, local clusters, live-chaos bench",
    )
    vsub = p.add_subparsers(dest="service_command", required=True)

    def add_service_common(q: argparse.ArgumentParser) -> None:
        q.add_argument("--policy", default="ODV",
                       choices=sorted(available_policies()),
                       help="protocol every replica runs (default ODV)")
        q.add_argument("--segments", default=None, metavar="SPEC",
                       help="co-location groups for the topological "
                            "protocols, e.g. '1,2/3,4,5'")
        q.add_argument("--fsync", default="always",
                       choices=("always", "never"),
                       help="WAL durability (default always; 'never' "
                            "is for tests only)")

    q = vsub.add_parser(
        "replica", help="run one replica process (what the cluster "
                        "supervisor spawns)",
    )
    q.add_argument("--site", type=int, required=True,
                   help="this replica's paper site number (1-based)")
    q.add_argument("--host", default="127.0.0.1",
                   help="listen address (default 127.0.0.1)")
    q.add_argument("--port", type=int, default=0,
                   help="listen port (default 0 = OS-assigned)")
    q.add_argument("--data-dir", required=True, metavar="DIR",
                   help="directory for WAL, snapshot and recovery "
                        "marker")
    q.add_argument("--peers", default="", metavar="SPEC",
                   help="other replicas as '2=host:port,3=host:port'")
    add_service_common(q)
    q.add_argument("--lease", type=float, default=2.0,
                   help="coordinator lease seconds (default 2.0)")
    q.add_argument("--peer-timeout", type=float, default=1.0,
                   help="per-peer round-trip budget (default 1.0)")
    q.add_argument("--recover-interval", type=float, default=1.0,
                   help="RECOVER loop cadence (default 1.0)")
    q.add_argument("--compact-every", type=int, default=256,
                   help="snapshot compaction period in commits "
                        "(default 256)")
    q.add_argument("--trace", action="store_true",
                   help="write distributed-tracing spans to "
                        "spans.jsonl next to the WAL")

    q = vsub.add_parser(
        "cluster", help="run a supervised local cluster (behind the "
                        "chaos proxy) until interrupted",
    )
    q.add_argument("--dir", default=".service", metavar="DIR",
                   help="cluster directory (default .service)")
    q.add_argument("--replicas", type=int, default=5,
                   help="replica processes (default 5)")
    add_service_common(q)
    q.add_argument("--no-proxy", action="store_true",
                   help="connect replicas directly, skipping the chaos "
                        "proxy indirection")
    q.add_argument("--trace", action="store_true",
                   help="every replica (and the proxy) writes "
                        "distributed-tracing span logs")

    q = vsub.add_parser(
        "bench", help="seeded chaos + load against real clusters, one "
                      "per policy; exit 1 on any safety violation or "
                      "failed recovery",
    )
    q.add_argument("--dir", default=None, metavar="DIR",
                   help="working directory (default: a fresh temp dir, "
                        "removed on success)")
    q.add_argument("--policies", default="ODV,OTDV",
                   help="comma-separated protocols (default ODV,OTDV)")
    q.add_argument("--replicas", type=int, default=5,
                   help="cluster size (default 5)")
    q.add_argument("--duration", type=float, default=10.0,
                   help="seconds of load per policy (default 10)")
    q.add_argument("--seed", type=int, default=1988,
                   help="root seed for schedule, proxy coins and load")
    q.add_argument("--workers", type=int, default=3,
                   help="load generator threads (default 3)")
    q.add_argument("--write-ratio", type=float, default=0.5,
                   help="fraction of writes (default 0.5)")
    q.add_argument("--segments", default=None, metavar="SPEC",
                   help="co-location groups, e.g. '1,2/3,4,5'")
    q.add_argument("--fsync", default="always",
                   choices=("always", "never"),
                   help="WAL durability for every replica")
    q.add_argument("--drop-rate", type=float, default=0.02,
                   help="per-frame drop coin (default 0.02)")
    q.add_argument("--delay-rate", type=float, default=0.05,
                   help="per-frame delay coin (default 0.05)")
    q.add_argument("--kills", type=int, default=1,
                   help="minimum SIGKILLs the plan must contain "
                        "(default 1)")
    q.add_argument("--partitions", type=int, default=1,
                   help="minimum live partitions (default 1)")
    q.add_argument("--trace", action="store_true",
                   help="record end-to-end distributed traces and "
                        "sample exemplars per policy (the slowest, "
                        "denied and fault-hit operations)")
    q.add_argument("--trace-exemplars", type=int, default=8,
                   help="exemplar traces kept per policy (default 8)")
    q.add_argument("--scrape-interval", type=float, default=0.0,
                   metavar="SECONDS",
                   help="poll every replica's metrics into an on-disk "
                        "time-series store every N seconds and evaluate "
                        "SLO burn-rate alerts live (0 = off)")
    q.add_argument("--availability-target", type=float, default=0.99,
                   metavar="RATIO",
                   help="SLO availability target the burn-rate alert "
                        "guards (default 0.99)")
    q.add_argument("--out", metavar="PATH", default=None,
                   help="also write the bench document as JSON")
    q.add_argument("--live", action="store_true",
                   help="stream cluster phases and applied faults to a "
                        "live session under the run registry")
    add_record_args(q)

    q = vsub.add_parser(
        "kill", help="SIGKILL one replica of a running cluster (uses "
                     "the cluster.json control file)",
    )
    q.add_argument("site", type=int, help="site number to kill")
    q.add_argument("--dir", default=".service", metavar="DIR",
                   help="cluster directory (default .service)")

    q = vsub.add_parser(
        "trace", help="render the exemplar distributed traces a traced "
                      "service bench recorded (text waterfall per "
                      "trace, causality-checked)",
    )
    q.add_argument("run", nargs="?", default="latest",
                   help="run id (or unique prefix), or 'latest' "
                        "(default: the newest service run)")
    q.add_argument("--trace-id", default=None, metavar="ID",
                   help="render only the trace whose id starts with ID")
    q.add_argument("--outcome", default=None, metavar="NAME",
                   help="render only traces with this root outcome "
                        "(e.g. denied, unavailable)")
    q.add_argument("--no-events", action="store_true",
                   help="hide span events (send/recv, quorum verdicts, "
                        "chaos annotations)")
    q.add_argument("--runs-dir", metavar="DIR", default=None,
                   help="registry root (default .repro/runs, or "
                        "REPRO_RUNS_DIR)")

    p = sub.add_parser(
        "metrics",
        help="query a scraped time-series store: windowed rates, "
             "quantiles, and the SLO alert history",
    )
    msub = p.add_subparsers(dest="metrics_command", required=True)

    def add_metrics_source(q: argparse.ArgumentParser) -> None:
        q.add_argument("run", nargs="?", default="latest",
                       help="run id (or unique prefix), or 'latest' "
                            "(default: the newest service run)")
        q.add_argument("--tsdb", metavar="DIR", default=None,
                       help="query a raw store directory instead of a "
                            "recorded run (e.g. <bench-dir>/tsdb)")
        q.add_argument("--policy", default=None,
                       help="restrict to one policy's series")
        q.add_argument("--runs-dir", metavar="DIR", default=None,
                       help="registry root (default .repro/runs, or "
                            "REPRO_RUNS_DIR)")

    q = msub.add_parser(
        "query", help="evaluate one selector over the stored series "
                      "(rate, increase, last, quantiles)",
    )
    q.add_argument("selector", metavar="SELECTOR",
                   help="series selector, e.g. "
                        "'service.ops{outcome=\"ok\"}'")
    q.add_argument("--fn", default="last",
                   choices=("rate", "increase", "last", "mean",
                            "p50", "p95", "p99", "p999"),
                   help="query function (default last)")
    q.add_argument("--window", type=float, default=None,
                   metavar="SECONDS",
                   help="lookback window (required for rate/increase)")
    q.add_argument("--at", type=float, default=None, metavar="UNIX",
                   help="evaluate at this wall-clock time (default: "
                        "the newest matched sample)")
    q.add_argument("--json-out", metavar="PATH", default=None,
                   help="also write the result as a JSON document")
    add_metrics_source(q)

    q = msub.add_parser(
        "alerts", help="replay the SLO alert rules over the stored "
                       "series and print every firing/resolved edge",
    )
    q.add_argument("--duration", type=float, default=60.0,
                   help="bench duration the rule windows were sized "
                        "for (default 60)")
    q.add_argument("--target", type=float, default=0.99,
                   help="SLO availability target (default 0.99)")
    q.add_argument("--json-out", metavar="PATH", default=None,
                   help="also write the alert history as JSON")
    add_metrics_source(q)

    p = sub.add_parser(
        "runs",
        help="browse, diff and prune the content-addressed run registry",
    )
    rsub = p.add_subparsers(dest="runs_command", required=True)

    def add_runs_dir(q: argparse.ArgumentParser) -> None:
        q.add_argument("--runs-dir", metavar="DIR", default=None,
                       help="registry root (default .repro/runs, or "
                            "REPRO_RUNS_DIR)")

    q = rsub.add_parser(
        "list",
        help="recorded runs, from the pregenerated summary cache",
    )
    q.add_argument("--kind", default=None,
                   choices=("study", "scenario", "chaos", "bench",
                            "profile", "service"),
                   help="restrict to one run kind")
    q.add_argument("--sort", default="time",
                   choices=("time", "kind", "id"),
                   help="listing order: time = recording order "
                        "(default), kind groups by run kind, id is "
                        "lexicographic")
    q.add_argument("--limit", type=int, default=None,
                   help="show at most N runs")
    q.add_argument("--offset", type=int, default=0,
                   help="skip the first N runs (after sorting)")
    q.add_argument("--watch", type=float, default=None, metavar="SECONDS",
                   help="repaint the listing every N seconds (summary-"
                        "cache backed: an unchanged index costs one "
                        "stat per repaint) until interrupted")
    q.add_argument("--watch-count", type=int, default=None,
                   metavar="N", help=argparse.SUPPRESS)
    add_runs_dir(q)

    q = rsub.add_parser(
        "show", help="one run's identity, lineage and artifacts",
    )
    q.add_argument("run",
                   help="run id, unique prefix (>= 4 chars), run "
                        "directory path, or 'latest'")
    q.add_argument("--json-out", metavar="PATH", default=None,
                   help="also write the record as a JSON document")
    add_runs_dir(q)

    q = rsub.add_parser(
        "diff",
        help="align two recorded studies cell by cell; exit 1 on an "
             "availability regression beyond noise",
    )
    q.add_argument("baseline",
                   help="baseline run (id, prefix, directory path, or "
                        "'latest')")
    q.add_argument("current", nargs="?", default="latest",
                   help="run under test (default: latest)")
    q.add_argument("--max-regression", type=float, default=0.25,
                   help="relative unavailability growth that counts as "
                        "a regression (default 0.25 = 25%%)")
    q.add_argument("--noise-factor", type=float, default=1.5,
                   help="the delta must also exceed this many "
                        "confidence half-widths (default 1.5)")
    q.add_argument("--verbose", action="store_true",
                   help="print every aligned cell, not only the ones "
                        "beyond noise")
    q.add_argument("--json-out", metavar="PATH", default=None,
                   help="also write the diff as a JSON document")
    add_runs_dir(q)

    q = rsub.add_parser(
        "gc", help="prune old runs and compact the index",
    )
    q.add_argument("--keep-last", type=int, default=20,
                   help="runs to keep, most recent first (default 20)")
    q.add_argument("--kind", action="append", default=None,
                   choices=("study", "scenario", "chaos", "bench",
                            "profile", "service"),
                   help="prune only this kind (repeatable)")
    q.add_argument("--dry-run", action="store_true",
                   help="report what would be deleted, delete nothing")
    add_runs_dir(q)

    p = sub.add_parser(
        "report",
        help="render recorded runs as one self-contained HTML file",
    )
    p.add_argument("runs", nargs="+", metavar="RUN",
                   help="run ids, unique prefixes, run directory "
                        "paths, or 'latest'")
    p.add_argument("--out", metavar="PATH", default="report.html",
                   help="HTML destination (default report.html)")
    p.add_argument("--title", default="Dynamic voting — recorded results",
                   help="document title")
    add_runs_dir(p)

    p = sub.add_parser(
        "serve",
        help="serve the run registry as a browsable web explorer "
             "(HTML pages + JSON API); 'repro serve warm' pregenerates "
             "the summary cache and exits",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8137,
                   help="TCP port (default 8137; 0 picks a free one)")
    p.add_argument("--adopt", action="append", metavar="RUN_DIR",
                   default=None,
                   help="copy an external run directory (e.g. "
                        "results/baseline_run) into the registry "
                        "before serving (repeatable)")
    add_runs_dir(p)
    ssub = p.add_subparsers(dest="serve_command", required=False)
    warm = ssub.add_parser(
        "warm",
        help="pregenerate the summary cache over the current index "
             "position, print its size, and exit",
    )
    # Accept the registry options after the subcommand too, so
    # `repro serve warm --runs-dir X --adopt Y` reads naturally.
    # SUPPRESS defaults keep unset options from clobbering values the
    # parent parser already bound (the classic subparser-default trap).
    warm.add_argument("--adopt", action="append", metavar="RUN_DIR",
                      default=argparse.SUPPRESS, help=argparse.SUPPRESS)
    warm.add_argument("--runs-dir", metavar="DIR",
                      default=argparse.SUPPRESS, help=argparse.SUPPRESS)

    p = sub.add_parser(
        "watch",
        help="follow a live telemetry session (started with --live) in "
             "the terminal",
    )
    p.add_argument("session", nargs="?", default="latest",
                   help="live session id, >=4 char prefix, recorded run "
                        "id, or 'latest' (default)")
    p.add_argument("--interval", type=float, default=0.5,
                   help="poll period in seconds (default 0.5)")
    p.add_argument("--timeout", type=float, default=None,
                   help="give up after N seconds even if the session "
                        "is still running (default: wait forever)")
    p.add_argument("--from-start", action="store_true",
                   help="replay the whole event stream instead of "
                        "tailing from the current end")
    p.add_argument("--runs-dir", metavar="DIR", default=None,
                   help="registry root (default .repro/runs, or "
                        "REPRO_RUNS_DIR)")

    sub.add_parser("demo", help="run the Section 2 worked example")
    return parser


def _params(args: argparse.Namespace) -> StudyParameters:
    kwargs = dict(
        warmup=args.warmup,
        batches=args.batches,
        seed=args.seed,
        access_rate_per_day=args.access_rate,
    )
    if args.horizon is not None:
        kwargs["horizon"] = args.horizon
    return StudyParameters(**kwargs)


def _cmd_testbed(args: argparse.Namespace) -> None:
    print(render_testbed())
    print()
    print("Table 1: Site Characteristics")
    header = (
        f"{'site':>4}  {'name':<8}  {'MTTF(d)':>8}  {'hw%':>4}  "
        f"{'restart(min)':>12}  {'repair c(h)':>11}  {'repair e(h)':>11}  maint"
    )
    print(header)
    print("-" * len(header))
    for profile in testbed_profiles():
        maint = "3h/90d" if profile.maintenance else "-"
        print(
            f"{profile.site_id:>4}  {profile.name:<8}  {profile.mttf_days:>8.1f}  "
            f"{profile.hardware_fraction * 100:>4.0f}  "
            f"{profile.restart_minutes:>12.1f}  "
            f"{profile.repair_constant_hours:>11.1f}  "
            f"{profile.repair_exponential_hours:>11.1f}  {maint}"
        )


def _write_metrics_dump(
    path: str,
    command: str,
    params: StudyParameters,
    policies,
    configurations,
    metrics,
    wall_clock_seconds: float,
    **extra,
) -> None:
    """Write a ``{"manifest": ..., "metrics": ...}`` JSON document."""
    import json
    import pathlib

    from repro.obs.manifest import build_manifest

    cell_seconds = {
        f"{labels.get('config', '?')}/{labels.get('policy', '?')}":
            instrument.total
        for name, labels, instrument in metrics.series()
        if name == "cell.seconds"
    }
    manifest = build_manifest(
        command, params, policies, configurations, **extra
    ).finished(wall_clock_seconds, cell_seconds)
    payload = {"manifest": manifest.to_dict(), "metrics": metrics.to_dict()}
    try:
        pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    except OSError as exc:
        raise ConfigurationError(
            f"cannot write metrics to {path}: {exc}"
        ) from exc
    print(f"metrics written to {path}", file=sys.stderr)


def _cmd_tables(args: argparse.Namespace, which: str) -> int:
    from repro.obs.metrics import MetricsRegistry

    params = _params(args)
    print(
        f"simulating {params.horizon:.0f} days "
        f"(seed {params.seed}, warmup {params.warmup:.0f} d, "
        f"{params.batches} batches, "
        f"{params.access_rate_per_day:g} access/day) ...",
        file=sys.stderr,
    )
    metrics_out = getattr(args, "metrics_out", None)
    record = getattr(args, "record", False)
    jobs = getattr(args, "jobs", None)
    bus, live_session = _start_live(args, which, {
        "horizon": params.horizon,
        "seed": params.seed,
        "warmup": params.warmup,
        "batches": params.batches,
        "access_rate": params.access_rate_per_day,
        "jobs": jobs,
    })
    registered = None
    try:
        if not metrics_out and not record:
            cells = run_study(params, jobs=jobs,
                              progress=getattr(args, "progress", False),
                              bus=bus)
        else:
            # The registry times the command itself (command.seconds), so
            # the manifest's wall clock is the timer's own reading — no
            # hand-rolled perf_counter pair.
            metrics = MetricsRegistry()
            profiler = None
            if record and (jobs is None or jobs == 1):
                # Recording keeps phase timings too (the report's phase
                # breakdown); profiling is in-process, so parallel runs
                # record without it rather than fail.
                from repro.obs.prof import PhaseProfiler

                profiler = PhaseProfiler(metrics)
            with metrics.timed("command.seconds", command=which):
                cells = run_study(params, jobs=jobs,
                                  metrics=metrics,
                                  progress=getattr(args, "progress", False),
                                  profiler=profiler,
                                  capture_timelines=record,
                                  bus=bus)
            if profiler is not None:
                profiler.flush()
            if metrics_out:
                _write_metrics_dump(
                    metrics_out, which, params, PAPER_POLICIES,
                    tuple(sorted(CONFIGURATIONS)), metrics,
                    metrics.histogram("command.seconds",
                                      command=which).total,
                    jobs=jobs,
                )
            if record:
                registered = _registry(args).record_study(
                    cells, params, PAPER_POLICIES,
                    tuple(sorted(CONFIGURATIONS)), command=which,
                    metrics=metrics, timelines=cells.timelines,
                )
                _record_note(registered)
    except BaseException:
        if live_session is not None:
            live_session.finish("failed")
        raise
    if live_session is not None:
        live_session.finish(
            "finished",
            run_id=None if registered is None else registered.run_id,
        )
    if which in ("table2", "study"):
        if args.no_compare:
            print(format_table2(cells))
        else:
            print(format_comparison(
                cells, PAPER_TABLE_2,
                "Table 2: Replicated File Unavailabilities (paper vs ours)",
            ))
    if which == "study":
        print()
    if which in ("table3", "study"):
        if args.no_compare:
            print(format_table3(cells))
        else:
            print(format_comparison(
                cells, PAPER_TABLE_3,
                "Table 3: Mean Duration of Unavailable Periods, days "
                "(paper vs ours)",
                use_durations=True,
            ))
    if getattr(args, "intervals", False):
        print()
        print(format_intervals(cells))
    failed = getattr(cells, "failed_cells", ())
    if failed:
        print(f"\nwarning: {len(failed)} cell(s) failed after a retry "
              "(shown as '?' above):", file=sys.stderr)
        for cell in failed:
            print(f"  {cell.config_key}/{cell.policy}: {cell.error}",
                  file=sys.stderr)
        return 1
    return 0


def _cmd_sweep(args: argparse.Namespace) -> None:
    params = _params(args)
    rates = [float(r) for r in args.rates.split(",") if r.strip()]
    config = configuration(args.config)
    points = access_rate_sweep(config, rates, params=params)
    print(f"Access-rate sweep on configuration {config.label}")
    print(f"{'policy':>8}  {'acc/day':>8}  {'unavailability':>14}  {'mean down (d)':>13}")
    for point in points:
        print(
            f"{point.policy:>8}  {point.accesses_per_day:>8.2f}  "
            f"{point.unavailability:>14.6f}  {point.mean_down_duration:>13.4f}"
        )


def _cmd_placement(args: argparse.Namespace) -> None:
    params = _params(args)
    results = placement_sweep(args.copies, args.policy, params=params)
    print(
        f"Best placements of {args.copies} copies under {args.policy} "
        f"(of {len(results)} evaluated)"
    )
    print(f"{'copies':<14}  {'segments':>8}  {'unavailability':>14}")
    for row in results[: args.top]:
        print(f"{row.label:<14}  {row.segments_used:>8}  {row.unavailability:>14.6f}")


def _cmd_trace_scenario(args: argparse.Namespace) -> int:
    """Replay a scenario file with full structured tracing (JSONL)."""
    from repro.experiments.scenarios import load_scenario, run_scenario
    from repro.experiments.testbed import testbed_topology
    from repro.obs.tracer import FanoutSink, JsonlSink, MemorySink, Tracer

    spec = load_scenario(args.scenario)
    try:
        sink = JsonlSink(args.out if args.out else sys.stdout)
    except OSError as exc:
        raise ConfigurationError(
            f"cannot write trace to {args.out}: {exc}"
        ) from exc
    memory = None
    outer = sink
    if getattr(args, "record", False):
        memory = MemorySink(capacity=1_000_000)
        outer = FanoutSink((sink, memory))
    tracer = Tracer(outer, scenario=spec.name)
    try:
        result = run_scenario(
            testbed_topology(), spec.copy_sites, spec.policy, spec.steps,
            initial=spec.initial, tracer=tracer,
        )
    finally:
        tracer.close()
    denied = len(result.denied_steps)
    print(
        f"scenario {spec.name!r}: {len(result.outcomes)} steps, "
        f"{denied} denied, {sink.emitted} trace records"
        + (f" -> {args.out}" if args.out else ""),
        file=sys.stderr,
    )
    if memory is not None:
        registered = _registry(args).record_scenario(
            spec.name, spec.policy,
            [record.to_dict() for record in memory.records],
        )
        _record_note(registered)
    return 0


def _cmd_trace(args: argparse.Namespace) -> None:
    params = _params(args)
    trace = generate_trace(testbed_profiles(), params.horizon, params.seed)
    if args.save:
        from repro.failures.serialization import dump_trace

        dump_trace(trace, args.save)
        print(f"trace written to {args.save}", file=sys.stderr)
    print(
        f"trace: {len(trace)} transitions over {trace.horizon:.0f} days "
        f"(seed {params.seed})"
    )
    print(f"{'site':>4}  {'name':<8}  {'availability':>12}  {'analytic':>9}")
    for profile in testbed_profiles():
        measured = trace.site_availability(profile.site_id)
        analytic = profile.steady_state_availability()
        print(
            f"{profile.site_id:>4}  {profile.name:<8}  {measured:>12.6f}  "
            f"{analytic:>9.6f}"
        )


def _cmd_overhead(args: argparse.Namespace) -> None:
    from repro.core.registry import PAPER_POLICIES
    from repro.experiments.evaluator import poisson_times
    from repro.experiments.overhead import measure_overhead
    from repro.experiments.report import ascii_table
    from repro.experiments.testbed import testbed_topology

    config = configuration(args.config)
    topology = testbed_topology()
    trace = generate_trace(testbed_profiles(), args.days, args.seed)
    access = poisson_times(args.access_rate, args.days, args.seed)
    print(
        f"replaying {args.days:.0f} days on configuration {config.label} "
        f"({len(trace)} transitions, {len(access)} accesses)",
        file=sys.stderr,
    )
    rows = []
    for policy in PAPER_POLICIES:
        bill = measure_overhead(policy, topology, config.copy_sites, trace,
                                access)
        rows.append([
            bill.policy, bill.counters.state_requests,
            bill.counters.state_replies, bill.counters.commits,
            bill.counters.data_transfers, bill.counters.total_messages,
            round(bill.messages_per_day, 2),
        ])
    print(ascii_table(
        ["policy", "requests", "replies", "commits", "data", "total",
         "msgs/day"],
        rows,
    ))


def _cmd_validate(args: argparse.Namespace) -> int:
    """Cross-check the simulator against closed forms (DESIGN.md §4)."""
    from repro.analysis.enumeration import (
        mcv_predicate,
        single_copy_predicate,
        static_availability,
    )
    from repro.experiments.evaluator import evaluate_policy, poisson_times
    from repro.experiments.testbed import testbed_topology
    from repro.obs.metrics import MetricsRegistry, MetricsSink
    from repro.obs.tracer import Tracer

    metrics_out = getattr(args, "metrics_out", None)
    metrics = MetricsRegistry() if metrics_out else None
    params = _params(args)
    topology = testbed_topology()

    def evaluate_cell(policy, copies, config_key, trace, **kwargs):
        """evaluate_policy, tallied and timed when --metrics-out is set."""
        if metrics is None:
            return evaluate_policy(policy, topology, copies, trace, **kwargs)
        with metrics.timed("cell.seconds", config=config_key, policy=policy):
            return evaluate_policy(
                policy, topology, copies, trace,
                tracer=Tracer(MetricsSink(metrics, config=config_key)),
                **kwargs,
            )

    def run_checks() -> int:
        import math

        trace = generate_trace(
            testbed_profiles(), params.horizon, params.seed
        )
        measured_sites = {
            s: trace.site_availability(s) for s in range(1, 9)
        }
        print(f"simulated {params.horizon:.0f} days (seed {params.seed})\n")
        failures = 0

        print("1. per-site availability vs mttf/(mttf+mttr):")
        for profile in testbed_profiles():
            analytic = profile.steady_state_availability()
            simulated = measured_sites[profile.site_id]
            # ~3 standard errors of the downtime estimator: per-failure
            # downtime varies by roughly its own mean (exponential
            # parts), and the horizon sees about horizon / mttf
            # failures.  Plus the maintenance duty cycle (sites 1, 3,
            # 5), absent from the closed form.
            n_failures = max(1.0, params.horizon / profile.mttf_days)
            sigma = (profile.expected_downtime() * math.sqrt(n_failures)
                     / params.horizon)
            slack = (3.0 * sigma + 0.002
                     + (0.0015 if profile.maintenance else 0.0))
            ok = abs(simulated - analytic) < slack
            failures += 0 if ok else 1
            print(f"   site {profile.site_id} ({profile.name:<8}) "
                  f"simulated {simulated:.6f}  analytic {analytic:.6f}  "
                  f"{'ok' if ok else 'MISMATCH'}")

        print("\n2. MCV availability vs exact 2^8-state enumeration:")
        for key in ("A", "B", "F"):
            copies = configuration(key).copy_sites
            result = evaluate_cell("MCV", copies, key, trace,
                                   warmup=0.0, batches=1)
            exact = static_availability(topology, measured_sites,
                                        mcv_predicate(copies))
            ok = abs(result.availability - exact) < 0.005
            failures += 0 if ok else 1
            print(f"   config {key}: simulated {result.availability:.6f}  "
                  f"exact {exact:.6f}  {'ok' if ok else 'MISMATCH'}")

        print("\n3. no policy beats the 'some copy up' bound (config A):")
        copies = configuration("A").copy_sites
        bound = static_availability(topology, measured_sites,
                                    single_copy_predicate(copies))
        access = poisson_times(params.access_rate_per_day, params.horizon,
                               params.seed)
        for policy in PAPER_POLICIES:
            result = evaluate_cell(policy, copies, "A", trace,
                                   warmup=0.0, batches=1,
                                   access_times=access)
            ok = result.availability <= bound + 0.002
            failures += 0 if ok else 1
            print(f"   {policy:<5} {result.availability:.6f} <= "
                  f"{bound:.6f}  {'ok' if ok else 'VIOLATION'}")

        print(f"\n{'all checks passed' if failures == 0 else f'{failures} check(s) FAILED'}")
        return failures

    if metrics is None:
        failures = run_checks()
    else:
        # Same dedup as _cmd_tables: the registry's timer is the one
        # wall clock, read back for the manifest.
        with metrics.timed("command.seconds", command="validate"):
            failures = run_checks()
        _write_metrics_dump(
            metrics_out, "validate", params,
            ("MCV",) + tuple(PAPER_POLICIES), ("A", "B", "F"),
            metrics,
            metrics.histogram("command.seconds", command="validate").total,
            failures=failures,
        )
    return 0 if failures == 0 else 1


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.experiments.scenarios import load_scenario, run_scenario
    from repro.experiments.testbed import testbed_topology

    spec = load_scenario(args.file)
    print(f"scenario {spec.name!r}: policy {spec.policy}, "
          f"copies {sorted(spec.copy_sites)}")
    result = run_scenario(
        testbed_topology(), spec.copy_sites, spec.policy, spec.steps,
        initial=spec.initial,
    )
    for index, outcome in enumerate(result.outcomes):
        step = outcome.step
        what = step.kind
        if step.site is not None:
            what += f" site {step.site}"
            if step.peer is not None:
                what += f"-{step.peer}"
        status = "ok" if outcome.granted else "DENIED"
        detail = ""
        if step.kind == "read" and outcome.granted:
            detail = f" -> {outcome.value!r}"
        elif not outcome.granted and outcome.detail:
            detail = f" ({outcome.detail})"
        print(f"  {index:>3}  {what:<24} {status}{detail}")
    denied = len(result.denied_steps)
    print(f"done: {len(result.outcomes)} steps, {denied} denied")
    return 0


def _cmd_demo(args: argparse.Namespace) -> None:
    # Local import: the demo pulls in the engine, which most commands skip.
    from repro.experiments.demo import run_demo

    run_demo()


def _write_json_out(path: str, payload: dict) -> None:
    """Write an analysis result as a JSON document."""
    import json
    import pathlib

    try:
        pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    except OSError as exc:
        raise ConfigurationError(f"cannot write {path}: {exc}") from exc
    print(f"json written to {path}", file=sys.stderr)


def _cmd_analyze_summary(args: argparse.Namespace) -> int:
    from repro.experiments.report import ascii_table
    from repro.obs.analysis import RecordStream, summarize

    summary = summarize(RecordStream.from_jsonl(args.trace))
    print(f"trace {args.trace}: {summary.total} records")
    if summary.first_time is not None:
        print(f"timed span: {summary.first_time:g} .. {summary.last_time:g}")
    if summary.sites:
        print("sites touched: "
              + ", ".join(str(s) for s in sorted(summary.sites)))
    if summary.by_kind:
        print()
        rows = [
            [kind, count]
            for kind, count in sorted(
                summary.by_kind.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        print(ascii_table(["kind", "records"], rows))
    if summary.grants or summary.denials:
        print()
        print(f"quorum decisions: {summary.grants} granted, "
              f"{summary.denials} denied "
              f"(denial rate {summary.denial_rate:.3f})")
    if args.json_out:
        _write_json_out(args.json_out, summary.to_dict())
    return 0


def _cmd_analyze_timeline(args: argparse.Namespace) -> int:
    from repro.experiments.report import ascii_table
    from repro.obs.analysis import RecordStream, build_timelines

    timelines = build_timelines(RecordStream.from_jsonl(args.trace))
    if args.policy is not None:
        if args.policy not in timelines:
            raise ConfigurationError(
                f"no decisions by {args.policy!r} in the trace; "
                f"saw {sorted(timelines) or 'none'}"
            )
        timelines = {args.policy: timelines[args.policy]}
    if not timelines:
        raise ConfigurationError("no quorum decisions in the trace")
    rows = []
    for policy, timeline in sorted(timelines.items()):
        rows.append([
            policy, timeline.unit, timeline.decisions,
            f"{timeline.start:g}..{timeline.end:g}",
            len(timeline.down_spans),
            round(timeline.unavailable_time(), 6),
            round(timeline.unavailability(), 6),
        ])
    print(ascii_table(
        ["policy", "unit", "decisions", "window", "outages",
         "down", "unavailability"],
        rows,
    ))
    for policy, timeline in sorted(timelines.items()):
        downs = timeline.down_spans
        if not downs:
            continue
        print(f"\n{policy} unavailable spans ({timeline.unit}):")
        shown = downs[:20]
        print(ascii_table(
            ["start", "end", "duration"],
            [[span.start, span.end, span.duration] for span in shown],
        ))
        if len(downs) > len(shown):
            print(f"... and {len(downs) - len(shown)} more")
    if args.json_out:
        _write_json_out(args.json_out, {
            "format": "repro-trace-timelines",
            "version": 1,
            "timelines": [
                timelines[policy].to_dict() for policy in sorted(timelines)
            ],
        })
    return 0


def _cmd_analyze_audit(args: argparse.Namespace) -> int:
    from repro.experiments.report import ascii_table
    from repro.obs.analysis import RecordStream, audit_trace

    if args.limit < 0:
        raise ConfigurationError(f"--limit must be >= 0, got {args.limit}")
    total = 0
    by_rule: dict[str, int] = {}
    kept = []
    for denial in audit_trace(RecordStream.from_jsonl(args.trace)):
        total += 1
        by_rule[denial.rule] = by_rule.get(denial.rule, 0) + 1
        if len(kept) < args.limit:
            kept.append(denial)
    if total == 0:
        print("no denied quorum decisions in the trace")
        if args.json_out:
            _write_json_out(args.json_out, {
                "format": "repro-trace-audit", "version": 1,
                "denials": 0, "by_rule": {}, "explanations": [],
            })
        return 0
    for denial in kept:
        where = f"t={denial.time:g}" if denial.time is not None else \
            f"seq={denial.seq}"
        print(f"[{where}] {denial.policy} denied — {denial.rule}")
        print(f"    {denial.explanation}")
        if denial.topological_note:
            print(f"    ({denial.topological_note})")
    if total > len(kept):
        print(f"... and {total - len(kept)} more "
              "(raise --limit or use --json-out)")
    print()
    print(ascii_table(
        ["rule", "denials"],
        sorted(by_rule.items(), key=lambda kv: (-kv[1], kv[0])),
    ))
    if args.json_out:
        _write_json_out(args.json_out, {
            "format": "repro-trace-audit",
            "version": 1,
            "denials": total,
            "by_rule": dict(sorted(by_rule.items())),
            "explanations": [denial.to_dict() for denial in kept],
        })
    return 0


def _scenario_records(path: str, policy: str):
    """Replay *path* under *policy*, returning the decision records."""
    from repro.experiments.scenarios import load_scenario, run_scenario
    from repro.experiments.testbed import testbed_topology
    from repro.obs.tracer import MemorySink, Tracer

    spec = load_scenario(path)
    sink = MemorySink(capacity=1_000_000)
    tracer = Tracer(sink, scenario=spec.name)
    run_scenario(
        testbed_topology(), spec.copy_sites, policy, spec.steps,
        initial=spec.initial, tracer=tracer,
    )
    return [record.to_dict() for record in sink.records]


def _cmd_analyze_diff(args: argparse.Namespace) -> int:
    from repro.experiments.report import ascii_table
    from repro.obs.analysis import RecordStream, diff_traces, explain_denial

    if args.scenario is not None:
        if args.traces:
            raise ConfigurationError(
                "give either two trace files or --scenario, not both"
            )
        policies = [p.strip() for p in args.policies.split(",") if p.strip()]
        if len(policies) != 2:
            raise ConfigurationError(
                f"--policies needs exactly two names, got {policies}"
            )
        known = available_policies()
        for name in policies:
            if name not in known:
                raise ConfigurationError(
                    f"unknown policy {name!r} in --policies; "
                    f"choose from {', '.join(sorted(known))}"
                )
        print(f"replaying {args.scenario} under {policies[0]} "
              f"and {policies[1]} ...", file=sys.stderr)
        records_a = _scenario_records(args.scenario, policies[0])
        records_b = _scenario_records(args.scenario, policies[1])
    else:
        if len(args.traces) != 2:
            raise ConfigurationError(
                "diff needs two JSONL traces (or --scenario FILE)"
            )
        records_a = RecordStream.from_jsonl(args.traces[0])
        records_b = RecordStream.from_jsonl(args.traces[1])
    diff = diff_traces(records_a, records_b)
    print(f"{diff.policy_a} vs {diff.policy_b}: {diff.aligned} aligned "
          f"decisions, {diff.agreements} agree, {diff.divergent} diverge")
    if diff.only_a or diff.only_b:
        print(f"unaligned decision points: {diff.only_a} only in "
              f"{diff.policy_a}, {diff.only_b} only in {diff.policy_b}")
    first = diff.first_divergence
    if first is None:
        print("the protocols agree on every aligned decision")
    else:
        where = f"position {first.position:g}"
        if first.action:
            where += f" ({first.action})"
        print(f"\nfirst divergence at {where}:")
        for policy, decision in (
            (diff.policy_a, first.a), (diff.policy_b, first.b),
        ):
            verdict = "GRANTED" if decision.granted else "DENIED"
            print(f"  {policy:<5} {verdict}: {decision.explain()}")
            if not decision.granted:
                note = explain_denial(decision.record).topological_note
                if note:
                    print(f"        ({note})")
        if len(diff.divergences) > 1:
            print()
            print(ascii_table(
                ["position", "action", diff.policy_a, diff.policy_b],
                [
                    [
                        f"{d.position:g}", d.action or "-",
                        "granted" if d.a.granted else "denied",
                        "granted" if d.b.granted else "denied",
                    ]
                    for d in diff.divergences
                ],
            ))
    if args.json_out:
        _write_json_out(args.json_out, diff.to_dict())
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    command = args.analyze_command
    if command == "summary":
        return _cmd_analyze_summary(args)
    if command == "timeline":
        return _cmd_analyze_timeline(args)
    if command == "audit":
        return _cmd_analyze_audit(args)
    if command == "diff":
        return _cmd_analyze_diff(args)
    raise ConfigurationError(  # pragma: no cover - argparse enforces choices
        f"unknown analyze command {command!r}"
    )


def _chaos_schedule_from_args(args: argparse.Namespace, seed: int):
    """Build a schedule from CLI knobs (run, and replay --seed)."""
    from repro.chaos import ChaosPolicy, build_schedule
    from repro.experiments.testbed import testbed_topology

    chaos = ChaosPolicy(
        unsafe_partial_commits=getattr(args, "unsafe_partial_commits", False)
    )
    placement = configuration(args.config)
    return build_schedule(
        seed,
        placement.copy_sites,
        testbed_topology().site_ids,
        policy=chaos,
        length=args.steps,
        config=placement.key,
    )


def _print_chaos_violation(result) -> None:
    """The violation report: what broke, the evidence, the first
    decision where the run left the safe path (PR-2 diff analytics)."""
    from repro.chaos import explain_divergence
    from repro.obs.analysis import explain_violation

    violation = result.violation
    print(f"\nVIOLATION: {violation}")
    print(f"  {explain_violation(violation.to_dict())}")
    diff = explain_divergence(result)
    if diff is None:
        return
    reference = ("fault-free run" if diff.policy_a == diff.policy_b
                 else diff.policy_b)
    first = diff.first_divergence
    if first is None:
        print(f"  no divergent quorum decision vs the {reference} "
              "(the violation is in the commit path, not a decision)")
        return
    print(f"  first divergence from the {reference} at schedule step "
          f"{first.position:g}:")
    for policy, decision in ((diff.policy_a, first.a),
                             (diff.policy_b, first.b)):
        verdict = "GRANTED" if decision.granted else "DENIED"
        print(f"    {policy:<10} {verdict}: {decision.explain()}")


def _print_chaos_result(result, out: Optional[str]) -> None:
    schedule = result.schedule
    print(f"chaos run: policy {result.policy}, seed {schedule.seed}, "
          f"config {schedule.config}, {len(schedule.steps)} steps")
    print(f"  {result.operations} operations: {result.granted} granted, "
          f"{result.denied} denied, {result.aborted} aborted")
    print(f"  {result.faults_injected} faults injected, "
          f"{result.messages_sent} messages, "
          f"{result.stale_commits} stale commits tolerated"
          + (f" -> {out}" if out else ""))


def _cmd_chaos_run(args: argparse.Namespace) -> int:
    from repro.chaos import run_schedule
    from repro.obs.tracer import JsonlSink

    schedule = _chaos_schedule_from_args(args, args.seed)
    if args.save_schedule:
        from repro.failures.serialization import dump_chaos_schedule

        dump_chaos_schedule(schedule, args.save_schedule,
                            protocol=args.policy)
        print(f"schedule written to {args.save_schedule}", file=sys.stderr)
    sink = None
    if args.out:
        try:
            sink = JsonlSink(args.out)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot write trace to {args.out}: {exc}"
            ) from exc
    try:
        result = run_schedule(schedule, args.policy, sink=sink)
    finally:
        if sink is not None:
            sink.close()
    _print_chaos_result(result, args.out)
    if result.ok:
        print("  OK: every safety invariant held")
    else:
        _print_chaos_violation(result)
    if args.json_out:
        _write_json_out(args.json_out, result.to_dict())
    if getattr(args, "record", False):
        _record_note(_registry(args).record_chaos(result,
                                                  command="chaos run"))
    return 0 if result.ok else 1


def _cmd_chaos_sweep(args: argparse.Namespace) -> int:
    from repro.chaos import ChaosPolicy, run_sweep
    from repro.experiments.report import ascii_table

    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    if not policies:
        raise ConfigurationError("--policies named no protocols")
    seeds = 8 if args.quick else args.seeds
    if seeds < 1:
        raise ConfigurationError(f"--seeds must be >= 1, got {seeds}")
    chaos = ChaosPolicy(
        unsafe_partial_commits=args.unsafe_partial_commits
    )
    print(f"chaos sweep: {len(policies)} policies x {seeds} seeds "
          f"({len(policies) * seeds} schedules of {args.steps} steps, "
          f"config {args.config}) ...", file=sys.stderr)
    bus, live_session = _start_live(args, "chaos sweep", {
        "policies": policies,
        "seeds": seeds,
        "config": args.config,
        "steps": args.steps,
        "unsafe_partial_commits": args.unsafe_partial_commits,
    })
    try:
        report = run_sweep(
            policies=policies,
            seeds=range(seeds),
            config=args.config,
            steps=args.steps,
            chaos=chaos,
            bus=bus,
        )
    except BaseException:
        if live_session is not None:
            live_session.finish("failed")
        raise
    if live_session is not None:
        live_session.finish("finished")
    rows = [
        [
            row.policy, row.runs, row.operations, row.granted, row.denied,
            row.aborted, row.faults_injected, len(row.violations),
        ]
        for row in report.rows
    ]
    print(ascii_table(
        ["policy", "runs", "ops", "granted", "denied", "aborted",
         "faults", "violations"],
        rows,
    ))
    print(f"\n{report.total_runs} runs, "
          f"{report.total_violations} invariant violations")
    for row in report.rows:
        if row.first_violation is not None:
            _print_chaos_violation(row.first_violation)
    if args.json_out:
        _write_json_out(args.json_out, report.to_dict())
    return 0 if report.ok else 1


def _cmd_chaos_replay(args: argparse.Namespace) -> int:
    from repro.chaos import run_schedule
    from repro.obs.tracer import JsonlSink

    protocol = args.policy
    if args.schedule is not None:
        from repro.chaos import ChaosSchedule
        from repro.failures.serialization import load_chaos_document

        document = load_chaos_document(args.schedule)
        schedule = ChaosSchedule.from_dict(document)
        if protocol is None:
            protocol = document.get("protocol")
    elif args.seed is not None:
        schedule = _chaos_schedule_from_args(args, args.seed)
    else:
        raise ConfigurationError(
            "replay needs --schedule FILE or --seed N"
        )
    if protocol is None:
        protocol = "LDV"
    sink = None
    if args.out:
        try:
            sink = JsonlSink(args.out)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot write trace to {args.out}: {exc}"
            ) from exc
    try:
        result = run_schedule(schedule, protocol, sink=sink)
    finally:
        if sink is not None:
            sink.close()
    _print_chaos_result(result, args.out)
    if result.ok:
        print("  no invariant violation reproduced")
    else:
        _print_chaos_violation(result)
    if args.json_out:
        _write_json_out(args.json_out, result.to_dict())
    if getattr(args, "record", False):
        _record_note(_registry(args).record_chaos(result,
                                                  command="chaos replay"))
    return 0 if result.ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    command = args.chaos_command
    if command == "run":
        return _cmd_chaos_run(args)
    if command == "sweep":
        return _cmd_chaos_sweep(args)
    if command == "replay":
        return _cmd_chaos_replay(args)
    raise ConfigurationError(  # pragma: no cover - argparse enforces choices
        f"unknown chaos command {command!r}"
    )


def _cmd_profile(args: argparse.Namespace) -> int:
    """Profile a scenario / study / chaos workload (``repro profile``)."""
    import pathlib

    from repro.obs.prof import PhaseProfiler, run_profiled

    phases = PhaseProfiler()
    command = args.profile_command
    if command == "scenario":
        from repro.experiments.scenarios import load_scenario, run_scenario
        from repro.experiments.testbed import testbed_topology

        spec = load_scenario(args.file)
        policy = args.policy if args.policy is not None else spec.policy
        topology = testbed_topology()

        def workload():
            with phases.phase("scenario", policy=policy):
                return run_scenario(
                    topology, spec.copy_sites, policy, spec.steps,
                    initial=spec.initial,
                )

        target = f"scenario:{spec.name} ({policy})"
    elif command == "study":
        if args.horizon is None:
            # A profiled study defaults to a short horizon: cProfile
            # multiplies the replay cost several-fold, and hot spots
            # show at 4000 days just as well as at 40000.
            args.horizon = 4000.0
        params = _params(args)
        configs = [configuration(key.strip())
                   for key in args.configs.split(",") if key.strip()]
        if not configs:
            raise ConfigurationError("--configs named no configurations")
        policies = [name.strip()
                    for name in args.policies.split(",") if name.strip()]
        known = available_policies()
        for name in policies:
            if name not in known:
                raise ConfigurationError(
                    f"unknown policy {name!r} in --policies; choose "
                    f"from {', '.join(sorted(known))}"
                )
        if not policies:
            raise ConfigurationError("--policies named no protocols")

        def workload():
            with phases.phase("study"):
                return run_study(params, configurations=configs,
                                 policies=policies, profiler=phases)

        target = (f"study:{len(configs)}x{len(policies)} cells, "
                  f"{params.horizon:g} days")
    elif command == "chaos":
        from repro.chaos import run_schedule

        schedule = _chaos_schedule_from_args(args, args.seed)

        def workload():
            with phases.phase("chaos", policy=args.policy):
                return run_schedule(schedule, args.policy,
                                    profiler=phases)

        target = (f"chaos:seed={args.seed} {args.policy} "
                  f"x{args.steps} steps")
    else:  # pragma: no cover - argparse enforces choices
        raise ConfigurationError(f"unknown profile command {command!r}")

    if args.interval <= 0:
        raise ConfigurationError(
            f"--interval must be > 0 ms, got {args.interval}"
        )
    _, report = run_profiled(
        workload, target, engine=args.engine,
        interval=args.interval / 1000.0, top=args.top, phases=phases,
    )
    text = report.format_text(args.top)
    if args.out:
        try:
            pathlib.Path(args.out).write_text(text + "\n")
        except OSError as exc:
            raise ConfigurationError(
                f"cannot write {args.out}: {exc}"
            ) from exc
        print(f"report written to {args.out}", file=sys.stderr)
    else:
        print(text)
    if args.collapsed:
        try:
            pathlib.Path(args.collapsed).write_text(
                "\n".join(report.collapsed) + "\n"
            )
        except OSError as exc:
            raise ConfigurationError(
                f"cannot write {args.collapsed}: {exc}"
            ) from exc
        print(f"{len(report.collapsed)} collapsed stacks written to "
              f"{args.collapsed} (flamegraph.pl / speedscope ready)",
              file=sys.stderr)
    if args.json_out:
        _write_json_out(args.json_out, report.to_dict())
    if getattr(args, "record", False):
        _record_note(_registry(args).record_profile(
            report.to_dict(), command=f"profile {command}", label=target,
        ))
    return 0


def _bench_full_suite() -> list:
    """Run the pytest-benchmark suite; returns its BenchmarkStats."""
    import json
    import os
    import pathlib
    import subprocess
    import tempfile

    from repro.obs.prof import ingest_pytest_benchmark

    src = str(pathlib.Path(__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    print("running the pytest-benchmark suite "
          "(--quick records the smoke subset in seconds) ...",
          file=sys.stderr)
    with tempfile.TemporaryDirectory() as tmp:
        out = pathlib.Path(tmp) / "benchmark.json"
        result = subprocess.run(
            [sys.executable, "-m", "pytest", "benchmarks/",
             "--benchmark-only", f"--benchmark-json={out}", "-q"],
            env=env,
        )
        if result.returncode != 0 or not out.exists():
            raise ReproError(
                f"pytest-benchmark run failed (exit {result.returncode})"
            )
        document = json.loads(out.read_text())
    return ingest_pytest_benchmark(document)


def _cmd_bench_record(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from repro.obs.prof import (
        build_point,
        ingest_pytest_benchmark,
        next_trajectory_path,
        run_quick,
    )

    if args.quick and args.from_json:
        raise ConfigurationError("give --quick or --from-json, not both")
    if args.rounds < 1:
        raise ConfigurationError(
            f"--rounds must be >= 1, got {args.rounds}"
        )
    if args.from_json:
        source_path = pathlib.Path(args.from_json)
        try:
            document = json.loads(source_path.read_text())
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read {source_path}: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{source_path} is not JSON: {exc}"
            ) from exc
        stats = ingest_pytest_benchmark(document)
        source = "pytest-benchmark"
    elif args.quick:
        print(f"timing the quick subset ({args.rounds} rounds each) ...",
              file=sys.stderr)
        stats = run_quick(args.rounds)
        source = "quick"
    else:
        stats = _bench_full_suite()
        source = "pytest-benchmark"
    if args.out:
        index, target = None, pathlib.Path(args.out)
    else:
        index, target = next_trajectory_path(args.dir)
    point = build_point(stats, source, index=index, note=args.note)
    try:
        target.write_text(json.dumps(point, indent=2) + "\n")
    except OSError as exc:
        raise ConfigurationError(f"cannot write {target}: {exc}") from exc
    label = f"point #{index}" if index is not None else "point"
    print(f"trajectory {label} written to {target} "
          f"({len(stats)} benchmarks, source {source})")
    if getattr(args, "record", False):
        _record_note(_registry(args).record_bench(point,
                                                  command="bench record"))
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.experiments.report import ascii_table
    from repro.obs.prof import (
        compare_points,
        latest_trajectory_path,
        load_point,
    )

    baseline = load_point(args.baseline)
    current_path = args.current
    if current_path is None:
        found = latest_trajectory_path(args.dir)
        if found is None:
            raise ConfigurationError(
                f"no BENCH_<n>.json in {args.dir}; name the current "
                "point explicitly"
            )
        current_path = str(found)
    current = load_point(current_path)
    comparison = compare_points(
        baseline, current,
        max_regression=args.max_regression,
        iqr_factor=args.iqr_factor,
        ignore_fingerprint=args.ignore_fingerprint,
    )
    print(f"baseline {args.baseline}  vs  current {current_path}")
    if comparison.status == "incomparable":
        print("incomparable: the points come from different "
              "interpreters or machines:")
        for key in ("implementation", "python", "machine"):
            print(f"  {key}: {comparison.baseline_fingerprint.get(key)}"
                  f" vs {comparison.current_fingerprint.get(key)}")
        print("re-record on one machine, or pass --ignore-fingerprint "
              "with a --max-regression wide enough for the difference")
        if args.json_out:
            _write_json_out(args.json_out, comparison.to_dict())
        return 1
    rows = [
        [
            row.name, row.verdict,
            "-" if row.baseline_median is None
            else f"{row.baseline_median:.6f}",
            "-" if row.current_median is None
            else f"{row.current_median:.6f}",
            "-" if row.ratio is None else f"{row.ratio:.3f}x",
        ]
        for row in comparison.rows
    ]
    print(ascii_table(
        ["benchmark", "verdict", "base median(s)", "cur median(s)",
         "ratio"],
        rows,
    ))
    if not comparison.fingerprint_matches:
        print("note: fingerprints differ; comparing anyway "
              "(--ignore-fingerprint)", file=sys.stderr)
    regressions = comparison.regressions
    if regressions:
        print(f"\nREGRESSION: {len(regressions)} benchmark(s) slowed "
              f"by more than {comparison.max_regression:.0%} beyond "
              "noise:")
        for row in regressions:
            print(f"  {row.name}: {row.baseline_median:.6f}s -> "
                  f"{row.current_median:.6f}s ({row.ratio:.2f}x)")
    else:
        print(f"\nok: no regression beyond "
              f"{comparison.max_regression:.0%} + noise")
    if args.json_out:
        _write_json_out(args.json_out, comparison.to_dict())
    return 1 if comparison.status != "ok" else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    command = args.bench_command
    if command == "record":
        return _cmd_bench_record(args)
    if command == "compare":
        return _cmd_bench_compare(args)
    raise ConfigurationError(  # pragma: no cover - argparse enforces choices
        f"unknown bench command {command!r}"
    )


def _parse_peer_spec(spec: str) -> dict:
    """``'2=host:port,3=host:port'`` → ``{site: (host, port)}``."""
    peers: dict[int, tuple] = {}
    for token in (spec or "").split(","):
        token = token.strip()
        if not token:
            continue
        try:
            site_part, address = token.split("=", 1)
            host, port = address.rsplit(":", 1)
            peers[int(site_part)] = (host, int(port))
        except ValueError as exc:
            raise ConfigurationError(
                f"bad peer spec {token!r} (want site=host:port): {exc}"
            ) from exc
    return peers


def _cmd_service_replica(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.cluster import parse_segments
    from repro.service.replica import ReplicaConfig, serve_replica

    config = ReplicaConfig(
        site_id=args.site,
        host=args.host,
        port=args.port,
        data_dir=args.data_dir,
        peers=_parse_peer_spec(args.peers),
        policy=args.policy,
        segments=parse_segments(args.segments),
        fsync=args.fsync,
        compact_every=args.compact_every,
        lease_s=args.lease,
        peer_timeout=args.peer_timeout,
        recover_interval=args.recover_interval,
        trace=args.trace,
    )
    try:
        asyncio.run(serve_replica(config))
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_service_cluster(args: argparse.Namespace) -> int:
    import time

    from repro.service.cluster import ClusterSpec, LocalCluster

    spec = ClusterSpec(
        directory=args.dir,
        replicas=args.replicas,
        policy=args.policy,
        fsync=args.fsync,
        proxy=not args.no_proxy,
        segments=args.segments,
        trace=args.trace,
    )
    cluster = LocalCluster(spec)
    cluster.start()
    addresses = ", ".join(
        f"{host}:{port}" for host, port in cluster.client_addresses)
    print(f"cluster of {args.replicas} {args.policy} replica(s) under "
          f"{cluster.root} — clients connect to {addresses} "
          "(Ctrl-C to stop; 'repro service kill <site>' for chaos)",
          file=sys.stderr)
    try:
        while True:
            time.sleep(0.5)
    except KeyboardInterrupt:
        print("stopping cluster", file=sys.stderr)
    finally:
        cluster.stop()
    return 0


def _print_service_summary(document: dict) -> None:
    for policy, doc in sorted(document.get("policies", {}).items()):
        load = doc.get("load", {})
        mark = "ok" if doc.get("ok") else "FAILED"
        print(f"{policy}: {mark}, {load.get('operations', 0)} ops, "
              f"{len(doc.get('kills', []))} kill(s), "
              f"{sum(1 for f in doc.get('faults', []) if f.get('verb') == 'partition')} "
              f"partition(s), {len(doc.get('violations', []))} "
              "violation(s)")
        for op, outcomes in sorted(load.get("latency", {}).items()):
            for outcome, hist in sorted(outcomes.items()):
                print(f"  {op}/{outcome}: n={hist.get('count', 0)} "
                      f"p50={hist.get('p50', 0) * 1000:.1f}ms "
                      f"p95={hist.get('p95', 0) * 1000:.1f}ms "
                      f"p99={hist.get('p99', 0) * 1000:.1f}ms")
        for op, table in sorted(load.get("availability", {}).items()):
            outcomes = " ".join(
                f"{name}={count}" for name, count in sorted(
                    table.get("outcomes", {}).items()))
            print(f"  {op}: ok_rate={table.get('ok_rate', 0):.3f} "
                  f"({outcomes})")
        traces = doc.get("traces")
        if traces:
            print(f"  traces: {traces.get('traces', 0)} recorded, "
                  f"{traces.get('sampled', 0)} exemplar(s) kept "
                  f"({traces.get('spans', 0)} spans)")
        scrape = doc.get("scrape")
        if scrape:
            print(f"  scrape: {scrape.get('scrapes', 0)} round(s) over "
                  f"{scrape.get('targets', 0)} target(s), "
                  f"{scrape.get('failures', 0)} failure(s)")
        alerts = doc.get("alerts")
        if alerts:
            events = alerts.get("events", [])
            firing = alerts.get("firing", [])
            fired = sorted({e.get("alert") for e in events
                            if e.get("state") == "firing"})
            print(f"  alerts: {len(events)} edge(s)"
                  + (f", fired: {', '.join(fired)}" if fired else "")
                  + (f", STILL FIRING: {', '.join(firing)}"
                     if firing else ""))


def _cmd_service_bench(args: argparse.Namespace) -> int:
    import json
    import shutil
    import tempfile

    from repro.service.bench import BenchOptions, run_bench

    policies = tuple(token.strip().upper()
                     for token in args.policies.split(",")
                     if token.strip())
    directory = args.dir
    temporary = directory is None
    if temporary:
        directory = tempfile.mkdtemp(prefix="repro-service-")
    options = BenchOptions(
        directory=directory,
        policies=policies,
        replicas=args.replicas,
        duration=args.duration,
        seed=args.seed,
        workers=args.workers,
        write_ratio=args.write_ratio,
        fsync=args.fsync,
        segments=args.segments,
        drop_rate=args.drop_rate,
        delay_rate=args.delay_rate,
        min_kills=args.kills,
        min_partitions=args.partitions,
        trace=args.trace,
        trace_exemplars=args.trace_exemplars,
        scrape_interval=args.scrape_interval,
        availability_target=args.availability_target,
    )
    bus, session = _start_live(args, "service bench", {
        "policies": ",".join(policies),
        "replicas": args.replicas,
        "duration": args.duration,
        "seed": args.seed,
    })
    try:
        document, samples, traces = run_bench(options, bus=bus)
    except BaseException:
        if session is not None:
            session.finish(status="failed")
        raise
    run_id = None
    if getattr(args, "record", False):
        record = _registry(args).record_service(
            document, command="service bench", samples=samples,
            traces=traces, tsdb=document.get("tsdb"))
        _record_note(record)
        run_id = record.run_id
    if session is not None:
        session.finish(
            status="finished" if document["ok"] else "failed",
            run_id=run_id)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
    _print_service_summary(document)
    if document["ok"]:
        if temporary:
            shutil.rmtree(directory, ignore_errors=True)
        return 0
    print(f"service bench FAILED; cluster state kept under {directory}",
          file=sys.stderr)
    return 1


def _cmd_service_kill(args: argparse.Namespace) -> int:
    import os
    import signal

    from repro.service.cluster import load_control

    control = load_control(args.dir)
    site = (control.get("sites") or {}).get(str(args.site))
    if not site or not site.get("pid"):
        raise ConfigurationError(
            f"no live pid for site {args.site} under {args.dir}"
        )
    try:
        os.kill(int(site["pid"]), signal.SIGKILL)
    except (OSError, ValueError) as exc:
        raise ConfigurationError(
            f"cannot SIGKILL pid {site['pid']}: {exc}"
        ) from exc
    print(f"sent SIGKILL to site {args.site} (pid {site['pid']})")
    return 0


def _cmd_service_trace(args: argparse.Namespace) -> int:
    from repro.obs.dtrace.collect import build_traces, read_span_log
    from repro.obs.dtrace.render import text_waterfall

    registry = _registry(args)
    if args.run == "latest":
        record = registry.latest(kind="service")
        if record is None:
            raise ConfigurationError(
                "no service runs recorded under this registry")
    else:
        record = registry.resolve(args.run)
    sidecar = registry.traces_path(record.run_id)
    if not sidecar.exists():
        raise ConfigurationError(
            f"run {record.run_id} has no trace sidecar — was the bench "
            "run with --trace --record?"
        )
    records, skipped = read_span_log(sidecar)
    traces = build_traces(records)
    if skipped:
        print(f"({skipped} unparseable span line(s) skipped)",
              file=sys.stderr)
    shown = 0
    for trace_id in sorted(traces):
        trace = traces[trace_id]
        if args.trace_id and not trace_id.startswith(args.trace_id):
            continue
        if args.outcome and trace.outcome() != args.outcome:
            continue
        if shown:
            print()
        print(text_waterfall(trace, events=not args.no_events))
        shown += 1
    if not shown:
        print("no traces matched", file=sys.stderr)
        return 1
    return 0


def _cmd_service(args: argparse.Namespace) -> int:
    command = args.service_command
    if command == "replica":
        return _cmd_service_replica(args)
    if command == "cluster":
        return _cmd_service_cluster(args)
    if command == "bench":
        return _cmd_service_bench(args)
    if command == "kill":
        return _cmd_service_kill(args)
    if command == "trace":
        return _cmd_service_trace(args)
    raise ConfigurationError(  # pragma: no cover - argparse enforces choices
        f"unknown service command {command!r}"
    )


def _metrics_store(args: argparse.Namespace):
    """Resolve ``repro metrics`` source args to an open store."""
    import pathlib

    from repro.obs.tsdb import TimeSeriesStore

    if args.tsdb is not None:
        directory = pathlib.Path(args.tsdb)
        if not directory.is_dir():
            raise ConfigurationError(
                f"no time-series store at {directory}"
            )
        return TimeSeriesStore(directory)
    registry = _registry(args)
    if args.run == "latest":
        record = registry.latest(kind="service")
        if record is None:
            raise ConfigurationError(
                "no service runs recorded under this registry")
    else:
        record = registry.resolve(args.run)
    directory = registry.tsdb_path(record.run_id)
    if not directory.is_dir():
        raise ConfigurationError(
            f"run {record.run_id} has no time-series sidecar — was the "
            "bench run with --scrape-interval and --record?"
        )
    return TimeSeriesStore(directory)


def _metrics_samples(args: argparse.Namespace, store) -> list:
    samples = list(store.samples())
    if args.policy is not None:
        samples = [sample for sample in samples
                   if sample.labels.get("policy") == args.policy]
    return samples


def _format_metric_value(value) -> str:
    return "-" if value is None else f"{value:.6g}"


def _cmd_metrics_query(args: argparse.Namespace) -> int:
    import json

    from repro.obs.tsdb import run_query

    store = _metrics_store(args)
    samples = _metrics_samples(args, store)
    result = run_query(samples, args.selector, args.fn,
                       window=args.window, at=args.at)
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if not result["results"]:
        print(f"no series matched {args.selector!r}", file=sys.stderr)
        return 1
    name, _ = args.selector.split("{", 1) if "{" in args.selector \
        else (args.selector, "")
    for row in result["results"]:
        labels = ",".join(f'{key}="{value}"'
                          for key, value in sorted(row["labels"].items()))
        print(f"{name.strip()}{{{labels}}} "
              f"{_format_metric_value(row['value'])} "
              f"({row['points']} point(s))")
    if result.get("merged") is not None:
        print(f"merged {args.fn}: {result['merged']:.6g}")
    return 0


def _cmd_metrics_alerts(args: argparse.Namespace) -> int:
    import json

    from repro.obs.tsdb import AlertEngine, default_rules

    store = _metrics_store(args)
    samples = _metrics_samples(args, store)
    engine = AlertEngine(store,
                         default_rules(args.duration, target=args.target))
    # Replay: evaluate at every scrape instant, in order, so the
    # firing/resolved history a live run produced is reconstructed
    # from the stored series alone.
    for instant in sorted({sample.at for sample in samples}):
        engine.evaluate(samples=samples, now=instant)
    summary = engine.summary()
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if not summary["events"]:
        print("no alert transitions over the stored series")
        return 0
    for event in summary["events"]:
        mark = "FIRING " if event["state"] == "firing" else "resolved"
        extra = ""
        if "burn_fast" in event:
            extra = (f" burn fast={event['burn_fast']:g} "
                     f"slow={event['burn_slow']:g}")
        elif event.get("value") is not None:
            extra = (f" {event.get('quantile', 'value')}="
                     f"{event['value']:g} > {event.get('threshold')}")
        if "after_seconds" in event:
            extra += f" (after {event['after_seconds']:g}s)"
        print(f"{event['at']:.3f} {mark} {event['alert']} "
              f"[{event['severity']}]{extra}")
    if summary["firing"]:
        print(f"still firing: {', '.join(summary['firing'])}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    command = args.metrics_command
    if command == "query":
        return _cmd_metrics_query(args)
    if command == "alerts":
        return _cmd_metrics_alerts(args)
    raise ConfigurationError(  # pragma: no cover - argparse enforces choices
        f"unknown metrics command {command!r}"
    )


def _registry(args: argparse.Namespace):
    """The run registry named by ``--runs-dir`` (or the default root)."""
    from repro.obs.registry import RunRegistry

    return RunRegistry(getattr(args, "runs_dir", None))


def _start_live(args: argparse.Namespace, command: str,
                parameters: dict) -> tuple:
    """A ``(bus, session)`` pair when ``--live`` was given, else
    ``(None, None)`` — the no-bus path costs nothing downstream."""
    if not getattr(args, "live", False):
        return None, None
    from repro.obs.live import TelemetryBus
    from repro.obs.live.stream import LiveSession

    registry = _registry(args)
    bus = TelemetryBus()
    try:
        session = LiveSession.start(registry.root, command, parameters)
    except OSError as exc:
        raise ConfigurationError(
            f"cannot start a live session under {registry.root}: {exc}"
        ) from exc
    session.attach(bus)
    print(f"live session {session.live_id} -> {session.stream_path} "
          f"(follow with 'repro watch {session.live_id[:8]}' or the "
          "/live page of 'repro serve')", file=sys.stderr)
    return bus, session


def _format_live_event(event: dict) -> str:
    """One ``live.jsonl`` event as a terminal line."""
    seq = event.get("seq", "?")
    kind = event.get("kind", "?")
    detail = " ".join(
        f"{key}={value}"
        for key, value in sorted(event.items())
        if key not in ("seq", "kind", "at") and value is not None
    )
    return f"[{seq:>5}] {kind:<20} {detail}"


def _cmd_watch(args: argparse.Namespace) -> int:
    import time

    from repro.obs.live.stream import LiveTail

    registry = _registry(args)
    session = registry.resolve_live(args.session)
    offset = 0
    if not args.from_start:
        try:
            offset = session.stream_path.stat().st_size
        except OSError:
            offset = 0
    print(f"watching live session {session.live_id} "
          f"({session.descriptor.get('command', '?')}, "
          f"{session.status}) under {registry.root}", file=sys.stderr)
    deadline = None
    if args.timeout is not None:
        deadline = time.monotonic() + args.timeout
    tail = LiveTail(session.stream_path, offset=offset)
    try:
        while True:
            events = tail.poll()
            for event in events:
                print(_format_live_event(event))
            if events:
                continue
            session.refresh()
            if session.status != "running":
                for event in tail.poll():  # drain the final writes
                    print(_format_live_event(event))
                run_id = session.descriptor.get("run_id")
                print(f"session {session.status}"
                      + (f"; recorded as run {run_id}" if run_id else ""),
                      file=sys.stderr)
                return 1 if session.status == "failed" else 0
            if deadline is not None and time.monotonic() >= deadline:
                print(f"gave up after {args.timeout:g}s: session "
                      "is still running", file=sys.stderr)
                return 1
            time.sleep(max(args.interval, 0.05))
    except KeyboardInterrupt:
        print("stopped", file=sys.stderr)
        return 0
    finally:
        tail.close()


def _record_note(record) -> None:
    print(f"recorded {record.kind} run {record.run_id} -> {record.path}",
          file=sys.stderr)


def _cmd_runs_list(args: argparse.Namespace) -> int:
    import time

    from repro.experiments.report import ascii_table
    from repro.obs.serve.cache import SummaryCache, query_cards

    registry = _registry(args)
    cache = SummaryCache(registry)
    watch = getattr(args, "watch", None)
    if watch is not None and watch <= 0:
        raise ConfigurationError(
            f"--watch must be a positive number of seconds, got {watch:g}"
        )
    repaints = 0

    def paint() -> None:
        cards = cache.cards()
        total, page = query_cards(
            cards, kind=args.kind, sort=args.sort,
            limit=args.limit, offset=args.offset,
        )
        if not page:
            print(f"no runs recorded under {registry.root}"
                  if not cards else
                  f"no runs match (of {len(cards)} under "
                  f"{registry.root})")
            return
        rows = [
            [
                card["run_id"], card["kind"],
                card["created_at"].split("T")[0],
                card["caption"],
            ]
            for card in page
        ]
        print(ascii_table(["run", "kind", "recorded", "summary"], rows))
        if len(page) != total:
            print(f"{len(page)} of {total} run(s) under {registry.root}")
        else:
            print(f"{total} run(s) under {registry.root}")

    try:
        while True:
            if repaints and sys.stdout.isatty():
                print("\x1b[2J\x1b[H", end="")
            elif repaints:
                print()
            paint()
            repaints += 1
            if watch is None:
                return 0
            count = getattr(args, "watch_count", None)
            if count is not None and repaints >= count:
                return 0
            sys.stdout.flush()
            time.sleep(watch)
    except KeyboardInterrupt:
        print("stopped", file=sys.stderr)
        return 0


def _cmd_runs_show(args: argparse.Namespace) -> int:
    registry = _registry(args)
    record = registry.resolve(args.run)
    print(f"run {record.run_id} ({record.kind}) — {record.command}")
    print(f"  recorded:  {record.created_at}")
    print(f"  directory: {record.path}")
    if record.lineage:
        print("  lineage:")
        for key, value in sorted(record.lineage.items()):
            print(f"    {key}: {value}")
    if record.summary:
        print("  summary:")
        for key, value in sorted(record.summary.items()):
            print(f"    {key}: {value}")
    if record.artifacts:
        print("  artifacts:")
        for name in sorted(record.artifacts):
            path = record.artifact_path(name)
            try:
                size = path.stat().st_size
            except OSError:
                size = None
            detail = f"{size} bytes" if size is not None else "missing"
            print(f"    {name}: {path.name} ({detail})")
    if args.json_out:
        _write_json_out(args.json_out, record.to_dict())
    return 0


def _cmd_runs_diff(args: argparse.Namespace) -> int:
    from repro.obs.registry import diff_runs, format_diff

    registry = _registry(args)
    baseline = registry.resolve(args.baseline)
    current = registry.resolve(args.current)
    diff = diff_runs(
        baseline, current,
        max_regression=args.max_regression,
        noise_factor=args.noise_factor,
    )
    print(format_diff(diff, verbose=args.verbose))
    if diff.regressions:
        print(f"\nREGRESSION: {len(diff.regressions)} cell(s) lost "
              f"availability beyond {diff.max_regression:.0%} + noise")
    else:
        print(f"\nok: no availability regression beyond "
              f"{diff.max_regression:.0%} + noise")
    if args.json_out:
        _write_json_out(args.json_out, diff.to_dict())
    return 1 if diff.regressions else 0


def _cmd_runs_gc(args: argparse.Namespace) -> int:
    registry = _registry(args)
    doomed = registry.gc(
        keep_last=args.keep_last,
        kinds=args.kind,
        dry_run=args.dry_run,
    )
    verb = "would delete" if args.dry_run else "deleted"
    if not doomed:
        print(f"nothing to prune under {registry.root} "
              f"(keep-last {args.keep_last})")
        return 0
    for record in doomed:
        print(f"{verb} {record.run_id} ({record.kind}, "
              f"{record.created_at.split('T')[0]})")
    print(f"{verb} {len(doomed)} run(s); "
          f"{len(registry.list_runs())} remain")
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    command = args.runs_command
    if command == "list":
        return _cmd_runs_list(args)
    if command == "show":
        return _cmd_runs_show(args)
    if command == "diff":
        return _cmd_runs_diff(args)
    if command == "gc":
        return _cmd_runs_gc(args)
    raise ConfigurationError(  # pragma: no cover - argparse enforces choices
        f"unknown runs command {command!r}"
    )


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import write_report

    registry = _registry(args)
    records = []
    seen = set()
    for token in args.runs:
        record = registry.resolve(token)
        if record.run_id in seen:
            continue
        seen.add(record.run_id)
        records.append(record)
    try:
        write_report(records, args.out, title=args.title)
    except OSError as exc:
        raise ConfigurationError(
            f"cannot write {args.out}: {exc}"
        ) from exc
    print(f"report on {len(records)} run(s) written to {args.out}",
          file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs.serve import create_app, make_http_server

    application = create_app(getattr(args, "runs_dir", None))
    for run_dir in args.adopt or ():
        record = application.registry.adopt(run_dir)
        print(f"adopted {record.kind} run {record.run_id} "
              f"-> {record.path}", file=sys.stderr)
    count, fresh = application.cache.warm()
    if args.serve_command == "warm":
        state = "already fresh" if fresh else "rebuilt"
        print(f"summary cache {state}: {count} run(s) under "
              f"{application.registry.root} -> {application.cache.path}")
        return 0
    httpd = make_http_server(application, args.host, args.port)
    host, port = httpd.server_address[:2]
    print(f"serving {count} run(s) from {application.registry.root} "
          f"on http://{host}:{port}/ (Ctrl-C to stop)", file=sys.stderr)
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        print("stopped", file=sys.stderr)
    finally:
        httpd.server_close()
    return 0


#: Every ``--...-out``-style flag, preflighted centrally by
#: :func:`_dispatch` so a doomed write fails before the simulation, not
#: after it.  New commands inherit the check by reusing these attribute
#: names.
_OUTPUT_PATH_ATTRS = ("out", "save", "save_schedule", "json_out",
                      "metrics_out", "collapsed")


def _ensure_dir_writable(path: str) -> None:
    """Fail fast (exit 2) when a directory destination (``--runs-dir``)
    could not be created or written."""
    import os
    import pathlib

    target = pathlib.Path(path)
    if target.exists() and not target.is_dir():
        raise ConfigurationError(
            f"cannot use {path} as a directory: it is a file"
        )
    probe = target
    while not probe.exists():
        parent = probe.parent
        if parent == probe:
            break
        probe = parent
    if not os.access(probe, os.W_OK):
        raise ConfigurationError(
            f"cannot write under {path}: {probe} is not writable"
        )


def _ensure_writable(path: str) -> None:
    """Fail fast (exit 2) on an unwritable output path, before hours of
    simulation would be thrown away at write time."""
    import os
    import pathlib

    target = pathlib.Path(path)
    if target.is_dir():
        raise ConfigurationError(f"cannot write {path}: is a directory")
    if target.exists():
        if not os.access(target, os.W_OK):
            raise ConfigurationError(
                f"cannot write {path}: permission denied"
            )
        return
    parent = target.parent if str(target.parent) else pathlib.Path(".")
    if not parent.is_dir():
        raise ConfigurationError(
            f"cannot write {path}: directory {parent} does not exist"
        )
    if not os.access(parent, os.W_OK):
        raise ConfigurationError(
            f"cannot write {path}: directory {parent} is not writable"
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro`` and ``python -m repro``.

    Exit codes: 0 success, 1 a check or run failed (validation
    mismatch, invariant violation, failed study cells), 2 the command
    itself was misconfigured (bad paths, unknown names, malformed
    input files).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level is not None:
        from repro.obs.logging import configure_logging

        configure_logging(args.log_level)
    try:
        return _dispatch(parser, args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _dispatch(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    for attr in _OUTPUT_PATH_ATTRS:
        value = getattr(args, attr, None)
        if value:
            _ensure_writable(value)
    runs_dir = getattr(args, "runs_dir", None)
    if runs_dir and (getattr(args, "record", False)
                     or getattr(args, "live", False)
                     or args.command in ("runs", "report", "serve")):
        _ensure_dir_writable(runs_dir)
    command = args.command
    if command == "trace" and getattr(args, "record", False) \
            and args.scenario is None:
        raise ConfigurationError(
            "trace --record requires a scenario file; ad-hoc traces are "
            "written with --out instead"
        )
    if command == "testbed":
        _cmd_testbed(args)
    elif command in ("table2", "table3", "study"):
        return _cmd_tables(args, command)
    elif command == "sweep":
        _cmd_sweep(args)
    elif command == "placement":
        _cmd_placement(args)
    elif command == "trace":
        if args.scenario is not None:
            return _cmd_trace_scenario(args)
        _cmd_trace(args)
    elif command == "overhead":
        _cmd_overhead(args)
    elif command == "validate":
        return _cmd_validate(args)
    elif command == "scenario":
        return _cmd_scenario(args)
    elif command == "analyze":
        return _cmd_analyze(args)
    elif command == "chaos":
        return _cmd_chaos(args)
    elif command == "profile":
        return _cmd_profile(args)
    elif command == "bench":
        return _cmd_bench(args)
    elif command == "service":
        return _cmd_service(args)
    elif command == "metrics":
        return _cmd_metrics(args)
    elif command == "runs":
        return _cmd_runs(args)
    elif command == "report":
        return _cmd_report(args)
    elif command == "serve":
        return _cmd_serve(args)
    elif command == "watch":
        return _cmd_watch(args)
    elif command == "demo":
        _cmd_demo(args)
    else:  # pragma: no cover - argparse enforces choices
        parser.error(f"unknown command {command!r}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
