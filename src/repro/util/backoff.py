"""Jittered exponential backoff with an optional deadline.

One retry policy, used everywhere something is retried:

* the replicated service client (:mod:`repro.service.client`) waits
  between failovers with full jitter so a herd of clients hammering a
  recovering replica spreads out;
* a restarting replica's RECOVER loop paces its quorum attempts;
* :func:`repro.experiments.runner.run_study` retries failed cells
  through the same policy (with a zero base delay — simulation retries
  need pacing logic, not wall-clock pauses).

The policy is a frozen value object; all mutable iteration state lives
in the iterators it hands out, so one policy instance can be shared
freely across threads.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple, Type, TypeVar

from repro.errors import ConfigurationError

__all__ = ["BackoffPolicy", "retry_call"]

T = TypeVar("T")


@dataclass(frozen=True)
class BackoffPolicy:
    """How long to wait before each retry.

    The delay before retry ``k`` (1-based) is ``min(max_delay, base *
    factor**(k-1))``, randomised by *jitter*: a jitter of ``0.5`` picks
    uniformly from ``[0.5 * d, d]`` ("equal jitter"), ``1.0`` from
    ``[0, d]`` ("full jitter"), ``0.0`` keeps the deterministic value.

    Attributes:
        base: Delay before the first retry, in seconds.
        factor: Multiplier applied per subsequent retry.
        max_delay: Ceiling on any single delay.
        jitter: Fraction of each delay that is randomised, in [0, 1].
        max_attempts: Total attempts allowed (first try included);
            ``None`` means unbounded (use *deadline*).
        deadline: Give up once this many seconds have elapsed since the
            first attempt; ``None`` means no time bound.
    """

    base: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    max_attempts: Optional[int] = 3
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.base < 0 or self.max_delay < 0:
            raise ConfigurationError(
                f"backoff delays must be >= 0, got base={self.base} "
                f"max_delay={self.max_delay}"
            )
        if self.factor < 1.0:
            raise ConfigurationError(
                f"backoff factor must be >= 1, got {self.factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"backoff jitter must be in [0, 1], got {self.jitter}"
            )
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.max_attempts is None and self.deadline is None:
            raise ConfigurationError(
                "an unbounded backoff needs either max_attempts or "
                "a deadline"
            )
        if self.deadline is not None and self.deadline < 0:
            raise ConfigurationError(
                f"deadline must be >= 0, got {self.deadline}"
            )

    # ------------------------------------------------------------------
    def delays(self, rng: Optional[random.Random] = None) -> Iterator[float]:
        """The delay sequence, one value per allowed *retry*.

        Yields ``max_attempts - 1`` values (or indefinitely with no
        attempt bound); the caller stops early when its deadline runs
        out.  Passing a seeded *rng* makes the jitter reproducible.
        """
        draw = (rng or random).random
        k = 0
        while self.max_attempts is None or k < self.max_attempts - 1:
            delay = min(self.max_delay, self.base * (self.factor ** k))
            if self.jitter and delay > 0:
                delay -= self.jitter * delay * draw()
            yield delay
            k += 1

    def run(
        self,
        fn: Callable[[], T],
        retry_on: Tuple[Type[BaseException], ...] = (Exception,),
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> T:
        """Call *fn* until it succeeds or the policy is exhausted.

        Sleeps the policy's delay between attempts (skipping the
        syscall for zero delays), and never starts a retry past the
        *deadline*.  Re-raises the last exception when giving up.

        Args:
            fn: Zero-argument callable to retry.
            retry_on: Exception types that trigger a retry; anything
                else propagates immediately.
            rng: Seeded source for reproducible jitter.
            sleep / clock: Injection points for tests.
            on_retry: Called with ``(attempt_number, exception)`` before
                each retry sleep.
        """
        start = clock()
        attempt = 0
        for delay in self._delays_or_once(rng):
            attempt += 1
            try:
                return fn()
            except retry_on as exc:
                if delay is None:
                    raise
                if self.deadline is not None \
                        and clock() - start + delay > self.deadline:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                if delay > 0:
                    sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    def _delays_or_once(
        self, rng: Optional[random.Random]
    ) -> Iterator[Optional[float]]:
        """The delay sequence followed by a ``None`` terminal marker (the
        final attempt, after which failures propagate)."""
        yield from self.delays(rng)
        yield None


def retry_call(
    fn: Callable[[], T],
    policy: Optional[BackoffPolicy] = None,
    **kwargs,
) -> T:
    """Convenience wrapper: ``(policy or BackoffPolicy()).run(fn, ...)``."""
    return (policy or BackoffPolicy()).run(fn, **kwargs)
