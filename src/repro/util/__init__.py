"""Small shared utilities with no dependencies on the rest of the package.

Currently: :mod:`repro.util.backoff`, the jittered-exponential retry
policy shared by the replicated service client and the study runner's
cell-retry path.
"""

from repro.util.backoff import BackoffPolicy, retry_call

__all__ = ["BackoffPolicy", "retry_call"]
