"""The Jajodia–Mutchler integer-storage dynamic voting protocol.

Section 2.1 of the paper compares its partition-set representation with
the protocol "developed independently by Jajodia and Mutchler [JaMu87]":

    "Their protocol used integer values to represent the previous quorum
    instead of the partition sets that are used here.  It requires less
    storage to implement simple Dynamic Voting, but it cannot
    accommodate Lexicographic Dynamic Voting as it does not keep track
    of the identity of the maximum element of the partition set."

Each copy stores a *version number* ``VN`` (count of updates applied)
and an *update-sites cardinality* ``SC`` (how many sites took part in
the last update).  A group grants iff the copies holding the highest
reachable ``VN`` number more than ``SC / 2`` of that generation.  With
only the cardinality stored, a tie (exactly half) cannot name a
distinguished member and must fail — which is precisely why this class
implements *simple* DV semantics.

This module exists to make the paper's comparison executable: the
equivalence tests show :class:`CardinalityDynamicVoting` tracks
:class:`~repro.core.dynamic.DynamicVoting` decision-for-decision while
storing two integers instead of a site set.
"""

from __future__ import annotations

from typing import ClassVar, Iterable

from repro.core.base import OperationKind, Verdict, VotingProtocol
from repro.errors import ConfigurationError, ProtocolError
from repro.net.views import NetworkView
from repro.replica.state import ReplicaSet

__all__ = ["CardinalityDynamicVoting"]


class _CardinalityState:
    """Integer state of one copy: update count and last-quorum size."""

    __slots__ = ("site_id", "version", "cardinality")

    def __init__(self, site_id: int):
        self.site_id = site_id
        self.version = 1
        self.cardinality = 0  # set by the protocol's constructor

    def commit(self, version: int, cardinality: int) -> None:
        if version < self.version:
            raise ProtocolError(
                f"version would go backwards at site {self.site_id}"
            )
        if cardinality < 1:
            raise ProtocolError("cardinality must be >= 1")
        self.version = version
        self.cardinality = cardinality


class CardinalityDynamicVoting(VotingProtocol):
    """JM87 dynamic voting: (VN, SC) integers per copy, no tie-break.

    The shared :class:`~repro.replica.state.ReplicaSet` is still held so
    the protocol plugs into the same harness, but all decisions are made
    from the private integer state — the point of the comparison.
    """

    name: ClassVar[str] = "JM-DV"
    eager: ClassVar[bool] = True
    commits_on_read: ClassVar[bool] = True

    def __init__(self, replicas: ReplicaSet):
        super().__init__(replicas)
        self._cards = {
            sid: _CardinalityState(sid) for sid in replicas.copy_sites
        }
        for state in self._cards.values():
            state.cardinality = len(self._cards)

    # ------------------------------------------------------------------
    def integer_state(self, site_id: int) -> tuple[int, int]:
        """The ``(VN, SC)`` pair stored at *site_id* (two integers — the
        storage advantage over partition sets)."""
        try:
            state = self._cards[site_id]
        except KeyError:
            raise ConfigurationError(f"no copy at site {site_id}") from None
        return (state.version, state.cardinality)

    # ------------------------------------------------------------------
    def evaluate_block(self, view: NetworkView, block: frozenset[int]) -> Verdict:
        reachable = frozenset(self._cards) & block
        if not reachable:
            return Verdict.denial("no copies reachable in block", block)
        top = max(self._cards[s].version for s in reachable)
        current = frozenset(
            s for s in reachable if self._cards[s].version == top
        )
        cardinality = self._cards[min(current)].cardinality
        granted = 2 * len(current) > cardinality
        return Verdict(
            granted=granted,
            block=block,
            reachable=reachable,
            current=current,
            newest=current,
            counted=current,
            partition_set=frozenset(),  # not representable: integers only
            reference=min(current),
            reason="" if granted else (
                f"{len(current)} current of last quorum size {cardinality}"
            ),
        )

    # ------------------------------------------------------------------
    def _operate(self, view: NetworkView, site_id: int) -> Verdict:
        block = self._block_for_request(view, site_id)
        verdict = self.evaluate_block(view, block)
        if not verdict.granted:
            return verdict
        top = max(self._cards[s].version for s in verdict.current)
        new_version = top + 1
        members = verdict.current
        for sid in members:
            self._cards[sid].commit(new_version, len(members))
        return verdict

    def read(self, view: NetworkView, site_id: int) -> Verdict:
        """JM87 counts every operation as an update of the state."""
        return self._operate(view, site_id)

    def write(self, view: NetworkView, site_id: int) -> Verdict:
        return self._operate(view, site_id)

    def recover(self, view: NetworkView, site_id: int) -> Verdict:
        self._require_copy(site_id)
        block = self._block_for_request(view, site_id)
        verdict = self.evaluate_block(view, block)
        if not verdict.granted:
            return verdict
        top = max(self._cards[s].version for s in verdict.current)
        members = verdict.current | {site_id}
        for sid in members:
            self._cards[sid].commit(top + 1, len(members))
        return verdict

    def synchronize(self, view: NetworkView) -> None:
        """Eager fixpoint, mirroring the partition-set family."""
        copies = frozenset(self._cards)
        for _ in range(len(copies) + 2):
            verdict = self.evaluate(view)
            if not verdict.granted:
                return
            stale = sorted((copies & verdict.block) - verdict.current)
            if stale:
                self.recover(view, stale[0])
                continue
            cardinality = self._cards[min(verdict.current)].cardinality
            if cardinality != len(verdict.current):
                # Null operation: shrink the recorded quorum size.
                self._operate(view, min(verdict.current))
            return
        raise ProtocolError(  # pragma: no cover - defensive
            "synchronize failed to converge"
        )
