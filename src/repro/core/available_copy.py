"""Available Copy (Bernstein & Goodman 1984; Long & Pâris 1987).

The reference protocol for partition-free environments, included because
the paper's Section 3 shows Topological Dynamic Voting *degenerates into
an available copy protocol* when every copy shares one segment.

Semantics (the classic pessimistic model used by the availability
literature): reads use any *current* copy; writes go to all up copies, so
a copy that is down during a write becomes stale; a restarting copy
rejoins instantly by cloning from any up current copy.  After a **total**
failure the file stays unavailable until a copy from the last current set
returns — the well-known "wait for the last to fail" rule.

.. warning::
   Available Copy assumes the network cannot partition.  On a topology
   with partition points two blocks may each hold a current copy and both
   grant — the protocol is only sound on a single segment.  The
   constructor cannot see the topology, so the experiment harness (and
   you) must enforce that restriction.
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.base import Verdict, VotingProtocol
from repro.net.views import NetworkView
from repro.replica.state import ReplicaSet

__all__ = ["AvailableCopy"]


class AvailableCopy(VotingProtocol):
    """AC — read one / write all-available; no quorums at all."""

    name: ClassVar[str] = "AC"
    eager: ClassVar[bool] = True

    def __init__(self, replicas: ReplicaSet):
        super().__init__(replicas)
        self._current: frozenset[int] = replicas.copy_sites

    @property
    def current_copies(self) -> frozenset[int]:
        """Copies believed to hold the latest data (may be down)."""
        return self._current

    # ------------------------------------------------------------------
    def evaluate_block(self, view: NetworkView, block: frozenset[int]) -> Verdict:
        reachable = self._replicas.reachable(block)
        if not reachable:
            return Verdict.denial("no copies reachable in block", block)
        live_current = reachable & self._current
        granted = bool(live_current)
        return Verdict(
            granted=granted,
            block=block,
            reachable=reachable,
            current=live_current,
            newest=live_current if granted else reachable,
            counted=live_current,
            partition_set=self._current,
            reference=min(live_current) if granted else None,
            reason="" if granted else (
                "no current copy up; waiting for one of "
                f"{sorted(self._current)} to restart"
            ),
        )

    # ------------------------------------------------------------------
    def read(self, view: NetworkView, site_id: int) -> Verdict:
        block = self._block_for_request(view, site_id)
        return self.evaluate_block(view, block)

    def write(self, view: NetworkView, site_id: int) -> Verdict:
        """Write all available: every reachable copy becomes current."""
        block = self._block_for_request(view, site_id)
        verdict = self.evaluate_block(view, block)
        if not verdict.granted:
            return verdict
        assert verdict.reference is not None
        new_version = self._replicas.state(verdict.reference).version + 1
        for sid in verdict.reachable:
            state = self._replicas.state(sid)
            state.commit(new_version, new_version, state.partition_set)
        self._current = verdict.reachable
        return verdict

    def recover(self, view: NetworkView, site_id: int) -> Verdict:
        """Clone from any up current copy, then rejoin the current set."""
        self._require_copy(site_id)
        block = self._block_for_request(view, site_id)
        verdict = self.evaluate_block(view, block)
        if not verdict.granted:
            return verdict
        assert verdict.reference is not None
        source = self._replicas.state(verdict.reference)
        target = self._replicas.state(site_id)
        if target.version < source.version:
            target.commit(source.operation, source.version, target.partition_set)
        self._current = self._current | {site_id}
        return verdict

    def synchronize(self, view: NetworkView) -> None:
        """Pessimistic tracking: while any current copy is up, the current
        set is exactly the up copies (writes are assumed frequent and
        restarts clone instantly); during a total failure it is frozen."""
        up_copies = self._replicas.copy_sites & view.up
        if up_copies & self._current:
            newest = self._replicas.max_version(up_copies & self._current)
            for sid in up_copies:
                state = self._replicas.state(sid)
                if state.version < newest:
                    state.commit(newest, newest, state.partition_set)
            self._current = up_copies
