"""Dynamic vote reassignment (Barbara, Garcia-Molina & Spauster, 1986).

The paper's introduction cites "Policies for Dynamic Vote Reassignment"
[BGS86] as the other route to adaptive quorums: instead of shrinking the
*set* of voters (dynamic voting), keep the voter set fixed and move the
*weights* — live sites absorb the votes of sites believed dead, so a
static-majority test keeps passing as the group erodes.

This module implements the two classic reassignment policies on top of
the same substrate as the rest of :mod:`repro.core`, so the approaches
can be raced on the paper's testbed (benchmark X6):

* ``ALLIANCE`` — a dead member's votes are split as evenly as possible
  among the surviving members (largest shares to the strongest first);
* ``OVERTHROW`` — a dead member's votes all go to the lexicographically
  greatest survivor.

Safety follows the dynamic-voting argument (docs/CORRECTNESS.md §§2–3)
with cardinalities replaced by weights: every copy stores the
*assignment version* ``a_i`` and the weight table of that assignment;
only copies at the highest reachable assignment version vote; a grant
needs more than half of the assignment's total weight (or exactly half
including the assignment's maximum member); and a new assignment is
COMMITted only by such a quorum of the old one.  Two quorums of one
assignment always intersect, so assignments are totally ordered and at
most one block can ever grant.
"""

from __future__ import annotations

import enum
from typing import ClassVar, Mapping

from repro.core.base import Verdict, VotingProtocol
from repro.errors import ConfigurationError, ProtocolError, QuorumNotReachedError
from repro.net.views import NetworkView
from repro.replica.state import ReplicaSet

__all__ = ["ReassignmentPolicy", "VoteReassignmentVoting"]


class ReassignmentPolicy(enum.Enum):
    """How a dead member's votes are redistributed."""

    ALLIANCE = "alliance"
    OVERTHROW = "overthrow"


class _AssignmentState:
    """Per-copy state: assignment version + that assignment's weights,
    plus the data version for newest-copy selection."""

    __slots__ = ("site_id", "assignment", "weights", "version")

    def __init__(self, site_id: int, weights: Mapping[int, int]):
        self.site_id = site_id
        self.assignment = 1
        self.weights = dict(weights)
        self.version = 1

    def commit(self, assignment: int, weights: Mapping[int, int],
               version: int) -> None:
        if assignment < self.assignment:
            raise ProtocolError(
                f"assignment version would go backwards at {self.site_id}"
            )
        if version < self.version:
            raise ProtocolError(
                f"data version would go backwards at {self.site_id}"
            )
        self.assignment = assignment
        self.weights = dict(weights)
        self.version = version


class VoteReassignmentVoting(VotingProtocol):
    """Adaptive weights over a fixed voter set ([BGS86]-style).

    Weights start at one vote per copy.  :meth:`synchronize` (eager —
    reassignment reacts to failure detection) moves unreachable members'
    votes per the chosen policy and restores base weights when everyone
    is back.
    """

    name: ClassVar[str] = "DVR"
    eager: ClassVar[bool] = True
    commits_on_read: ClassVar[bool] = False

    def __init__(
        self,
        replicas: ReplicaSet,
        policy: ReassignmentPolicy = ReassignmentPolicy.ALLIANCE,
    ):
        super().__init__(replicas)
        if not isinstance(policy, ReassignmentPolicy):
            raise ConfigurationError(f"unknown reassignment policy {policy!r}")
        self.policy = policy
        base = {sid: 1 for sid in replicas.copy_sites}
        self._states = {
            sid: _AssignmentState(sid, base) for sid in replicas.copy_sites
        }

    # ------------------------------------------------------------------
    def assignment_at(self, site_id: int) -> tuple[int, dict[int, int]]:
        """The ``(assignment version, weight table)`` stored at a copy."""
        try:
            state = self._states[site_id]
        except KeyError:
            raise ConfigurationError(f"no copy at site {site_id}") from None
        return (state.assignment, dict(state.weights))

    # ------------------------------------------------------------------
    def evaluate_block(self, view: NetworkView, block: frozenset[int]) -> Verdict:
        reachable = frozenset(self._states) & block
        if not reachable:
            return Verdict.denial("no copies reachable in block", block)
        top = max(self._states[s].assignment for s in reachable)
        voters = frozenset(
            s for s in reachable if self._states[s].assignment == top
        )
        anchor = self._states[min(voters)]
        self._check_agreement(voters)
        weights = anchor.weights
        total = sum(weights.values())
        gathered = sum(weights.get(s, 0) for s in voters)
        granted = 2 * gathered > total
        if not granted and 2 * gathered == total:
            # Lexicographic tie-break over the members actually holding
            # votes; two disjoint halves cannot both contain the maximum.
            holders = [s for s, w in weights.items() if w > 0]
            granted = view.max_site(holders) in voters
        newest_version = max(self._states[s].version for s in reachable)
        newest = frozenset(
            s for s in reachable if self._states[s].version == newest_version
        )
        return Verdict(
            granted=granted,
            block=block,
            reachable=reachable,
            current=voters,
            newest=newest,
            counted=voters,
            partition_set=frozenset(weights),
            reference=min(voters),
            reason="" if granted else (
                f"gathered weight {gathered} of total {total}"
            ),
        )

    def _check_agreement(self, voters: frozenset[int]) -> None:
        tables = {
            (self._states[s].assignment, tuple(sorted(self._states[s].weights.items())))
            for s in voters
        }
        if len(tables) != 1:
            raise ProtocolError(
                f"divergent weight tables among voters {sorted(voters)}"
            )

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def read(self, view: NetworkView, site_id: int) -> Verdict:
        block = self._block_for_request(view, site_id)
        return self.evaluate_block(view, block)

    def write(self, view: NetworkView, site_id: int) -> Verdict:
        block = self._block_for_request(view, site_id)
        verdict = self.evaluate_block(view, block)
        if not verdict.granted:
            return verdict
        new_version = max(
            self._states[s].version for s in verdict.reachable
        ) + 1
        for sid in verdict.current:
            state = self._states[sid]
            state.commit(state.assignment, state.weights, new_version)
        return verdict

    def recover(self, view: NetworkView, site_id: int) -> Verdict:
        """A returning copy adopts the quorum's assignment and data."""
        self._require_copy(site_id)
        block = self._block_for_request(view, site_id)
        verdict = self.evaluate_block(view, block)
        if not verdict.granted:
            return verdict
        anchor = self._states[verdict.reference]
        target = self._states[site_id]
        target.commit(
            anchor.assignment,
            anchor.weights,
            max(target.version, anchor.version),
        )
        return verdict

    # ------------------------------------------------------------------
    def synchronize(self, view: NetworkView) -> None:
        """Reassign votes to match the view (failure detection reacts).

        Within the granting block: recover stale members, then commit a
        fresh assignment — base weight 1 per reachable copy plus the
        unreachable members' votes redistributed by policy.  When every
        copy is reachable this restores the uniform base assignment.
        """
        copies = frozenset(self._states)
        for _ in range(len(copies) + 2):
            verdict = self.evaluate(view)
            if not verdict.granted:
                return
            stale = sorted((copies & verdict.block) - verdict.current)
            if stale:
                self.recover(view, stale[0])
                continue
            live = sorted(verdict.current)
            target = self._target_assignment(view, frozenset(live))
            anchor = self._states[verdict.reference]
            if target != anchor.weights:
                new_assignment = anchor.assignment + 1
                for sid in live:
                    state = self._states[sid]
                    state.commit(new_assignment, target, state.version)
            return
        raise ProtocolError(  # pragma: no cover - defensive
            "synchronize failed to converge"
        )

    def _target_assignment(
        self, view: NetworkView, live: frozenset[int]
    ) -> dict[int, int]:
        """The policy's ideal weight table for the given live copies."""
        copies = sorted(self._states)
        dead_votes = len(copies) - len(live)
        weights = {sid: (1 if sid in live else 0) for sid in copies}
        if not live or dead_votes == 0:
            return {sid: 1 for sid in copies} if dead_votes == 0 else weights
        # Strongest-first ordering: the lexicographic maximum absorbs
        # first (and everything, under OVERTHROW).
        ranked = sorted(live, key=lambda s: -view.topology.site(s).rank)
        if self.policy is ReassignmentPolicy.OVERTHROW:
            weights[ranked[0]] += dead_votes
            return weights
        for i in range(dead_votes):  # ALLIANCE: round-robin split
            weights[ranked[i % len(ranked)]] += 1
        return weights
