"""Optimistic Dynamic Voting — the paper's first contribution (Section 2).

Identical quorum rules to :class:`~repro.core.lexicographic.
LexicographicDynamicVoting`, but the protocol *operates on possibly
out-of-date information*: no connection vector is maintained, and the
``(o, v, P)`` state evolves only when the file is actually accessed
(``eager = False`` — the driver synchronises it at access epochs only).

This is both cheaper (no state-maintenance traffic; see the
message-overhead benchmark) and, counter-intuitively, sometimes *more*
available than LDV: a short failure of a well-behaved site that heals
before the next access never shrinks the quorum, so a later failure of a
slow-to-repair partition point (the paper's configuration F) does not
strand the file.
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.base import DynamicVotingFamily

__all__ = ["OptimisticDynamicVoting"]


class OptimisticDynamicVoting(DynamicVotingFamily):
    """ODV — lexicographic dynamic voting on access-time state only."""

    name: ClassVar[str] = "ODV"
    eager: ClassVar[bool] = False
    tie_break: ClassVar[bool] = True
    topological: ClassVar[bool] = False
