"""The paper's contribution: static and dynamic voting protocols.

All protocols implement one interface, :class:`~repro.core.base.VotingProtocol`:

================================  =====  ==========  ===========  =========
protocol                          abbr   update      tie-break    topology
================================  =====  ==========  ===========  =========
MajorityConsensusVoting           MCV    static      —            —
DynamicVoting                     DV     eager       none         —
LexicographicDynamicVoting        LDV    eager       lexicogr.    —
OptimisticDynamicVoting           ODV    at access   lexicogr.    —
TopologicalDynamicVoting          TDV    eager       lexicogr.    claims votes
OptimisticTopologicalDynamicVot.  OTDV   at access   lexicogr.    claims votes
================================  =====  ==========  ===========  =========

Extensions beyond the evaluated six (the paper's related/future work):
:class:`~repro.core.available_copy.AvailableCopy`,
:class:`~repro.core.weighted.WeightedMajorityVoting`, and
:class:`~repro.core.witnesses.DynamicVotingWithWitnesses`.

*Eager* protocols assume the paper's "instantaneous state information"
(the connection vector): the experiment harness calls
:meth:`~repro.core.base.VotingProtocol.synchronize` after every network
event.  *Optimistic* protocols are synchronised only when the file is
actually accessed.
"""

from repro.core.available_copy import AvailableCopy
from repro.core.base import (
    DynamicVotingFamily,
    OperationKind,
    Verdict,
    VotingProtocol,
)
from repro.core.cardinality import CardinalityDynamicVoting
from repro.core.dynamic import DynamicVoting
from repro.core.lexicographic import LexicographicDynamicVoting
from repro.core.mcv import MajorityConsensusVoting
from repro.core.optimistic import OptimisticDynamicVoting
from repro.core.optimistic_topological import OptimisticTopologicalDynamicVoting
from repro.core.reassignment import ReassignmentPolicy, VoteReassignmentVoting
from repro.core.registry import PAPER_POLICIES, available_policies, make_protocol
from repro.core.topological import TopologicalDynamicVoting
from repro.core.weighted import WeightedMajorityVoting
from repro.core.weighted_dynamic import (
    OptimisticWeightedDynamicVoting,
    WeightedDynamicVoting,
    WeightedTopologicalDynamicVoting,
)
from repro.core.witnesses import (
    DynamicVotingWithWitnesses,
    TopologicalDynamicVotingWithWitnesses,
)

__all__ = [
    "AvailableCopy",
    "CardinalityDynamicVoting",
    "DynamicVoting",
    "DynamicVotingFamily",
    "DynamicVotingWithWitnesses",
    "LexicographicDynamicVoting",
    "MajorityConsensusVoting",
    "OperationKind",
    "OptimisticDynamicVoting",
    "OptimisticTopologicalDynamicVoting",
    "OptimisticWeightedDynamicVoting",
    "PAPER_POLICIES",
    "ReassignmentPolicy",
    "TopologicalDynamicVoting",
    "TopologicalDynamicVotingWithWitnesses",
    "Verdict",
    "VoteReassignmentVoting",
    "VotingProtocol",
    "WeightedDynamicVoting",
    "WeightedMajorityVoting",
    "WeightedTopologicalDynamicVoting",
    "available_policies",
    "make_protocol",
]
