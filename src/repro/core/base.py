"""Protocol interface and the shared dynamic-voting machinery.

The quorum logic here is a direct transcription of the paper's Algorithm 1
and the READ / WRITE / RECOVER procedures of Figures 1–3 (and, with the
``topological`` switch, Figures 5–7):

1. ``R``  — copies reachable from the requesting site's partition block;
2. ``Q``  — reachable copies with the highest operation number (*current*);
3. ``S``  — reachable copies with the highest version number (*newest*);
4. ``P_m`` — the partition set of any member of ``Q`` (they all agree);
5. the grant test — strict majority of ``P_m``, or exactly half plus the
   lexicographic maximum of ``P_m``; topological protocols count the
   claimable set ``T`` instead of ``Q``;
6. COMMIT — install ``(o_m + 1, v', S')`` at every site of the new
   partition set ``S'``.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, ClassVar, Optional

from repro.errors import ConfigurationError, ProtocolError, QuorumNotReachedError
from repro.net.views import NetworkView
from repro.replica.state import ReplicaSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.tracer import Tracer

__all__ = [
    "CommitRecord",
    "DynamicVotingFamily",
    "OperationKind",
    "Verdict",
    "VotingProtocol",
]


class OperationKind(enum.Enum):
    """The three operations of the paper's protocol figures."""

    READ = "read"
    WRITE = "write"
    RECOVER = "recover"


@dataclass(frozen=True)
class CommitRecord:
    """One committed state change, for audit trails (see
    :meth:`VotingProtocol.enable_history`).

    Attributes:
        kind: ``"read"``, ``"write"``, ``"recover"`` or ``"adjust"``
            (the eager null operation).
        operation: The committed operation number.
        version: The committed version number.
        members: The new partition set (the COMMIT's recipients).
    """

    kind: str
    operation: int
    version: int
    members: frozenset[int]


@dataclass(frozen=True)
class Verdict:
    """The outcome of evaluating the majority-partition test in one block.

    Attributes:
        granted: Whether an access from this block would be allowed.
        block: The communicating block that was evaluated (empty for the
            "no copies reachable anywhere" denial).
        reachable: ``R`` — copy sites inside the block.
        current: ``Q`` — reachable copies with the maximum operation number.
        newest: ``S`` — reachable copies with the maximum version number.
        counted: The set compared against ``|P_m| / 2``: ``Q`` for the
            plain protocols, the claimable set ``T`` for topological ones.
        partition_set: ``P_m`` — the previous quorum (denominator).
        reference: ``m`` — the current copy whose state anchored the test,
            or ``None`` when the block holds no copies.
        reason: Short human-readable explanation of a denial.
    """

    granted: bool
    block: frozenset[int] = frozenset()
    reachable: frozenset[int] = frozenset()
    current: frozenset[int] = frozenset()
    newest: frozenset[int] = frozenset()
    counted: frozenset[int] = frozenset()
    partition_set: frozenset[int] = frozenset()
    reference: Optional[int] = None
    reason: str = field(default="", compare=False)

    @staticmethod
    def denial(reason: str, block: frozenset[int] = frozenset()) -> "Verdict":
        """A denial verdict carrying only an explanation."""
        return Verdict(granted=False, block=block, reason=reason)


class VotingProtocol(abc.ABC):
    """A consistency protocol for one replicated file.

    Subclasses provide :meth:`evaluate_block` (the pure majority test) and
    the state-changing operations.  The environment drives protocols in
    two ways:

    * *probing* — :meth:`is_available` / :meth:`evaluate` ask whether an
      access arriving now would be granted, without touching state;
    * *operating* — :meth:`read`, :meth:`write`, :meth:`recover` and
      :meth:`synchronize` run the actual algorithms and mutate the
      replicas' ``(o, v, P)`` state.

    Class attributes:
        name: Canonical abbreviation (``"MCV"``, ``"ODV"``, ...).
        eager: ``True`` when the protocol assumes instantaneous state
            information, i.e. the harness must call :meth:`synchronize`
            after every network change; ``False`` for optimistic protocols
            synchronised only at access time.
    """

    name: ClassVar[str] = "abstract"
    eager: ClassVar[bool] = True
    #: Whether a granted read COMMITs new state (dynamic protocols bump
    #: the operation number and partition set; static ones do not).  The
    #: engine uses this for message accounting.
    commits_on_read: ClassVar[bool] = False

    def __init__(self, replicas: ReplicaSet):
        self._replicas = replicas
        self._history: Optional[list["CommitRecord"]] = None
        self._tracer: Optional["Tracer"] = None
        self._profiler = None

    # ------------------------------------------------------------------
    # structured tracing
    # ------------------------------------------------------------------
    def attach_tracer(self, tracer: Optional["Tracer"]) -> "VotingProtocol":
        """Attach (or, with ``None``, detach) a structured-event tracer.

        With a tracer attached, every quorum test emits a
        ``quorum.granted`` / ``quorum.denied`` decision record carrying
        the ``(o, v, P)`` context of Algorithm 1, plus
        ``tiebreak.lexicographic`` and ``votes.carried`` records when
        those rules fire.  Detached (the default) the hot path pays one
        ``None`` check.  Returns ``self`` for chaining.
        """
        self._tracer = tracer
        return self

    def attach_profiler(self, profiler) -> "VotingProtocol":
        """Attach (or, with ``None``, detach) a
        :class:`~repro.obs.prof.phases.PhaseProfiler`.

        Attached, every quorum evaluation and block test is tallied per
        policy (``quorum.evaluate.<name>`` / ``quorum.block.<name>``
        hot-path counters); detached (the default) the availability
        probe pays one ``None`` check.  Returns ``self`` for chaining.
        """
        self._profiler = profiler
        return self

    def _trace_decision(
        self,
        verdict: Verdict,
        tie_break_winner: Optional[int] = None,
        carried: frozenset[int] = frozenset(),
    ) -> None:
        """Emit the decision records for one quorum test (tracer attached).

        *tie_break_winner* is the lexicographic maximum that let an
        exact half proceed (when that rule fired); *carried* the votes a
        topological protocol claimed for unreachable segment mates.
        """
        tracer = self._tracer
        assert tracer is not None
        operation = version = None
        if verdict.reference is not None:
            anchor = self._replicas.state(verdict.reference)
            operation, version = anchor.operation, anchor.version
        tracer.record(
            "quorum.granted" if verdict.granted else "quorum.denied",
            policy=self.name,
            block=verdict.block,
            reachable=verdict.reachable,
            counted=verdict.counted,
            partition_set=verdict.partition_set,
            reference=verdict.reference,
            operation=operation,
            version=version,
            reason=verdict.reason,
        )
        if tie_break_winner is not None:
            tracer.record(
                "tiebreak.lexicographic",
                policy=self.name,
                partition_set=verdict.partition_set,
                winner=tie_break_winner,
                granted=verdict.granted,
            )
        if carried:
            tracer.record(
                "votes.carried",
                policy=self.name,
                carried=carried,
                claimants=verdict.partition_set & verdict.reachable,
                granted=verdict.granted,
            )

    def _trace_commit(self, kind: str, operation: int, version: int,
                      members: frozenset[int]) -> None:
        """Emit a ``commit.applied`` record (tracer attached only).

        The committed ``(o, v, P)`` triple is the invariant monitor's
        state-level feed: monotonicity and partition-set containment are
        checked against the stream of these records.
        """
        if self._tracer is not None:
            self._tracer.record(
                "commit.applied",
                policy=self.name,
                commit_kind=kind,
                operation=operation,
                version=version,
                members=members,
            )

    # ------------------------------------------------------------------
    @property
    def replicas(self) -> ReplicaSet:
        """The per-copy consistency-control state this protocol manages."""
        return self._replicas

    # ------------------------------------------------------------------
    # commit audit trail
    # ------------------------------------------------------------------
    def enable_history(self) -> "VotingProtocol":
        """Start recording every commit (returns ``self`` for chaining).

        Off by default — the availability study performs millions of
        commits and must not accumulate them.
        """
        if self._history is None:
            self._history = []
        return self

    @property
    def history(self) -> tuple["CommitRecord", ...]:
        """All commits recorded since :meth:`enable_history`.

        Raises:
            ConfigurationError: if history recording was never enabled.
        """
        if self._history is None:
            raise ConfigurationError(
                "commit history is off; call enable_history() first"
            )
        return tuple(self._history)

    def _record(self, kind: str, operation: int, version: int,
                members: frozenset[int]) -> None:
        if self._history is not None:
            self._history.append(
                CommitRecord(kind, operation, version, members)
            )

    @property
    def copy_sites(self) -> frozenset[int]:
        return self._replicas.copy_sites

    @property
    def data_sites(self) -> frozenset[int]:
        """Sites whose copies hold actual file data.

        Equal to :attr:`copy_sites` for every protocol except
        witness-augmented ones, where witnesses carry state but no bytes.
        The engine stores payloads only at these sites.
        """
        return self._replicas.copy_sites

    # ------------------------------------------------------------------
    # pure evaluation
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def evaluate_block(self, view: NetworkView, block: frozenset[int]) -> Verdict:
        """Run the majority-partition test for an access from *block*.

        Pure: never mutates replica state.
        """

    def evaluate(self, view: NetworkView) -> Verdict:
        """The verdict for the best block — the paper's single user "can
        access any of the sites", so the file is available if *any* block
        grants.  Returns the granting verdict, or the last denial."""
        profiler = self._profiler
        if profiler is not None:
            profiler.count(f"quorum.evaluate.{self.name}")
        denial: Optional[Verdict] = None
        copies = self._replicas.copy_sites
        for block in view.blocks:
            if not (block & copies):
                continue
            if profiler is not None:
                profiler.count(f"quorum.block.{self.name}")
            verdict = self.evaluate_block(view, block)
            if verdict.granted:
                return verdict
            denial = verdict
        if denial is None:
            denial = Verdict.denial("no partition block contains a copy")
        return denial

    def is_available(self, view: NetworkView) -> bool:
        """Whether an access arriving now, at any site, would be granted."""
        return self.evaluate(view).granted

    def granting_blocks(self, view: NetworkView) -> tuple[frozenset[int], ...]:
        """All blocks whose access would be granted.

        The mutual-exclusion invariant says this tuple never holds more
        than one element; the property-based tests assert exactly that.
        """
        copies = self._replicas.copy_sites
        return tuple(
            block
            for block in view.blocks
            if block & copies and self.evaluate_block(view, block).granted
        )

    # ------------------------------------------------------------------
    # state-changing operations
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def read(self, view: NetworkView, site_id: int) -> Verdict:
        """Attempt a read from *site_id*; mutates state iff granted."""

    @abc.abstractmethod
    def write(self, view: NetworkView, site_id: int) -> Verdict:
        """Attempt a write from *site_id*; mutates state iff granted."""

    @abc.abstractmethod
    def recover(self, view: NetworkView, site_id: int) -> Verdict:
        """One round of the RECOVER loop at copy site *site_id*."""

    @abc.abstractmethod
    def synchronize(self, view: NetworkView) -> None:
        """Bring protocol state up to date with the network view.

        For eager protocols the harness calls this after every network
        event (modelling the connection vector); for optimistic ones,
        only at access epochs.  Runs recoveries of reachable stale copies
        and the quorum adjustment, to fixpoint.
        """

    def recover_stale(self, view: NetworkView) -> None:
        """Run pending RECOVER loops without touching the quorum.

        The paper's RECOVER is initiated by the restarting site itself
        and "repeat[s] until successful" — it does not wait for anyone to
        access the file.  Optimistic protocols therefore reintegrate
        copies eagerly while still deferring quorum *adjustment* to
        access time; the trace evaluator calls this after every network
        event for the optimistic policies.  Default: nothing to do
        (static protocols need no reintegration step).
        """

    # ------------------------------------------------------------------
    def _require_copy(self, site_id: int) -> None:
        if site_id not in self._replicas:
            raise ConfigurationError(f"site {site_id} holds no copy")

    def _block_for_request(self, view: NetworkView, site_id: int) -> frozenset[int]:
        """The requesting site's block; a down requester can do nothing."""
        if not view.is_up(site_id):
            raise QuorumNotReachedError(f"requesting site {site_id} is down")
        return view.block_of(site_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        copies = ",".join(map(str, sorted(self._replicas.copy_sites)))
        return f"<{type(self).__name__} copies={{{copies}}}>"


class DynamicVotingFamily(VotingProtocol):
    """Shared implementation of the dynamic-voting rule family.

    The three orthogonal switches below produce DV, LDV, ODV, TDV and
    OTDV as five tiny subclasses:

    * ``tie_break`` — apply the lexicographic rule when exactly half of
      the previous partition set is counted (LDV and all newer variants);
    * ``topological`` — count the claimable set ``T`` (votes of same-
      segment unavailable members of ``P_m``) instead of ``Q``;
    * ``eager`` — whether :meth:`synchronize` is meant to run at every
      network change (protocol classes only *declare* this; the driver
      enforces it).
    """

    tie_break: ClassVar[bool] = True
    topological: ClassVar[bool] = False
    commits_on_read: ClassVar[bool] = True
    #: Deny grants anchored on a stale generation (see evaluate_block).
    lineage_guard: ClassVar[bool] = False

    def __init__(self, replicas: ReplicaSet):
        super().__init__(replicas)
        # Number of grants that relied on claimed votes of unreachable
        # sites (always 0 for non-topological protocols).  Exposed so the
        # property tests can correlate any stale read with a topological
        # vote claim, the one documented consistency caveat (DESIGN.md §3).
        self.claimed_vote_grants = 0

    # ------------------------------------------------------------------
    # Algorithm 1 (+ the T extension of Section 3)
    # ------------------------------------------------------------------
    def evaluate_block(self, view: NetworkView, block: frozenset[int]) -> Verdict:
        replicas = self._replicas
        reachable = replicas.reachable(block)  # R
        if not reachable:
            verdict = Verdict.denial("no copies reachable in block", block)
            if self._tracer is not None:
                self._trace_decision(verdict)
            return verdict

        current = replicas.current_sites(reachable)  # Q
        newest = replicas.newest_sites(reachable)  # S
        reference = min(current)  # m: all of Q share one state triple
        anchor_state = replicas.state(reference)
        partition_set = anchor_state.partition_set  # P_m
        self._check_generation(current)

        if self.lineage_guard:
            # Topological vote-claiming is unsafe across *sequential*
            # total failures of a segment: each of two segment mates can,
            # in turn, claim the other's vote over the same generation and
            # fork the commit history (DESIGN.md §3).  The paper's
            # availability study implicitly follows a single global
            # lineage — the Available-Copy "wait for the last to fail"
            # rule a segment falls back to — so the topological protocols
            # refuse any grant whose anchor is not at the globally newest
            # committed generation.
            global_top = replicas.max_operation(replicas.copy_sites)
            if anchor_state.operation < global_top:
                verdict = Verdict(
                    granted=False,
                    block=block,
                    reachable=reachable,
                    current=current,
                    newest=newest,
                    counted=frozenset(),
                    partition_set=partition_set,
                    reference=reference,
                    reason=(
                        "stale generation: a newer commit exists at an "
                        "unreachable copy (lineage guard)"
                    ),
                )
                if self._tracer is not None:
                    self._trace_decision(verdict)
                return verdict

        counted = self._counted(view, reachable, partition_set, current)
        doubled = 2 * self._measure(counted)
        size = self._measure(partition_set)
        tie_break_winner: Optional[int] = None
        if doubled > size:
            granted = True
            reason = ""
        elif self.tie_break and doubled == size and view.max_site(partition_set) in current:
            granted = True
            reason = ""
            tie_break_winner = view.max_site(partition_set)
        elif doubled == size:
            if self.tie_break:
                reason = (
                    "tie: exactly half of the previous partition set, "
                    "without its maximum element"
                )
            else:
                reason = (
                    "tie: exactly half of the previous partition set "
                    "(no tie-breaking rule)"
                )
            granted = False
        else:
            reason = "fewer than half of the previous partition set reachable"
            granted = False

        verdict = Verdict(
            granted=granted,
            block=block,
            reachable=reachable,
            current=current,
            newest=newest,
            counted=counted,
            partition_set=partition_set,
            reference=reference,
            reason=reason,
        )
        if self._tracer is not None:
            self._trace_decision(
                verdict,
                tie_break_winner=tie_break_winner,
                carried=counted - reachable,
            )
        return verdict

    def _measure(self, sites: frozenset[int]) -> int:
        """How much voting power *sites* carry.

        The paper's protocols count copies (one site, one vote); the
        weighted extension overrides this with a weight sum.  Must be a
        non-negative integer-valued measure so the half-of-``P_m``
        comparisons stay exact.
        """
        return len(sites)

    def _counted(
        self,
        view: NetworkView,
        reachable: frozenset[int],
        partition_set: frozenset[int],
        current: frozenset[int],
    ) -> frozenset[int]:
        """The vote set compared against ``|P_m| / 2``.

        Plain protocols count ``Q``.  Topological protocols count
        ``T = {r in P_m : exists s in P_m ∩ R on r's segment}`` — a live
        member of the previous quorum carries the votes of its segment
        mates, which cannot be partitioned away and hence must be down.
        """
        if not self.topological:
            return current
        active = partition_set & reachable  # the claimants: P_m ∩ R
        counted = frozenset(
            r
            for r in partition_set
            if any(view.same_segment(r, s) for s in active)
        )
        return counted

    def _check_generation(self, current: frozenset[int]) -> None:
        """All of ``Q`` must carry the same state triple.

        Commits are totally ordered by mutual exclusion, so equal
        operation numbers imply the same originating commit.  A mismatch
        means the invariant was already broken; fail loudly.
        """
        states = {self._replicas.state(s).snapshot() for s in current}
        if len(states) != 1:
            raise ProtocolError(
                f"divergent state among current sites {sorted(current)}: {states}"
            )

    # ------------------------------------------------------------------
    # Figures 1/2 (5/6): READ and WRITE
    # ------------------------------------------------------------------
    def read(self, view: NetworkView, site_id: int) -> Verdict:
        return self._operate(view, site_id, OperationKind.READ)

    def write(self, view: NetworkView, site_id: int) -> Verdict:
        return self._operate(view, site_id, OperationKind.WRITE)

    def _operate(self, view: NetworkView, site_id: int, kind: OperationKind) -> Verdict:
        block = self._block_for_request(view, site_id)
        verdict = self.evaluate_block(view, block)
        if verdict.granted:
            self._commit_operation(verdict, write=(kind is OperationKind.WRITE))
        return verdict

    def _commit_operation(self, verdict: Verdict, write: bool,
                          kind: Optional[str] = None) -> None:
        """COMMIT(S, o_m + 1, v_m [+1], S)."""
        self._note_claims(verdict)
        assert verdict.reference is not None
        anchor = self._replicas.state(verdict.reference)
        new_operation = anchor.operation + 1
        new_version = anchor.version + (1 if write else 0)
        new_set = verdict.newest
        for sid in new_set:
            self._replicas.state(sid).commit(new_operation, new_version, new_set)
        kind = kind or ("write" if write else "read")
        self._record(kind, new_operation, new_version, new_set)
        self._trace_commit(kind, new_operation, new_version, new_set)

    # ------------------------------------------------------------------
    # Figure 3 (7): RECOVER
    # ------------------------------------------------------------------
    def recover(self, view: NetworkView, site_id: int) -> Verdict:
        """One attempt of the RECOVER loop for the copy at *site_id*.

        On success the recovering site is reinserted:
        ``COMMIT(S ∪ {l}, o_m + 1, v_m, S ∪ {l})`` — the version bump to
        ``v_m`` models "copy the file from site m".
        """
        self._require_copy(site_id)
        block = self._block_for_request(view, site_id)
        verdict = self.evaluate_block(view, block)
        if not verdict.granted:
            return verdict
        self._note_claims(verdict)
        assert verdict.reference is not None
        anchor = self._replicas.state(verdict.reference)
        new_set = verdict.newest | {site_id}
        new_operation = anchor.operation + 1
        for sid in new_set:
            self._replicas.state(sid).commit(new_operation, anchor.version, new_set)
        self._record("recover", new_operation, anchor.version, new_set)
        self._trace_commit("recover", new_operation, anchor.version, new_set)
        return verdict

    def _note_claims(self, verdict: Verdict) -> None:
        if self.topological and (verdict.counted - verdict.reachable):
            self.claimed_vote_grants += 1

    # ------------------------------------------------------------------
    def synchronize(self, view: NetworkView) -> None:
        """Recover every reachable stale copy, then adjust the quorum.

        Equivalent to: each stale reachable copy runs its RECOVER loop,
        then a null operation shrinks the partition set to the reachable
        current copies.  Converges in at most ``|copies| + 1`` rounds.
        """
        copies = self._replicas.copy_sites
        for _ in range(len(copies) + 2):
            verdict = self.evaluate(view)
            if not verdict.granted:
                return
            stale = sorted((copies & verdict.block) - verdict.current)
            if stale:
                self.recover(view, stale[0])
                continue
            if verdict.partition_set != verdict.newest:
                # Null operation: quorum adjustment without data movement.
                self._commit_operation(verdict, write=False, kind="adjust")
            return
        raise ProtocolError("synchronize failed to converge")  # pragma: no cover

    def recover_stale(self, view: NetworkView) -> None:
        """Recoveries only — the restarting sites' own RECOVER loops.

        Note that RECOVER's commit ``(S ∪ {l}, o_m + 1, v_m, S ∪ {l})``
        *does* replace the partition set with the reachable current
        copies plus the recoverer, so recovery can shrink a quorum as a
        side effect when some previous members are unreachable; what it
        never does is run the gratuitous null-operation adjustment that
        eager protocols perform on every network event.
        """
        copies = self._replicas.copy_sites
        for _ in range(len(copies) + 1):
            verdict = self.evaluate(view)
            if not verdict.granted:
                return
            stale = sorted((copies & verdict.block) - verdict.current)
            if not stale:
                return
            self.recover(view, stale[0])
