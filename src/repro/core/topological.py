"""Topological Dynamic Voting — the paper's second contribution (Section 3).

Sites on the same unsegmented carrier-sense segment (or token ring) can
never be separated by a network partition.  Hence, if a member ``s`` of
the previous majority block is reachable, every *unreachable* member on
``s``'s segment must be **down**, not partitioned away — it cannot take
part in a rival quorum, and ``s`` may safely carry its vote.

Formally the counted set becomes::

    T = { r in P_m : exists s in (P_m ∩ R) with segment(r) == segment(s) }

and the grant test is ``|T| > |P_m|/2`` or ``|T| = |P_m|/2`` with
``max(P_m) in Q``.  (The paper's Figure 5 prints ``P_m ∪ R`` — the prose
makes clear the intended set is ``P_m ∩ R_k``; see DESIGN.md §3.)

With every copy on one segment this degenerates into an Available-Copy
protocol: one live copy suffices.  The flip side, inherited from
Available Copy, is the *sequential total-failure caveat*: after all of a
segment's current copies fail, the first to recover may claim its dead
segment-mates' votes without having observed their newer state.
Concurrent mutual exclusion always holds; the
``claimed_vote_grants`` counter exposes when the caveat could apply.
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.base import DynamicVotingFamily

__all__ = ["TopologicalDynamicVoting"]


class TopologicalDynamicVoting(DynamicVotingFamily):
    """TDV — dynamic voting that claims votes of same-segment dead sites."""

    name: ClassVar[str] = "TDV"
    eager: ClassVar[bool] = True
    tie_break: ClassVar[bool] = True
    topological: ClassVar[bool] = True
    lineage_guard: ClassVar[bool] = True
