"""Optimistic Topological Dynamic Voting (Figures 5–7 of the paper).

The combination of both contributions: topological vote-claiming with
access-time-only state updates.  "Topological Dynamic Voting ... can be
easily combined with Optimistic Dynamic Voting to obtain a more efficient
consistency algorithm."
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.base import DynamicVotingFamily

__all__ = ["OptimisticTopologicalDynamicVoting"]


class OptimisticTopologicalDynamicVoting(DynamicVotingFamily):
    """OTDV — topological vote claiming on access-time state only."""

    name: ClassVar[str] = "OTDV"
    eager: ClassVar[bool] = False
    tie_break: ClassVar[bool] = True
    topological: ClassVar[bool] = True
    lineage_guard: ClassVar[bool] = True
