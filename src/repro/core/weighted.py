"""Weighted static voting (Gifford, SOSP 1979).

The generalisation of MCV the paper's conclusion points at ("more studies
are still needed ... to analyze weight assignments"): each copy carries a
non-negative integer weight, and separate read and write quorums ``r``
and ``w`` satisfy ``r + w > W`` and ``2 w > W`` (``W`` = total weight), so
any read intersects the last write and any two writes intersect.

This is an *extension* module — the paper's Table 2/3 baselines use plain
MCV (all weights 1, ``r = w =`` majority) — exercised by the weight-
assignment ablation benchmark.
"""

from __future__ import annotations

from typing import ClassVar, Mapping, Optional

from repro.core.base import Verdict, VotingProtocol
from repro.errors import ConfigurationError
from repro.net.views import NetworkView
from repro.replica.state import ReplicaSet

__all__ = ["WeightedMajorityVoting"]


class WeightedMajorityVoting(VotingProtocol):
    """Static voting with per-copy weights and read/write quorums."""

    name: ClassVar[str] = "WMCV"
    eager: ClassVar[bool] = True

    def __init__(
        self,
        replicas: ReplicaSet,
        weights: Optional[Mapping[int, int]] = None,
        read_quorum: Optional[int] = None,
        write_quorum: Optional[int] = None,
    ):
        super().__init__(replicas)
        if weights is None:
            weights = {sid: 1 for sid in replicas.copy_sites}
        if set(weights) != set(replicas.copy_sites):
            raise ConfigurationError(
                "weights must cover exactly the copy sites; got "
                f"{sorted(weights)} for copies {sorted(replicas.copy_sites)}"
            )
        if any(w < 0 for w in weights.values()):
            raise ConfigurationError("weights must be non-negative")
        total = sum(weights.values())
        if total <= 0:
            raise ConfigurationError("total weight must be positive")
        majority = total // 2 + 1
        read_quorum = majority if read_quorum is None else read_quorum
        write_quorum = majority if write_quorum is None else write_quorum
        if read_quorum + write_quorum <= total:
            raise ConfigurationError(
                f"need r + w > W: {read_quorum} + {write_quorum} <= {total}"
            )
        if 2 * write_quorum <= total:
            raise ConfigurationError(
                f"need 2w > W: 2 * {write_quorum} <= {total}"
            )
        self._weights = dict(weights)
        self._total = total
        self._read_quorum = read_quorum
        self._write_quorum = write_quorum

    # ------------------------------------------------------------------
    @property
    def total_weight(self) -> int:
        return self._total

    @property
    def read_quorum(self) -> int:
        return self._read_quorum

    @property
    def write_quorum(self) -> int:
        return self._write_quorum

    def weight_of(self, sites: frozenset[int]) -> int:
        """Total vote weight carried by *sites*."""
        return sum(self._weights.get(s, 0) for s in sites)

    # ------------------------------------------------------------------
    def can_read(self, view: NetworkView) -> bool:
        """Whether some block assembles the read quorum."""
        return self._best_weight(view) >= self._read_quorum

    def can_write(self, view: NetworkView) -> bool:
        """Whether some block assembles the write quorum."""
        return self._best_weight(view) >= self._write_quorum

    def _best_weight(self, view: NetworkView) -> int:
        copies = self._replicas.copy_sites
        best = 0
        for block in view.blocks:
            reachable = block & copies
            if reachable:
                best = max(best, self.weight_of(frozenset(reachable)))
        return best

    # ------------------------------------------------------------------
    def evaluate_block(self, view: NetworkView, block: frozenset[int]) -> Verdict:
        """Full availability: the block can both read and write."""
        reachable = self._replicas.reachable(block)
        if not reachable:
            return Verdict.denial("no copies reachable in block", block)
        weight = self.weight_of(reachable)
        needed = max(self._read_quorum, self._write_quorum)
        granted = weight >= needed
        newest = self._replicas.newest_sites(reachable)
        return Verdict(
            granted=granted,
            block=block,
            reachable=reachable,
            current=reachable,
            newest=newest,
            counted=reachable,
            partition_set=self._replicas.copy_sites,
            reference=min(newest),
            reason="" if granted else (
                f"block weight {weight} below quorum {needed}"
            ),
        )

    # ------------------------------------------------------------------
    def read(self, view: NetworkView, site_id: int) -> Verdict:
        block = self._block_for_request(view, site_id)
        reachable = self._replicas.reachable(block)
        verdict = self.evaluate_block(view, block)
        if not reachable:
            return verdict
        if self.weight_of(reachable) >= self._read_quorum:
            # Read quorum met even if the combined verdict was a denial.
            return Verdict(
                granted=True,
                block=block,
                reachable=reachable,
                current=reachable,
                newest=verdict.newest,
                counted=reachable,
                partition_set=self._replicas.copy_sites,
                reference=verdict.reference,
            )
        return verdict

    def write(self, view: NetworkView, site_id: int) -> Verdict:
        block = self._block_for_request(view, site_id)
        reachable = self._replicas.reachable(block)
        if not reachable or self.weight_of(reachable) < self._write_quorum:
            return self.evaluate_block(view, block)
        newest = self._replicas.newest_sites(reachable)
        new_version = self._replicas.max_version(reachable) + 1
        for sid in reachable:
            state = self._replicas.state(sid)
            state.commit(new_version, new_version, state.partition_set)
        return Verdict(
            granted=True,
            block=block,
            reachable=reachable,
            current=reachable,
            newest=newest,
            counted=reachable,
            partition_set=self._replicas.copy_sites,
            reference=min(newest),
        )

    def recover(self, view: NetworkView, site_id: int) -> Verdict:
        """As in MCV: a restarted copy votes immediately; refresh its data."""
        self._require_copy(site_id)
        block = self._block_for_request(view, site_id)
        verdict = self.evaluate_block(view, block)
        newest_version = self._replicas.max_version(verdict.reachable)
        state = self._replicas.state(site_id)
        if state.version < newest_version:
            state.commit(newest_version, newest_version, state.partition_set)
        return verdict

    def synchronize(self, view: NetworkView) -> None:
        """Static quorums: nothing to maintain."""
