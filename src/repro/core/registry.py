"""Name-based construction of protocols.

The experiment harness, CLI and benchmarks refer to policies by the
paper's abbreviations; this module maps those names to constructors.
"""

from __future__ import annotations

from typing import Callable

from repro.core.available_copy import AvailableCopy
from repro.core.base import VotingProtocol
from repro.core.cardinality import CardinalityDynamicVoting
from repro.core.dynamic import DynamicVoting
from repro.core.lexicographic import LexicographicDynamicVoting
from repro.core.mcv import MajorityConsensusVoting
from repro.core.optimistic import OptimisticDynamicVoting
from repro.core.optimistic_topological import OptimisticTopologicalDynamicVoting
from repro.core.reassignment import VoteReassignmentVoting
from repro.core.topological import TopologicalDynamicVoting
from repro.errors import ConfigurationError
from repro.replica.state import ReplicaSet

__all__ = ["PAPER_POLICIES", "available_policies", "make_protocol"]

#: The six policies of Tables 2 and 3, in the paper's column order.
PAPER_POLICIES: tuple[str, ...] = ("MCV", "DV", "LDV", "ODV", "TDV", "OTDV")

_FACTORIES: dict[str, Callable[[ReplicaSet], VotingProtocol]] = {
    "MCV": MajorityConsensusVoting,
    "DV": DynamicVoting,
    "LDV": LexicographicDynamicVoting,
    "ODV": OptimisticDynamicVoting,
    "TDV": TopologicalDynamicVoting,
    "OTDV": OptimisticTopologicalDynamicVoting,
    "AC": AvailableCopy,
    "JM-DV": CardinalityDynamicVoting,
    "DVR": VoteReassignmentVoting,
}


def available_policies() -> tuple[str, ...]:
    """Every policy name :func:`make_protocol` accepts."""
    return tuple(sorted(_FACTORIES))


def make_protocol(name: str, replicas: ReplicaSet) -> VotingProtocol:
    """Build the protocol called *name* over *replicas*.

    Raises:
        ConfigurationError: for an unknown policy name.
    """
    try:
        factory = _FACTORIES[name.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown policy {name!r}; choose from {available_policies()}"
        ) from None
    return factory(replicas)
