"""Lexicographic Dynamic Voting (Jajodia, ICDE 1987).

Extends DV with a total ordering of the sites: a group holding *exactly*
one half of the previous majority block may proceed iff it contains the
maximum element of that block.  Two disjoint halves cannot both hold the
maximum, so mutual exclusion is preserved while most ties are resolved.
Evaluated with instantaneous state information (eager), as in the paper.
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.base import DynamicVotingFamily

__all__ = ["LexicographicDynamicVoting"]


class LexicographicDynamicVoting(DynamicVotingFamily):
    """LDV — dynamic quorums + lexicographic tie-break, instantaneous state."""

    name: ClassVar[str] = "LDV"
    eager: ClassVar[bool] = True
    tie_break: ClassVar[bool] = True
    topological: ClassVar[bool] = False
