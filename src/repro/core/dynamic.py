"""Original Dynamic Voting (Davcev & Burkhard, SOSP 1985).

A new majority block must contain a *strict* majority of the previous
one; ties (exactly half on each side) make the file unavailable.  The
paper evaluates DV with instantaneous state information, so this class is
*eager*: the driver synchronises it at every network change.
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.base import DynamicVotingFamily

__all__ = ["DynamicVoting"]


class DynamicVoting(DynamicVotingFamily):
    """DV — dynamic quorums, no tie-breaking rule, instantaneous state."""

    name: ClassVar[str] = "DV"
    eager: ClassVar[bool] = True
    tie_break: ClassVar[bool] = False
    topological: ClassVar[bool] = False
