"""Static Majority Consensus Voting (Ellis 1977, Gifford 1979).

The baseline every dynamic protocol is measured against.  The quorum is
fixed at a strict majority of *all* physical copies: any partition block
containing more than half of the copies (up or freshly restarted — every
copy always votes) may access the file.  Because any two majorities
intersect and a majority always contains a copy holding the latest
version, consistency holds with no dynamic state at all — but a few
failures can make every block fall below the static quorum, which is
exactly the weakness dynamic voting removes.
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.base import OperationKind, Verdict, VotingProtocol
from repro.errors import ConfigurationError
from repro.net.views import NetworkView
from repro.replica.state import ReplicaSet

__all__ = ["MajorityConsensusVoting"]


class MajorityConsensusVoting(VotingProtocol):
    """MCV — one vote per copy, static majority quorum.

    State kept per copy is just the version number (operation numbers
    mirror versions so the shared ``ReplicaState`` invariants hold; the
    partition set is never consulted and never changes).

    Ties with an even number of copies are resolved statically with the
    same lexicographic convention as the dynamic protocols: a group
    holding exactly half of the copies wins iff it contains the maximum
    site.  The paper never states this for MCV, but its four-copy Table 2
    rows demand it — e.g. configuration F would otherwise be unavailable
    for site 4's entire two-week repairs (~0.12 unavailability versus the
    published 0.002761); see DESIGN.md §3.  Equivalent to giving the
    maximum site one extra vote in Gifford's weighted scheme.  Pass
    ``tie_break=False`` for the strict textbook quorum.
    """

    name: ClassVar[str] = "MCV"
    eager: ClassVar[bool] = True

    def __init__(self, replicas: ReplicaSet, tie_break: bool = True):
        super().__init__(replicas)
        if len(replicas) < 1:
            raise ConfigurationError("MCV needs at least one copy")
        self._quorum = len(replicas) // 2 + 1
        self._tie_break = tie_break

    @property
    def quorum(self) -> int:
        """Votes required: strict majority of all copies."""
        return self._quorum

    @property
    def tie_break(self) -> bool:
        """Whether an exact half containing the maximum site suffices."""
        return self._tie_break

    # ------------------------------------------------------------------
    def evaluate_block(self, view: NetworkView, block: frozenset[int]) -> Verdict:
        replicas = self._replicas
        reachable = replicas.reachable(block)
        if not reachable:
            verdict = Verdict.denial("no copies reachable in block", block)
            if self._tracer is not None:
                self._trace_decision(verdict)
            return verdict
        copies = replicas.copy_sites
        granted = 2 * len(reachable) > len(copies)
        tie_break_winner = None
        if (
            not granted
            and self._tie_break
            and 2 * len(reachable) == len(copies)
            and view.max_site(copies) in reachable
        ):
            granted = True
            tie_break_winner = view.max_site(copies)
        newest = replicas.newest_sites(reachable)
        verdict = Verdict(
            granted=granted,
            block=block,
            reachable=reachable,
            current=reachable,  # every copy votes, stale or not
            newest=newest,
            counted=reachable,
            partition_set=replicas.copy_sites,  # the static denominator
            reference=min(newest),
            reason="" if granted else (
                f"{len(reachable)} of {len(replicas)} copies reachable, "
                f"quorum is {self._quorum}"
            ),
        )
        if self._tracer is not None:
            self._trace_decision(verdict, tie_break_winner=tie_break_winner)
        return verdict

    # ------------------------------------------------------------------
    def read(self, view: NetworkView, site_id: int) -> Verdict:
        """Reads collect a majority and use its newest copy; no state change."""
        block = self._block_for_request(view, site_id)
        return self.evaluate_block(view, block)

    def write(self, view: NetworkView, site_id: int) -> Verdict:
        """Writes install ``max version + 1`` at every reachable copy."""
        block = self._block_for_request(view, site_id)
        verdict = self.evaluate_block(view, block)
        if not verdict.granted:
            return verdict
        assert verdict.reference is not None
        new_version = self._replicas.state(verdict.reference).version + 1
        for sid in verdict.reachable:
            state = self._replicas.state(sid)
            # Keep o == v: MCV has no separate operation counter.
            state.commit(new_version, new_version, state.partition_set)
        return verdict

    def recover(self, view: NetworkView, site_id: int) -> Verdict:
        """A restarted copy votes again immediately; it refreshes its data
        (version) if a newer reachable copy exists, but needs no quorum —
        staleness is caught by version comparison inside later quorums."""
        self._require_copy(site_id)
        block = self._block_for_request(view, site_id)
        verdict = self.evaluate_block(view, block)
        newest_version = self._replicas.max_version(verdict.reachable)
        state = self._replicas.state(site_id)
        if state.version < newest_version:
            state.commit(newest_version, newest_version, state.partition_set)
        return verdict

    def synchronize(self, view: NetworkView) -> None:
        """MCV keeps no dynamic quorum state; nothing to do."""

    # ------------------------------------------------------------------
    def operate(self, view: NetworkView, site_id: int, kind: OperationKind) -> Verdict:
        """Dispatch helper used by the engine."""
        if kind is OperationKind.READ:
            return self.read(view, site_id)
        if kind is OperationKind.WRITE:
            return self.write(view, site_id)
        return self.recover(view, site_id)
