"""Weighted dynamic voting — weight assignments in the dynamic setting.

The paper closes with "More studies are still needed ... to analyze
weight assignments."  :class:`~repro.core.weighted.WeightedMajorityVoting`
covers the static case (Gifford); this class applies per-copy weights to
the *dynamic* quorum test: with ``w(X)`` the weight of a site set,

```
w(Q) > w(P_m) / 2      or      w(Q) = w(P_m) / 2  and  max(P_m) ∈ Q
```

Membership still adapts exactly as in LDV/ODV — COMMITs replace ``P``
with the reachable newest copies — only the counting is weighted, so a
heavyweight survivor can hold a quorum where an unweighted protocol
would see a lost tie.  Safety is §2 of docs/CORRECTNESS.md with
cardinalities replaced by weights: two disjoint subsets of one ``P_m``
cannot both reach half its weight while both containing the maximum.

Combine with the family switches for optimistic or topological variants
(see :class:`OptimisticWeightedDynamicVoting`).
"""

from __future__ import annotations

from typing import ClassVar, Mapping, Optional

from repro.core.base import DynamicVotingFamily
from repro.errors import ConfigurationError
from repro.replica.state import ReplicaSet

__all__ = [
    "OptimisticWeightedDynamicVoting",
    "WeightedDynamicVoting",
    "WeightedTopologicalDynamicVoting",
]


class WeightedDynamicVoting(DynamicVotingFamily):
    """LDV with per-copy vote weights (eager)."""

    name: ClassVar[str] = "WDV"
    eager: ClassVar[bool] = True
    tie_break: ClassVar[bool] = True
    topological: ClassVar[bool] = False

    def __init__(
        self,
        replicas: ReplicaSet,
        weights: Optional[Mapping[int, int]] = None,
    ):
        super().__init__(replicas)
        if weights is None:
            weights = {sid: 1 for sid in replicas.copy_sites}
        if set(weights) != set(replicas.copy_sites):
            raise ConfigurationError(
                "weights must cover exactly the copy sites; got "
                f"{sorted(weights)} for copies {sorted(replicas.copy_sites)}"
            )
        bad = {s: w for s, w in weights.items()
               if not isinstance(w, int) or w < 0}
        if bad:
            raise ConfigurationError(
                f"weights must be non-negative integers, got {bad}"
            )
        if sum(weights.values()) <= 0:
            raise ConfigurationError("total weight must be positive")
        self._weights = dict(weights)

    @property
    def weights(self) -> dict[int, int]:
        """The static per-copy vote weights."""
        return dict(self._weights)

    def _measure(self, sites: frozenset[int]) -> int:
        return sum(self._weights.get(s, 0) for s in sites)


class OptimisticWeightedDynamicVoting(WeightedDynamicVoting):
    """Weighted ODV: weighted counting, access-time state updates."""

    name: ClassVar[str] = "OWDV"
    eager: ClassVar[bool] = False


class WeightedTopologicalDynamicVoting(WeightedDynamicVoting):
    """Weighted TDV: segment mates carry their dead neighbours' *weights*.

    The claimable set ``T`` is computed exactly as in
    :class:`~repro.core.topological.TopologicalDynamicVoting`; only the
    measure changes, so a heavyweight dead neighbour contributes its full
    weight through any live segment mate.  Runs with the lineage guard
    like every topological protocol here.
    """

    name: ClassVar[str] = "WTDV"
    eager: ClassVar[bool] = True
    topological: ClassVar[bool] = True
    lineage_guard: ClassVar[bool] = True
