"""Dynamic voting with witness copies (Pâris, ICDCS 1986).

The paper's conclusion flags witnesses as the next study: a *witness* is
a copy that records the full consistency-control state ``(o, v, P)`` but
stores **no data**.  Witnesses vote in quorums at negligible storage
cost, so "two copies plus one witness" approaches the availability of
three full copies for a fraction of the disk.

Implementation: the lexicographic dynamic-voting rules apply unchanged to
the union of full copies and witnesses; an access is additionally granted
only if a *full* copy holding the newest reachable version is present —
a quorum of witnesses alone can prove it is the majority partition but
has no bytes to serve.  Likewise a recovering full copy needs a full
source to clone from, while a witness recovers from anyone's state.

This class is an extension beyond the protocols in Table 2, exercised by
the witness ablation benchmark (DESIGN.md experiment X3).
"""

from __future__ import annotations

from typing import AbstractSet, ClassVar

from repro.core.base import DynamicVotingFamily, Verdict
from repro.errors import ConfigurationError
from repro.net.views import NetworkView
from repro.replica.state import ReplicaSet

__all__ = [
    "DynamicVotingWithWitnesses",
    "TopologicalDynamicVotingWithWitnesses",
]


class DynamicVotingWithWitnesses(DynamicVotingFamily):
    """LDV over full copies plus data-less witnesses."""

    name: ClassVar[str] = "LDV+W"
    eager: ClassVar[bool] = True
    tie_break: ClassVar[bool] = True
    topological: ClassVar[bool] = False

    def __init__(self, replicas: ReplicaSet, witness_sites: AbstractSet[int]):
        super().__init__(replicas)
        witnesses = frozenset(witness_sites)
        unknown = witnesses - replicas.copy_sites
        if unknown:
            raise ConfigurationError(
                f"witness sites {sorted(unknown)} hold no replica state"
            )
        if witnesses == replicas.copy_sites:
            raise ConfigurationError("at least one full (data) copy is required")
        self._witnesses = witnesses

    @property
    def witness_sites(self) -> frozenset[int]:
        """Sites holding state-only witnesses."""
        return self._witnesses

    @property
    def full_sites(self) -> frozenset[int]:
        """Sites holding full data copies."""
        return self._replicas.copy_sites - self._witnesses

    @property
    def data_sites(self) -> frozenset[int]:
        """Only full copies hold bytes; witnesses are state-only."""
        return self.full_sites

    # ------------------------------------------------------------------
    def evaluate_block(self, view: NetworkView, block: frozenset[int]) -> Verdict:
        verdict = super().evaluate_block(view, block)
        if not verdict.granted:
            return verdict
        if verdict.newest & self.full_sites:
            return verdict
        # A witness-only quorum: majority proven, but no current data to
        # serve or propagate.  Deny without touching state.
        return Verdict(
            granted=False,
            block=verdict.block,
            reachable=verdict.reachable,
            current=verdict.current,
            newest=verdict.newest,
            counted=verdict.counted,
            partition_set=verdict.partition_set,
            reference=verdict.reference,
            reason="quorum holds only witnesses; no full copy with current data",
        )

    def recover(self, view: NetworkView, site_id: int) -> Verdict:
        """A witness recovers from anyone; a full copy needs a full source.

        The data-source requirement is already enforced by
        :meth:`evaluate_block` (the quorum must contain a newest full
        copy), so the base RECOVER applies to both kinds of site.
        """
        return super().recover(view, site_id)


    # ------------------------------------------------------------------
    # witness promotion / demotion (Pari86's conversion operations)
    # ------------------------------------------------------------------
    def promote(self, view: NetworkView, site_id: int) -> Verdict:
        """Turn the witness at *site_id* into a full copy.

        Requires the majority partition (the promotion is an operation:
        the witness must fetch current data from a newest full copy, and
        the change must be serialised against rival quorums).  On grant
        the witness leaves the witness set and is committed into the new
        partition set like a recovering copy.

        Raises:
            ConfigurationError: if *site_id* is not a witness.
        """
        if site_id not in self._witnesses:
            raise ConfigurationError(f"site {site_id} is not a witness")
        block = self._block_for_request(view, site_id)
        verdict = self.evaluate_block(view, block)
        if not verdict.granted:
            return verdict
        # Data is cloned from a newest full copy (the grant guarantees
        # one is reachable); then the site participates as a full copy.
        self._witnesses = self._witnesses - {site_id}
        assert verdict.reference is not None
        anchor = self._replicas.state(verdict.reference)
        new_set = verdict.newest | {site_id}
        new_operation = anchor.operation + 1
        for sid in new_set:
            self._replicas.state(sid).commit(
                new_operation, anchor.version, new_set
            )
        self._record("promote", new_operation, anchor.version, new_set)
        return verdict

    def demote(self, view: NetworkView, site_id: int) -> Verdict:
        """Turn the full copy at *site_id* into a witness.

        The site keeps its state but drops its data.  Requires the
        majority partition, and at least one *other* full copy must
        remain — a file of witnesses alone is unreadable forever.

        Raises:
            ConfigurationError: if *site_id* is already a witness or is
                the last full copy.
        """
        if site_id in self._witnesses:
            raise ConfigurationError(f"site {site_id} is already a witness")
        if self.full_sites == {site_id}:
            raise ConfigurationError(
                f"site {site_id} is the last full copy; demotion would "
                "leave no data"
            )
        block = self._block_for_request(view, site_id)
        verdict = self.evaluate_block(view, block)
        if not verdict.granted:
            return verdict
        remaining_full = (verdict.newest & self.full_sites) - {site_id}
        if not remaining_full:
            raise ConfigurationError(
                "no other newest full copy reachable; demotion would "
                "orphan the current data"
            )
        self._witnesses = self._witnesses | {site_id}
        assert verdict.reference is not None
        anchor = self._replicas.state(verdict.reference)
        new_set = verdict.newest | {site_id}
        new_operation = anchor.operation + 1
        for sid in new_set:
            self._replicas.state(sid).commit(
                new_operation, anchor.version, new_set
            )
        self._record("demote", new_operation, anchor.version, new_set)
        return verdict


class TopologicalDynamicVotingWithWitnesses(DynamicVotingWithWitnesses):
    """Witnesses combined with topological vote claiming.

    A live segment mate may carry a dead *witness's* vote just like a
    dead copy's — witnesses are ordinary quorum members; only the data
    condition (a newest full copy must be reachable) distinguishes them.
    Runs with the lineage guard, like every topological protocol here.
    """

    name: ClassVar[str] = "TDV+W"
    eager: ClassVar[bool] = True
    topological: ClassVar[bool] = True
    lineage_guard: ClassVar[bool] = True
