"""Network substrate: sites, segments, gateways and partitions.

The paper's environment is a local-area network built from *indivisible*
carrier-sense segments (or token rings) joined by gateway hosts.  Segments
never partition internally; a partition can only appear when a gateway
fails.  This package models that world:

* :class:`~repro.net.sites.Site` — a host, with the rank used by the
  lexicographic tie-break (the paper orders sites A > B > C; we make the
  lowest-numbered site the maximum by default).
* :class:`~repro.net.topology.SegmentedTopology` — segments + gateways,
  the environment of Sections 3 and 4.
* :class:`~repro.net.topology.PointToPointTopology` — a general graph of
  sites and failure-prone links, for experiments outside the paper's LAN
  assumption.
* :class:`~repro.net.views.NetworkView` — an immutable snapshot of which
  sites are up and how they group into communicating blocks; this is what
  the voting protocols consume.
"""

from repro.net.sites import Site
from repro.net.topology import (
    PointToPointTopology,
    SegmentedTopology,
    Topology,
    single_segment,
)
from repro.net.views import NetworkView

__all__ = [
    "NetworkView",
    "PointToPointTopology",
    "SegmentedTopology",
    "Site",
    "Topology",
    "single_segment",
]
