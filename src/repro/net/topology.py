"""Network topologies and the partition oracle.

Two topology families are provided:

* :class:`SegmentedTopology` — the paper's environment: indivisible
  carrier-sense segments (or token rings) joined by gateway hosts.  The
  only partition points are the gateways; a segment's sites can never be
  separated from one another.
* :class:`PointToPointTopology` — an arbitrary graph of sites and
  failure-prone links, for experiments beyond the paper's LAN assumption.
  Every site is its own "segment", so topological vote-claiming never
  applies (as the paper requires for conventional point-to-point
  networks).

Both expose the same oracle: :meth:`Topology.blocks` maps the set of *up*
sites to the partition blocks — maximal groups of mutually communicating
up sites.
"""

from __future__ import annotations

import abc
from typing import AbstractSet, Iterable, Mapping, Sequence

from repro.errors import ConfigurationError, TopologyError, UnknownSiteError
from repro.net.sites import Site, lexicographic_max
from repro.net.views import NetworkView

__all__ = [
    "Topology",
    "SegmentedTopology",
    "PointToPointTopology",
    "single_segment",
]


class Topology(abc.ABC):
    """Abstract network: a set of sites plus a partition oracle."""

    def __init__(self, sites: Sequence[Site]):
        if not sites:
            raise TopologyError("a topology needs at least one site")
        ids = [s.id for s in sites]
        if len(set(ids)) != len(ids):
            raise TopologyError(f"duplicate site ids in {ids}")
        self._sites = {s.id: s for s in sites}
        self._ranks = {s.id: s.rank for s in sites}

    # ------------------------------------------------------------------
    @property
    def sites(self) -> tuple[Site, ...]:
        """All sites, ordered by id."""
        return tuple(self._sites[i] for i in sorted(self._sites))

    @property
    def site_ids(self) -> frozenset[int]:
        return frozenset(self._sites)

    def site(self, site_id: int) -> Site:
        """Look up a site by id.

        Raises:
            UnknownSiteError: if the topology has no such site.
        """
        try:
            return self._sites[site_id]
        except KeyError:
            raise UnknownSiteError(f"no site {site_id} in topology") from None

    def max_site(self, site_ids: Iterable[int]) -> int:
        """Maximum element of *site_ids* under the lexicographic order."""
        return lexicographic_max(site_ids, self._ranks)

    def _check_known(self, site_ids: AbstractSet[int]) -> None:
        unknown = site_ids - self._sites.keys()
        if unknown:
            raise UnknownSiteError(f"unknown sites: {sorted(unknown)}")

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def blocks(self, up: AbstractSet[int]) -> tuple[frozenset[int], ...]:
        """Partition the *up* sites into communicating blocks.

        Every up site appears in exactly one returned block; down sites
        appear in none.  Blocks are returned sorted by their smallest
        member for determinism.
        """

    @abc.abstractmethod
    def segment_of(self, site_id: int) -> str:
        """Name of the indivisible segment that *site_id* belongs to.

        Gateways belong to exactly one segment (their *home* segment), per
        the paper's rule for making topological vote-claiming safe.
        """

    def same_segment(self, a: int, b: int) -> bool:
        """Whether two sites can never be separated by a partition."""
        return self.segment_of(a) == self.segment_of(b)

    def view(self, up: AbstractSet[int]) -> NetworkView:
        """Snapshot the network with exactly the sites in *up* operational."""
        up = frozenset(up)
        self._check_known(up)
        return NetworkView(self, up, self.blocks(up))


class SegmentedTopology(Topology):
    """Carrier-sense segments joined by gateway hosts.

    Args:
        sites: All hosts.
        segments: Maps each segment name to the ids of the sites homed on
            it.  Every site must appear in exactly one segment.
        gateways: Maps a gateway site id to the segment names it joins
            when it is up.  A gateway's home segment must be among the
            segments it joins.

    Example (the paper's Figure 8 network)::

        SegmentedTopology(
            sites=[Site(i) for i in range(1, 9)],
            segments={"alpha": [1, 2, 3, 4, 5], "beta": [6], "gamma": [7, 8]},
            gateways={4: ("alpha", "beta"), 5: ("alpha", "gamma")},
        )
    """

    def __init__(
        self,
        sites: Sequence[Site],
        segments: Mapping[str, Iterable[int]],
        gateways: Mapping[int, Sequence[str]] | None = None,
    ):
        super().__init__(sites)
        gateways = dict(gateways or {})
        if not segments:
            raise TopologyError("at least one segment is required")

        self._segment_names = tuple(sorted(segments))
        self._home: dict[int, str] = {}
        self._members: dict[str, frozenset[int]] = {}
        for name in self._segment_names:
            members = frozenset(segments[name])
            self._check_known(members)
            for sid in members:
                if sid in self._home:
                    raise TopologyError(
                        f"site {sid} homed on both {self._home[sid]!r} and {name!r}"
                    )
                self._home[sid] = name
            self._members[name] = members
        homeless = self.site_ids - self._home.keys()
        if homeless:
            raise TopologyError(f"sites without a segment: {sorted(homeless)}")

        self._gateways: dict[int, tuple[str, ...]] = {}
        for sid, names in gateways.items():
            if sid not in self._sites:
                raise UnknownSiteError(f"gateway {sid} is not a site")
            joined = tuple(names)
            if len(joined) < 2:
                raise TopologyError(
                    f"gateway {sid} must join >= 2 segments, got {joined}"
                )
            for name in joined:
                if name not in self._members:
                    raise TopologyError(
                        f"gateway {sid} joins unknown segment {name!r}"
                    )
            if self._home[sid] not in joined:
                raise TopologyError(
                    f"gateway {sid}'s home segment {self._home[sid]!r} "
                    f"must be among the segments it joins {joined}"
                )
            self._gateways[sid] = joined

    # ------------------------------------------------------------------
    @property
    def segment_names(self) -> tuple[str, ...]:
        return self._segment_names

    @property
    def gateway_ids(self) -> frozenset[int]:
        """Sites whose failure can partition the network."""
        return frozenset(self._gateways)

    def segment_members(self, name: str) -> frozenset[int]:
        """Site ids homed on segment *name*."""
        try:
            return self._members[name]
        except KeyError:
            raise TopologyError(f"no segment {name!r}") from None

    def segment_of(self, site_id: int) -> str:
        self.site(site_id)  # raise UnknownSiteError for bad ids
        return self._home[site_id]

    def blocks(self, up: AbstractSet[int]) -> tuple[frozenset[int], ...]:
        self._check_known(frozenset(up))
        # Union-find over segments: an up gateway merges all its segments.
        parent = {name: name for name in self._segment_names}

        def find(name: str) -> str:
            root = name
            while parent[root] != root:
                root = parent[root]
            while parent[name] != root:  # path compression
                parent[name], name = root, parent[name]
            return root

        for gateway, joined in self._gateways.items():
            if gateway in up:
                anchor = find(joined[0])
                for other in joined[1:]:
                    parent[find(other)] = anchor

        groups: dict[str, set[int]] = {}
        for name in self._segment_names:
            root = find(name)
            members = self._members[name] & up
            if members:
                groups.setdefault(root, set()).update(members)
        return tuple(
            sorted((frozenset(g) for g in groups.values()), key=min)
        )


class PointToPointTopology(Topology):
    """A general graph of sites connected by failure-prone links.

    Links are undirected pairs of site ids.  The set of *failed* links is
    mutable state on the topology (:meth:`fail_link` / :meth:`repair_link`),
    so the same ``blocks(up)`` oracle interface works for both families.

    Every site is its own segment; topological vote-claiming therefore
    never fires, matching the paper's "conventional point-to-point
    networks" where any two sites may be separated.
    """

    def __init__(
        self,
        sites: Sequence[Site],
        links: Iterable[tuple[int, int]],
    ):
        super().__init__(sites)
        self._links: set[frozenset[int]] = set()
        for a, b in links:
            if a == b:
                raise TopologyError(f"self-link at site {a}")
            self._check_known(frozenset((a, b)))
            self._links.add(frozenset((a, b)))
        self._failed: set[frozenset[int]] = set()

    # ------------------------------------------------------------------
    @property
    def links(self) -> frozenset[frozenset[int]]:
        return frozenset(self._links)

    @property
    def failed_links(self) -> frozenset[frozenset[int]]:
        return frozenset(self._failed)

    def _edge(self, a: int, b: int) -> frozenset[int]:
        edge = frozenset((a, b))
        if edge not in self._links:
            raise TopologyError(f"no link between {a} and {b}")
        return edge

    def fail_link(self, a: int, b: int) -> None:
        """Mark the link between *a* and *b* as down."""
        self._failed.add(self._edge(a, b))

    def repair_link(self, a: int, b: int) -> None:
        """Bring the link between *a* and *b* back up."""
        self._failed.discard(self._edge(a, b))

    def segment_of(self, site_id: int) -> str:
        self.site(site_id)
        return f"pt-{site_id}"

    def blocks(self, up: AbstractSet[int]) -> tuple[frozenset[int], ...]:
        up = frozenset(up)
        self._check_known(up)
        # Breadth-first search over live links between up sites.
        adjacency: dict[int, list[int]] = {s: [] for s in up}
        for edge in self._links - self._failed:
            a, b = tuple(edge)
            if a in up and b in up:
                adjacency[a].append(b)
                adjacency[b].append(a)
        seen: set[int] = set()
        blocks: list[frozenset[int]] = []
        for start in sorted(up):
            if start in seen:
                continue
            component = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for neighbour in adjacency[node]:
                    if neighbour not in component:
                        component.add(neighbour)
                        frontier.append(neighbour)
            seen |= component
            blocks.append(frozenset(component))
        return tuple(sorted(blocks, key=min))


def single_segment(count: int, segment: str = "lan") -> SegmentedTopology:
    """A topology of *count* sites (ids 1..count) on one shared segment.

    This is the environment in which Topological Dynamic Voting
    degenerates into an Available-Copy protocol.
    """
    if count < 1:
        raise ConfigurationError(f"need >= 1 site, got {count}")
    sites = [Site(i) for i in range(1, count + 1)]
    return SegmentedTopology(sites, {segment: [s.id for s in sites]})
