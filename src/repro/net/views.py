"""Immutable snapshots of the network state.

A :class:`NetworkView` answers, for one instant of simulated time, the only
questions a voting protocol may ask of the network:

* which sites are up,
* which up sites can communicate (the partition *blocks*), and
* which sites share an indivisible segment (for topological voting).

The view is deliberately the *sole* conduit between the environment and
the protocols; protocols hold no live references to topology mutable
state, which keeps the optimistic protocols honest — they see the network
only when an operation runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, AbstractSet, Iterable

from repro.errors import UnknownSiteError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.topology import Topology

__all__ = ["NetworkView"]


class NetworkView:
    """The network as seen at one instant.

    Built by :meth:`Topology.view`; not normally constructed directly.
    """

    __slots__ = ("_topology", "_up", "_blocks", "_block_of")

    def __init__(
        self,
        topology: "Topology",
        up: frozenset[int],
        blocks: tuple[frozenset[int], ...],
    ):
        self._topology = topology
        self._up = up
        self._blocks = blocks
        self._block_of: dict[int, frozenset[int]] = {}
        for block in blocks:
            for site_id in block:
                self._block_of[site_id] = block

    # ------------------------------------------------------------------
    @property
    def topology(self) -> "Topology":
        return self._topology

    @property
    def up(self) -> frozenset[int]:
        """Ids of all operational sites."""
        return self._up

    @property
    def blocks(self) -> tuple[frozenset[int], ...]:
        """Maximal groups of mutually communicating up sites."""
        return self._blocks

    def is_up(self, site_id: int) -> bool:
        """Whether *site_id* is operational."""
        if site_id not in self._topology.site_ids:
            raise UnknownSiteError(f"no site {site_id} in topology")
        return site_id in self._up

    def block_of(self, site_id: int) -> frozenset[int]:
        """The communicating block containing *site_id*.

        Raises:
            UnknownSiteError: if the site does not exist or is down (a
                down site is in no block).
        """
        try:
            return self._block_of[site_id]
        except KeyError:
            if site_id in self._topology.site_ids:
                raise UnknownSiteError(f"site {site_id} is down") from None
            raise UnknownSiteError(f"no site {site_id} in topology") from None

    def reachable_from(self, site_id: int, targets: AbstractSet[int]) -> frozenset[int]:
        """Subset of *targets* that an operation at *site_id* can contact."""
        return self.block_of(site_id) & frozenset(targets)

    def can_communicate(self, a: int, b: int) -> bool:
        """Whether up sites *a* and *b* are in the same partition block."""
        return (
            a in self._block_of
            and b in self._block_of
            and self._block_of[a] is self._block_of[b]
        )

    def same_segment(self, a: int, b: int) -> bool:
        """Whether *a* and *b* are on the same indivisible segment.

        Defined for down sites too — segment membership is static.
        """
        return self._topology.same_segment(a, b)

    def max_site(self, site_ids: Iterable[int]) -> int:
        """Maximum element under the lexicographic site ordering."""
        return self._topology.max_site(site_ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        groups = ", ".join("{" + ",".join(map(str, sorted(b))) + "}" for b in self._blocks)
        return f"<NetworkView up={sorted(self._up)} blocks=[{groups}]>"
