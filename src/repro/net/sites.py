"""Site objects and the lexicographic site ordering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import ConfigurationError

__all__ = ["Site", "lexicographic_max"]


@dataclass(frozen=True, order=False)
class Site:
    """A host that may hold a physical copy of a replicated file.

    Attributes:
        id: Unique integer identifier (Table 1 numbers sites 1..8).
        name: Human-readable host name (``csvax``, ``beowulf``, ...).
        rank: Position in the total order used by the lexicographic
            tie-break.  *Higher rank wins.*  The paper's example orders
            A > B > C, i.e. the first-listed site is the greatest, so the
            default rank is ``-id`` (site 1 is the maximum element).
    """

    id: int
    name: str = ""
    rank: float = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.id < 0:
            raise ConfigurationError(f"site id must be >= 0, got {self.id}")
        if self.rank is None:
            object.__setattr__(self, "rank", float(-self.id))
        if not self.name:
            object.__setattr__(self, "name", f"site{self.id}")

    def __repr__(self) -> str:
        return f"Site({self.id}, {self.name!r})"


def lexicographic_max(site_ids: Iterable[int], ranks: dict[int, float]) -> int:
    """The maximum element of *site_ids* under the site ordering.

    Ties in rank are broken by the smaller id so the order is total even
    with user-supplied duplicate ranks.

    Raises:
        ConfigurationError: if *site_ids* is empty or contains an id
            missing from *ranks*.
    """
    ids = list(site_ids)
    if not ids:
        raise ConfigurationError("lexicographic_max of an empty site set")
    try:
        return max(ids, key=lambda s: (ranks[s], -s))
    except KeyError as exc:
        raise ConfigurationError(f"no rank for site {exc.args[0]}") from exc
