"""Shared infrastructure for the benchmark/reproduction harness.

Every table- or figure-level benchmark both *times* its workload (via
pytest-benchmark) and *prints/saves* the regenerated artefact: run with

    pytest benchmarks/ --benchmark-only -s

to see the tables inline; every artefact is also written to
``results/<name>.txt``.  Set ``REPRO_SIM_DAYS`` to lengthen the
simulated horizon (the default keeps the whole harness under a few
minutes; the paper-scale run uses 200000+).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def artefact_sink():
    """Writes named artefacts to results/ and echoes them to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def sink(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return sink


@pytest.fixture(scope="session")
def study_cache():
    """Shared (config, policy) -> CellResult cells across benchmarks, so
    Table 3 reuses the simulation Table 2 already timed."""
    return {}
