"""Placement ablation (experiment X5): Section 3's design rule.

"Topological Dynamic Voting greatly improves the availability of
replicated objects with two or more copies in the same non-partitionable
group" — and degenerates into Available Copy when all copies share one
segment.  Sweep every 3-copy placement under TDV and LDV, and verify the
single-segment placements dominate.
"""

from repro.experiments.report import ascii_table
from repro.experiments.runner import StudyParameters, default_horizon
from repro.experiments.sweep import placement_sweep
from repro.experiments.testbed import testbed_topology


def test_bench_placement_sweep(benchmark, artefact_sink):
    params = StudyParameters(
        horizon=default_horizon(10_000.0), warmup=360.0, batches=4,
        seed=1988,
    )

    def run():
        tdv = placement_sweep(3, "TDV", params=params)
        ldv = {r.copy_sites: r for r in placement_sweep(3, "LDV",
                                                        params=params)}
        return tdv, ldv

    tdv_rows, ldv = benchmark.pedantic(run, rounds=1, iterations=1)
    topology = testbed_topology()

    rows = [
        [row.label, row.segments_used, row.unavailability,
         ldv[row.copy_sites].unavailability]
        for row in tdv_rows[:10]
    ]
    artefact_sink(
        "x5_placement_sweep",
        "Best 3-copy placements under TDV (all 56 evaluated)\n"
        + ascii_table(["copies", "segments", "TDV unavail", "LDV unavail"],
                      rows),
    )

    # Single-segment placements of reliable sites degenerate into
    # Available Copy: better than any fully dispersed placement.
    single = [r for r in tdv_rows if r.segments_used == 1]
    dispersed = [r for r in tdv_rows if r.segments_used == 3]
    assert single, "the testbed has single-segment 3-copy placements"
    best_dispersed = min(r.unavailability for r in dispersed)
    assert min(r.unavailability for r in single) <= best_dispersed

    # Fully dispersed placements gain nothing over LDV (config C effect).
    for row in dispersed:
        assert row.unavailability == ldv[row.copy_sites].unavailability
