"""Lexicographic-ordering ablation (experiment X9).

The tie-break hands split-brain situations to the side holding the
maximum element; the paper fixes the ordering a priori (A > B > C) and
never asks which choice is best.  This benchmark makes each copy of
configuration H the maximum in turn.  The measured answer: what matters
is the maximum site's own *reliability* — a tie is only won while the
maximum is actually up, so hanging it on beowulf (MTTF 10 days) is an
order of magnitude worse than any of the stable sites, while the choice
of segment is secondary.
"""

from repro.experiments.configs import CONFIGURATIONS
from repro.experiments.ordering_sweep import ordering_sweep
from repro.experiments.report import ascii_table
from repro.experiments.runner import StudyParameters, default_horizon


def test_bench_ordering_choice(benchmark, artefact_sink):
    params = StudyParameters(
        horizon=default_horizon(15_000.0), warmup=360.0, batches=5,
        seed=1988,
    )
    copies = CONFIGURATIONS["H"].copy_sites   # 1, 2 | 7, 8 across gateway 5

    def run():
        return ordering_sweep(copies, policy="LDV", params=params)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [f"site {r.maximum_site} ({r.site_name})", r.unavailability,
         r.mean_down_duration]
        for r in results
    ]
    artefact_sink(
        "x9_ordering_choice",
        "Choice of lexicographic maximum, configuration H under LDV\n"
        + ascii_table(
            ["maximum element", "unavailability", "mean down (d)"], rows
        )
        + "\nA tie is only won while the maximum element is up: put it on "
        "a reliable\nsite.  Hanging the tie-break on beowulf (MTTF 10 days) "
        "costs an order of\nmagnitude; among the stable sites the choice "
        "barely matters.",
    )

    by_site = {r.maximum_site: r.unavailability for r in results}
    # The flaky site (beowulf, MTTF 10 d) is the worst possible maximum;
    # every stable site (csvax, rip, mangle) is a fine choice.
    stable_worst = max(by_site[1], by_site[7], by_site[8])
    assert by_site[2] > 2 * stable_worst