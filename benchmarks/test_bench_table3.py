"""Table 3 — mean duration of unavailable periods (experiment T3).

Reuses the simulation cells produced by the Table 2 benchmark when it
ran in the same session (both tables come from one simulation, exactly
as in the paper); otherwise runs the study itself.  The timed kernel is
the duration aggregation + rendering.
"""

from repro.experiments.runner import StudyParameters, default_horizon, run_study
from repro.experiments.tables import PAPER_TABLE_3, format_comparison


def test_bench_table3(benchmark, artefact_sink, study_cache):
    params = StudyParameters(
        horizon=default_horizon(20_000.0), warmup=360.0, batches=20,
        seed=1988,
    )
    if not study_cache:
        study_cache.update(run_study(params))

    def render():
        return format_comparison(
            study_cache, PAPER_TABLE_3,
            "Table 3: Mean Duration of Unavailable Periods, days "
            f"(paper vs ours, {params.horizon:.0f} simulated days)",
            use_durations=True,
        )

    text = benchmark.pedantic(render, rounds=1, iterations=1)

    # Beyond the paper: tail durations (p95), since means hide the
    # difference between many reboots and one week-long repair.
    from repro.experiments.report import ascii_table

    config_keys = sorted({key for key, _ in study_cache})
    policies = ("MCV", "DV", "LDV", "ODV", "TDV", "OTDV")
    rows = []
    for key in config_keys:
        row = [study_cache[(key, policies[0])].configuration.label]
        for policy in policies:
            cell = study_cache[(key, policy)]
            if cell.result.down_periods == 0:
                row.append("-")
            else:
                row.append(f"{cell.result.down_duration_quantile(0.95):.4f}")
        rows.append(row)
    tail_table = ascii_table(["config", *policies], rows)
    artefact_sink(
        "table3_mean_down_durations",
        text + "\n\np95 outage durations, days (ours; not in the paper):\n"
        + tail_table,
    )

    # Configuration D's outages are days long for every policy.
    for policy in policies:
        assert study_cache[("D", policy)].mean_down_duration > 1.0
