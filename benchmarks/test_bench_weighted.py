"""Weight-assignment ablation (experiment X4) — the paper's other future
work item: "...and to analyze weight assignments."

Static voting on configuration H (two pairs split by gateway 5).  A
plain 1-1-1-1 assignment loses the file whenever the gateway splits the
pairs; weighting the reliable main-segment pair keeps the majority on
one side of the partition point.
"""

import functools

from repro.core.weighted import WeightedMajorityVoting
from repro.experiments.evaluator import evaluate_policy, poisson_times
from repro.experiments.report import ascii_table
from repro.experiments.runner import StudyParameters, default_horizon
from repro.experiments.testbed import testbed_topology
from repro.failures.profiles import testbed_profiles
from repro.failures.trace import generate_trace

COPIES = frozenset({1, 2, 7, 8})  # configuration H

ASSIGNMENTS = {
    "1-1-1-1 (plain, no tie-break)": {1: 1, 2: 1, 7: 1, 8: 1},
    "2-1-1-1 (favour csvax)": {1: 2, 2: 1, 7: 1, 8: 1},
    "2-2-1-1 (favour alpha pair)": {1: 2, 2: 2, 7: 1, 8: 1},
    "1-1-2-2 (favour gamma pair)": {1: 1, 2: 1, 7: 2, 8: 2},
    "3-1-1-1 (csvax dictator-ish)": {1: 3, 2: 1, 7: 1, 8: 1},
}


def test_bench_weight_assignments(benchmark, artefact_sink):
    params = StudyParameters(
        horizon=default_horizon(15_000.0), warmup=360.0, batches=5,
        seed=1988,
    )
    topology = testbed_topology()
    trace = generate_trace(testbed_profiles(), params.horizon, params.seed)
    access = poisson_times(1.0, trace.horizon, params.seed)

    def run():
        results = {}
        for label, weights in ASSIGNMENTS.items():
            factory = functools.partial(
                WeightedMajorityVoting, weights=weights
            )
            results[label] = evaluate_policy(
                factory, topology, COPIES, trace,
                warmup=params.warmup, batches=params.batches,
                access_times=access,
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [label, r.unavailability, r.mean_down_duration]
        for label, r in results.items()
    ]
    artefact_sink(
        "x4_weight_assignments",
        "Weight assignments, configuration H (copies 1, 2 | 7, 8 split "
        "by gateway 5)\n"
        + ascii_table(["assignment", "unavailability", "mean down (d)"],
                      rows),
    )

    plain = results["1-1-1-1 (plain, no tie-break)"].unavailability
    alpha = results["2-2-1-1 (favour alpha pair)"].unavailability
    gamma = results["1-1-2-2 (favour gamma pair)"].unavailability
    # Weighting the reliable pair on the main segment beats both the
    # unweighted split and weighting the gateway-shadowed pair.
    assert alpha < plain
    assert alpha < gamma
