"""Warm-index listing throughput for the results explorer.

The acceptance bar for ``repro serve``: listing a registry must be a
cache-file read, not a registry walk.  Over a synthetic 1000-run
registry the warm path (``SummaryCache.cards`` + ``query_cards``) may
touch exactly two files — the cache document and a ``stat``/head-read
of ``index.jsonl`` — and must never open a per-run ``record.json``.
The guard proves that the hard way: every ``record.json`` is deleted
after warming, and the listing must not notice.

``REPRO_SERVE_RUNS`` overrides the synthetic registry size (default
1000) for quick local runs.
"""

import json
import os
import random

import pytest

from repro.obs.registry.store import RunRegistry
from repro.obs.serve import SummaryCache, query_cards

RUNS = int(os.environ.get("REPRO_SERVE_RUNS", "1000"))
KINDS = ("study", "chaos", "bench")
POLICIES = ("MCV", "DV", "LDV", "ODV", "TDV", "OTDV")


def _synthetic_registry(root) -> RunRegistry:
    """A registry of ``RUNS`` runs written the way recordings land on
    disk: one run directory with a ``record.json`` each, plus the
    append-only ``index.jsonl``."""
    registry = RunRegistry(root)
    root.mkdir(parents=True, exist_ok=True)
    rng = random.Random(1988)
    with registry.index_path.open("w") as index:
        for i in range(RUNS):
            run_id = f"{i:016x}"
            kind = KINDS[i % len(KINDS)]
            line = {
                "run_id": run_id,
                "kind": kind,
                "command": kind,
                "created_at": f"2026-08-{1 + i % 28:02d}T00:00:00Z",
                "summary": {
                    "configurations": ["A", "B"],
                    "policies": list(POLICIES[: 2 + i % 4]),
                    "cells": 2 + i % 4,
                },
                "lineage": {"seed": rng.randrange(10_000)},
                "artifacts": {},
            }
            run_dir = root / run_id
            run_dir.mkdir()
            (run_dir / "record.json").write_text(json.dumps(line))
            index.write(json.dumps(line, sort_keys=True) + "\n")
    return registry


@pytest.fixture(scope="module")
def registry(tmp_path_factory):
    return _synthetic_registry(tmp_path_factory.mktemp("serve") / "runs")


@pytest.fixture(scope="module")
def warm_cache(registry):
    cache = SummaryCache(registry)
    cache.warm()
    return cache


def test_bench_warm_listing(benchmark, warm_cache):
    """The hot path behind ``repro runs list`` and ``GET /api/runs``:
    a warm cache read plus one filtered/sorted/paginated page."""

    def listing():
        cards = warm_cache.cards()
        return query_cards(
            cards, kind="study", sort="time", descending=True, limit=50
        )

    total, page = benchmark(listing)
    assert total == sum(1 for i in range(RUNS) if i % len(KINDS) == 0)
    assert len(page) == min(50, total)


def test_bench_cold_rebuild(benchmark, registry, tmp_path):
    """Full rebuild from the index — the once-per-``gc`` worst case.
    Each round gets a cacheless view of the same index."""

    def rebuild():
        cache = SummaryCache(registry)
        try:
            cache.path.unlink()
        except OSError:
            pass
        return len(cache.cards())

    count = benchmark(rebuild)
    assert count == RUNS


def test_guard_warm_listing_reads_no_records(registry, warm_cache):
    """Deleting every per-run ``record.json`` after warming must be
    invisible to the listing — the cache hit path does zero per-run
    I/O."""
    assert warm_cache.cards()  # ensure the cache document exists
    for i in range(RUNS):
        (registry.root / f"{i:016x}" / "record.json").unlink()
    cards = warm_cache.cards()
    assert len(cards) == RUNS
    assert cards[0]["run_id"] == f"{0:016x}"
    assert cards[-1]["run_id"] == f"{RUNS - 1:016x}"
