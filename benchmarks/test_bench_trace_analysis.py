"""Streaming trace-analytics throughput and bounded-memory guard.

The acceptance bar for the analysis subsystem: a ~1M-record JSONL
decision trace must stream through the query pipeline in bounded
memory — the pipeline never materialises the trace, so peak heap stays
orders of magnitude below the file size.  The benchmarks time the three
canonical passes (filtered count, one-pass summary, denial audit); the
guard proves the memory claim with ``tracemalloc``.

``REPRO_TRACE_RECORDS`` overrides the synthetic trace size (default
1_000_000) for quick local runs.
"""

import json
import os
import random
import tracemalloc

import pytest

from repro.obs.analysis import RecordStream, audit_trace, summarize

RECORDS = int(os.environ.get("REPRO_TRACE_RECORDS", "1000000"))
POLICIES = ("MCV", "DV", "LDV", "ODV", "TDV", "OTDV")
DENIAL_REASON = "fewer than half of the previous partition set reachable"
DENIAL_RATE = 0.1


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    """A synthetic decision trace of ``RECORDS`` records, written once
    per session (realistic field mix: timed quorum verdicts across the
    six paper policies)."""
    path = tmp_path_factory.mktemp("trace") / "synthetic.jsonl"
    rng = random.Random(1988)
    with open(path, "w", encoding="utf-8") as handle:
        t = 0.0
        for seq in range(RECORDS):
            t += rng.random()
            denied = rng.random() < DENIAL_RATE
            record = {
                "seq": seq,
                "kind": "quorum.denied" if denied else "quorum.granted",
                "time": round(t, 3),
                "policy": POLICIES[seq % len(POLICIES)],
                "site": 1 + seq % 8,
                "reachable": [1, 2, 7],
                "counted": [1] if denied else [1, 2, 7],
                "partition_set": [1, 2, 7, 8],
            }
            if denied:
                record["reason"] = DENIAL_REASON
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")
    return path


def test_bench_streaming_filtered_count(benchmark, trace_path):
    """Throughput of the hot query shape: filter by kind and policy,
    count — one streaming pass over the full trace."""
    stream = RecordStream.from_jsonl(trace_path)
    denied = benchmark(
        lambda: stream.of_kind("quorum.denied").where(policy="LDV").count()
    )
    assert 0 < denied < RECORDS
    benchmark.extra_info["records"] = RECORDS


def test_bench_one_pass_summary(benchmark, trace_path):
    """Throughput of ``repro analyze summary``'s single aggregation
    pass."""
    stream = RecordStream.from_jsonl(trace_path)
    summary = benchmark(lambda: summarize(stream))
    assert summary.total == RECORDS
    assert set(summary.by_policy) == set(POLICIES)
    benchmark.extra_info["records"] = RECORDS


def test_bench_denial_audit(benchmark, trace_path):
    """Throughput of the ``repro analyze audit`` pass: every denial
    classified and explained, streaming."""
    stream = RecordStream.from_jsonl(trace_path)

    def run():
        by_rule: dict[str, int] = {}
        for explanation in audit_trace(stream):
            by_rule[explanation.rule] = by_rule.get(explanation.rule, 0) + 1
        return by_rule

    by_rule = benchmark(run)
    assert set(by_rule) == {"no-majority"}
    benchmark.extra_info["records"] = RECORDS


def test_streaming_query_memory_is_bounded(trace_path, artefact_sink):
    """The acceptance guard: a full filtered-group pass over the trace
    must peak far below the file size (materialising ~RECORDS dicts
    would cost roughly 10x the file)."""
    stream = RecordStream.from_jsonl(trace_path)
    file_size = trace_path.stat().st_size
    tracemalloc.start()
    try:
        counts = stream.of_kind("quorum.").group_count("policy", "kind")
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert sum(counts.values()) == RECORDS
    assert peak < 48_000_000, (
        f"streaming pass peaked at {peak / 1e6:.1f} MB"
    )
    if RECORDS >= 200_000:
        assert peak * 4 < file_size, (
            f"peak {peak / 1e6:.1f} MB is not clearly below the "
            f"{file_size / 1e6:.1f} MB trace — is the stream materialising?"
        )
    artefact_sink(
        "trace_analysis_memory",
        f"streaming group_count over {RECORDS} records "
        f"({file_size / 1e6:.1f} MB trace): peak heap {peak / 1e6:.2f} MB",
    )
