"""Correlated-outage stress test (experiment X8).

The paper's configuration-E result ("continuously available for more
than three hundred years") is conditioned on "no catastrophic failure".
This benchmark injects machine-room power outages that take a whole
segment down at once — breaking the independence assumption behind
topological vote-claiming's biggest wins — and measures how much of each
policy's availability survives.
"""

from repro.core.registry import PAPER_POLICIES
from repro.experiments.configs import CONFIGURATIONS
from repro.experiments.evaluator import evaluate_policy, poisson_times
from repro.experiments.report import ascii_table
from repro.experiments.runner import StudyParameters, default_horizon
from repro.experiments.testbed import SEGMENTS, testbed_topology
from repro.failures.profiles import testbed_profiles
from repro.failures.trace import OutageModel, generate_trace
from repro.stats.distributions import ShiftedExponential

CONFIG_KEYS = ("A", "E", "B")


def test_bench_correlated_outages(benchmark, artefact_sink):
    params = StudyParameters(
        horizon=default_horizon(15_000.0), warmup=360.0, batches=5,
        seed=1988,
    )
    topology = testbed_topology()
    # Each machine room loses power about twice a year for 2-10 hours.
    outages = [
        OutageModel(
            f"power-{name}",
            frozenset(members),
            mean_interval_days=180.0,
            duration=ShiftedExponential(2.0 / 24.0, 4.0 / 24.0),
        )
        for name, members in SEGMENTS.items()
    ]
    baseline = generate_trace(testbed_profiles(), params.horizon, params.seed)
    stressed = generate_trace(
        testbed_profiles(), params.horizon, params.seed, outages=outages
    )
    access = poisson_times(1.0, params.horizon, params.seed)

    def run():
        cells = {}
        for label, trace in (("indep", baseline), ("outages", stressed)):
            for key in CONFIG_KEYS:
                copies = CONFIGURATIONS[key].copy_sites
                for policy in PAPER_POLICIES:
                    cells[(label, key, policy)] = evaluate_policy(
                        policy, topology, copies, trace,
                        warmup=params.warmup, batches=params.batches,
                        access_times=access,
                    )
        return cells

    cells = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for key in CONFIG_KEYS:
        for label in ("indep", "outages"):
            rows.append([
                f"{CONFIGURATIONS[key].label} ({label})",
                *(cells[(label, key, p)].unavailability
                  for p in PAPER_POLICIES),
            ])
    artefact_sink(
        "x8_correlated_outages",
        "Segment power outages (~2/year, hours-long) vs the independent-"
        "failure model\n"
        + ascii_table(["config", *PAPER_POLICIES], rows),
    )

    # NOTE: per-policy unavailability is not monotone in added outages —
    # forcing a group down resamples subsequent failure draws and, for
    # history-dependent protocols like DV, simultaneous crash-and-restart
    # can avoid the staggered-failure tie states that hurt it most.  The
    # robust claims are about the topological protocols:
    #
    # Configuration E's "never down" miracle does not survive whole-
    # segment power loss...
    assert cells[("outages", "E", "TDV")].unavailability > 0.0
    assert cells[("outages", "E", "OTDV")].unavailability > 0.0
    # ...their floor is roughly the outage duty cycle itself...
    duty = 0.25 / 180.0  # ~6h per 180 days
    assert cells[("outages", "E", "TDV")].unavailability < 5 * duty
    # ...and they still lead where copies share a segment, because
    # single-site failures remain the common case.
    assert (
        cells[("outages", "A", "TDV")].unavailability
        <= cells[("outages", "A", "LDV")].unavailability
    )
