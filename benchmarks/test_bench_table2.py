"""Table 2 — replicated file unavailabilities (DESIGN.md experiment T2).

Times the full availability study (one shared failure trace, eight
configurations, six policies) and prints the regenerated table next to
the published one.  Absolute values differ (different random streams,
shorter default horizon); the shape assertions live in
``tests/integration/test_shape.py``.
"""

from repro.experiments.runner import StudyParameters, default_horizon, run_study
from repro.experiments.tables import PAPER_TABLE_2, format_comparison


def test_bench_table2(benchmark, artefact_sink, study_cache):
    params = StudyParameters(
        horizon=default_horizon(20_000.0), warmup=360.0, batches=20,
        seed=1988,
    )

    def run():
        return run_study(params)

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    study_cache.update(cells)
    artefact_sink(
        "table2_unavailability",
        format_comparison(
            cells, PAPER_TABLE_2,
            "Table 2: Replicated File Unavailabilities (paper vs ours, "
            f"{params.horizon:.0f} simulated days, seed {params.seed})",
        ),
    )
    # Sanity anchors for the headline shape (loose; details in tests/).
    assert cells[("F", "DV")].unavailability > 0.05
    assert cells[("E", "TDV")].unavailability == 0.0
