"""Disabled-tracer overhead guard.

The ISSUE's acceptance bar for the observability hooks: with no tracer
attached, the instrumented simulator must stay within 5% of its
un-instrumented throughput.  There is no un-instrumented build to
compare against, so the guard measures what the hooks actually cost —
the ``tracer is not None`` check — by comparing the detached path
against the same workload with a null-sink tracer attached (which pays
the check *plus* a full record() call per event).  If the detached path
is not clearly cheaper than even that, the zero-cost claim is broken.

A second check bounds the *enabled* path on the study workload: a full
``run_cell`` with a collecting metrics registry is opt-in and may cost
something, but must stay within 2x of the bare cell and change no
results.
"""

import time

import pytest

from repro.experiments.configs import CONFIGURATIONS
from repro.experiments.runner import StudyParameters, run_cell
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NullSink, Tracer
from repro.sim.kernel import Simulation

EVENTS = 20_000


def _kernel_workload(tracer):
    sim = Simulation(tracer=tracer)
    count = 0

    def tick():
        nonlocal count
        count += 1
        if count < EVENTS:
            sim.schedule(1.0, tick)

    sim.schedule(0.0, tick)
    sim.run()
    return count


def _best_of(func, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_kernel_detached_tracer(benchmark):
    """Throughput of the instrumented kernel with no tracer attached."""
    assert benchmark(lambda: _kernel_workload(None)) == EVENTS


def test_detached_path_beats_null_sink():
    """The detached check must cost less than an attached null tracer:
    that difference *is* the record() call the guard avoids."""
    null_tracer = Tracer(NullSink())
    for _ in range(3):  # retries absorb scheduler noise
        detached = _best_of(lambda: _kernel_workload(None))
        attached = _best_of(lambda: _kernel_workload(null_tracer))
        if detached <= attached * 1.05:
            return
    pytest.fail(
        f"detached tracer path ({detached:.4f}s) is slower than an "
        f"attached null tracer ({attached:.4f}s) by more than 5%"
    )


def test_study_cell_metrics_enabled_overhead_is_bounded():
    """The *enabled* path is allowed to cost something (it is opt-in),
    but a metered study cell must not blow past 2x the bare cell, and
    must produce bit-identical results."""
    params = StudyParameters(horizon=4000.0, warmup=360.0, batches=4,
                             seed=11)
    config = CONFIGURATIONS["B"]

    def bare():
        return run_cell(config, "LDV", params)

    def metered():
        return run_cell(config, "LDV", params, metrics=MetricsRegistry())

    assert bare().unavailability == metered().unavailability
    for _ in range(3):
        bare_time = _best_of(bare, repeats=3)
        metered_time = _best_of(metered, repeats=3)
        if metered_time <= bare_time * 2.0:
            return
    pytest.fail(
        f"metrics collection more than doubles a study cell: "
        f"{metered_time:.4f}s vs {bare_time:.4f}s"
    )
