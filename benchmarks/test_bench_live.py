"""Live-telemetry overhead guards.

The tentpole's zero-cost claim: a :class:`TelemetryBus` with no
subscriber must make ``publish()`` a constant-time early return —
cheap enough to sit on the study hot path unconditionally.  The guard
compares a million idle publishes against the same million delivered
to a no-op subscriber; the idle path must be clearly cheaper.  A
second benchmark times Prometheus exposition over a realistically
sized registry, and a third times the full bus -> sink -> tail loop.
"""

import time

import pytest

from repro.obs.live.bus import TelemetryBus
from repro.obs.live.export import render_prometheus
from repro.obs.live.stream import LiveStreamSink, LiveTail
from repro.obs.metrics import MetricsRegistry

IDLE_PUBLISHES = 200_000


def _publish_n(bus, n):
    publish = bus.publish
    for i in range(n):
        publish("study.cell", cells_done=i)


def _best_of(func, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_bus_publish_no_subscriber(benchmark):
    """Throughput of the idle fast path (events silently dropped)."""
    bus = TelemetryBus()
    benchmark(lambda: _publish_n(bus, IDLE_PUBLISHES))
    assert bus.dropped >= IDLE_PUBLISHES


def test_idle_publish_beats_delivery():
    """The no-subscriber early return must be clearly cheaper than
    delivering to even a no-op subscriber — otherwise the 'zero cost
    when disabled' contract is broken and the hooks cannot stay
    unconditional on the study hot path."""
    idle = TelemetryBus()
    busy = TelemetryBus()
    busy.subscribe(lambda event: None, name="noop")
    idle_cost = _best_of(lambda: _publish_n(idle, IDLE_PUBLISHES))
    busy_cost = _best_of(lambda: _publish_n(busy, IDLE_PUBLISHES))
    assert idle_cost < busy_cost, (
        f"idle publish ({idle_cost:.4f}s) is not cheaper than "
        f"delivered publish ({busy_cost:.4f}s)"
    )


def test_bench_prometheus_render(benchmark):
    """Exposition over a registry the size of a busy serve process."""
    registry = MetricsRegistry()
    for route in ("index", "run", "diff", "api.runs", "api.run.live"):
        for status in ("2xx", "4xx"):
            registry.counter("serve.requests", route=route,
                             status=status).inc(1000)
            histogram = registry.histogram("serve.latency.seconds",
                                           route=route, status=status)
            for i in range(256):
                histogram.observe(i / 1000.0)
    registry.gauge("live.proc.rss_bytes").set(1 << 26)
    text = benchmark(lambda: render_prometheus(registry))
    assert "# TYPE serve_requests_total counter" in text


def test_bench_stream_round_trip(benchmark, tmp_path):
    """bus -> jsonl sink -> tail poll, 1000 events per round."""
    path = tmp_path / "live.jsonl"
    bus = TelemetryBus()
    sink = LiveStreamSink(path)
    bus.subscribe(sink, name="sink")
    tail = LiveTail(path)

    def round_trip():
        for i in range(1000):
            bus.publish("study.cell", cells_done=i, total_cells=1000)
        return len(tail.poll())

    result = benchmark(round_trip)
    assert result == 1000
    tail.close()
    sink.close()
