"""File-level reliability (mean time between outages).

The paper's introduction promises both "availability and reliability";
Tables 2 and 3 give the availability side (fraction of time down, how
long each outage lasts).  This benchmark derives the reliability
companion — how *often* the file becomes unavailable — from the same
simulation cells, including the paper's configuration-E claim that a
four-copy single-segment file under TDV "could remain continuously
available for more than three hundred years".
"""

from repro.experiments.runner import StudyParameters, default_horizon, run_study
from repro.experiments.tables import format_mtbf


def test_bench_reliability(benchmark, artefact_sink, study_cache):
    params = StudyParameters(
        horizon=default_horizon(20_000.0), warmup=360.0, batches=20,
        seed=1988,
    )
    if not study_cache:
        study_cache.update(run_study(params))

    def render():
        return format_mtbf(study_cache)

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    artefact_sink("reliability_mtbf", text)

    # Configuration E under TDV/OTDV never went down at all (the paper's
    # 300-years claim at our horizon), and the dynamic protocols go down
    # far less often than MCV on the worst configuration.
    assert study_cache[("E", "TDV")].result.down_periods == 0
    mcv_d = study_cache[("D", "MCV")].result.mean_time_between_outages
    tdv_d = study_cache[("D", "TDV")].result.mean_time_between_outages
    assert tdv_d > mcv_d
