"""Vote-reassignment comparison (experiment X6).

The paper's introduction groups dynamic vote *reassignment* [BGS86] with
dynamic voting as the adaptive alternatives to MCV.  This benchmark
races both reassignment policies against the paper's protocols on the
testbed, answering the natural question the paper leaves open: does
moving weights do as well as shrinking quorums?
"""

import functools

from repro.core.reassignment import ReassignmentPolicy, VoteReassignmentVoting
from repro.experiments.configs import CONFIGURATIONS
from repro.experiments.evaluator import evaluate_policy, poisson_times
from repro.experiments.report import ascii_table
from repro.experiments.runner import StudyParameters, default_horizon
from repro.experiments.testbed import testbed_topology
from repro.failures.profiles import testbed_profiles
from repro.failures.trace import generate_trace

CONFIG_KEYS = ("A", "D", "F", "H")
POLICIES = {
    "MCV": "MCV",
    "DV": "DV",
    "LDV": "LDV",
    "DVR-alliance": functools.partial(
        VoteReassignmentVoting, policy=ReassignmentPolicy.ALLIANCE
    ),
    "DVR-overthrow": functools.partial(
        VoteReassignmentVoting, policy=ReassignmentPolicy.OVERTHROW
    ),
}


def test_bench_vote_reassignment(benchmark, artefact_sink):
    params = StudyParameters(
        horizon=default_horizon(15_000.0), warmup=360.0, batches=5,
        seed=1988,
    )
    topology = testbed_topology()
    trace = generate_trace(testbed_profiles(), params.horizon, params.seed)
    access = poisson_times(1.0, trace.horizon, params.seed)

    def run():
        cells = {}
        for key in CONFIG_KEYS:
            copies = CONFIGURATIONS[key].copy_sites
            for label, spec in POLICIES.items():
                cells[(key, label)] = evaluate_policy(
                    spec, topology, copies, trace,
                    warmup=params.warmup, batches=params.batches,
                    access_times=access,
                )
        return cells

    cells = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for key in CONFIG_KEYS:
        rows.append([
            CONFIGURATIONS[key].label,
            *(cells[(key, label)].unavailability for label in POLICIES),
        ])
    artefact_sink(
        "x6_vote_reassignment",
        "Dynamic vote reassignment vs dynamic voting (unavailability)\n"
        + ascii_table(["config", *POLICIES.keys()], rows)
        + "\nNeither adaptive family dominates: reassignment wins where "
        "ties strand\nmembership-based voting behind a slow gateway "
        "(config F), while LDV wins\nwhere the lexicographic side of a "
        "clean split carries on (config H).",
    )

    for key in CONFIG_KEYS:
        dvr = cells[(key, "DVR-alliance")].unavailability
        mcv = cells[(key, "MCV")].unavailability
        dv = cells[(key, "DV")].unavailability
        # Adaptive weights never lose meaningfully to the static quorum,
        # and always beat tie-prone plain DV.
        assert dvr <= max(1.2 * mcv, 1e-4), (key, dvr, mcv)
        assert dvr <= max(dv, 1e-4), (key, dvr, dv)
