"""Analytic vs simulated availability (the PaBu86-style analysis).

The paper cites Pâris & Burkhard's Markov-chain result for "DV performed
worse than MCV for three copies".  This benchmark rebuilds those chains
for identical sites on one segment, races them against the discrete-
event simulator, and prints the agreement — two independent derivations
of every protocol's availability, landing on the same numbers.
"""

from repro.analysis.dynamic_chain import (
    dv_availability,
    ldv_availability,
    mcv_availability,
)
from repro.experiments.evaluator import evaluate_policy
from repro.experiments.report import ascii_table
from repro.experiments.runner import StudyParameters, default_horizon
from repro.failures.models import SiteProfile
from repro.failures.trace import generate_trace
from repro.net.topology import single_segment

MTTF, MTTR = 30.0, 2.0


def _profiles(n):
    return [
        SiteProfile(
            site_id=i, name=f"s{i}", mttf_days=MTTF,
            hardware_fraction=1.0, restart_minutes=0.0,
            repair_constant_hours=0.0,
            repair_exponential_hours=MTTR * 24.0,
        )
        for i in range(1, n + 1)
    ]


def test_bench_analytic_vs_simulated(benchmark, artefact_sink):
    horizon = default_horizon(60_000.0)

    def run():
        rows = []
        for n in (2, 3, 4, 5):
            trace = generate_trace(_profiles(n), horizon, seed=606)
            topo = single_segment(n)
            copies = frozenset(range(1, n + 1))

            def sim(policy):
                return evaluate_policy(
                    policy, topo, copies, trace, warmup=0.0, batches=1
                ).availability

            rows.append([
                n,
                mcv_availability(n, MTTF, MTTR), sim("MCV"),
                dv_availability(n, MTTF, MTTR), sim("DV"),
                ldv_availability(n, MTTF, MTTR), sim("LDV"),
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    artefact_sink(
        "analytic_vs_simulated",
        "Identical sites (MTTF 30 d, MTTR 2 d), one segment: Markov "
        "chains vs simulator\n"
        + ascii_table(
            ["copies", "MCV chain", "MCV sim", "DV chain", "DV sim",
             "LDV chain", "LDV sim"],
            rows,
        )
        + "\nAt three copies the chains reproduce the paper's cited "
        "PaBu86 ordering:\nDV < MCV < LDV; from four copies up DV overtakes "
        "the static quorum.",
    )

    for row in rows:
        n, mcv_c, mcv_s, dv_c, dv_s, ldv_c, ldv_s = row
        assert abs(mcv_c - mcv_s) < 0.01, n
        assert abs(dv_c - dv_s) < 0.01, n
        assert abs(ldv_c - ldv_s) < 0.01, n
    three = rows[1]
    assert three[3] < three[1] < three[5]   # DV < MCV < LDV at n = 3
