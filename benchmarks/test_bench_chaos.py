"""Chaos-harness throughput: seeded schedules per second with the
invariant monitor interposed on every trace record.  Guards the fuzzing
loop's cost — a sweep is only useful while hundreds of schedules stay
in CI-smoke territory."""

from repro.chaos import build_schedule, run_schedule, run_sweep
from repro.experiments.configs import configuration
from repro.experiments.testbed import testbed_topology

TOPOLOGY = testbed_topology()
COPIES = configuration("H").copy_sites


def test_bench_chaos_schedule_build(benchmark):
    """Deterministic schedule generation for 100 seeds."""

    def run():
        return sum(
            len(build_schedule(seed, COPIES, TOPOLOGY.site_ids,
                               config="H").steps)
            for seed in range(100)
        )

    assert benchmark(run) > 100 * 60


def test_bench_chaos_run_with_monitor(benchmark):
    """One 60-step schedule against LDV, monitor always on."""
    schedule = build_schedule(5, COPIES, TOPOLOGY.site_ids, config="H")

    def run():
        result = run_schedule(schedule, "LDV", topology=TOPOLOGY)
        assert result.ok
        return result.operations

    assert benchmark(run) == 60


def test_bench_chaos_sweep_quick(benchmark, artefact_sink):
    """The CI smoke workload: 2 seeds across all six protocols."""

    def run():
        return run_sweep(seeds=range(2), config="H", steps=40,
                         topology=TOPOLOGY)

    report = benchmark(run)
    assert report.ok
    lines = [
        f"{row.policy:>6}: {row.runs} runs, {row.operations} ops, "
        f"{row.faults_injected} faults, {len(row.violations)} violations"
        for row in report.rows
    ]
    artefact_sink(
        "chaos_sweep",
        "Chaos sweep (2 seeds x 6 policies, 40 steps, config H)\n"
        + "\n".join(lines),
    )
