"""Witness-copy ablation (experiment X3) — the paper's flagged future
work: "More studies are still needed to investigate the inclusion of
witness copies."

Compares, on the same failure trace:

* two full copies under LDV (ties strand the non-maximum survivor);
* two full copies plus one state-only witness;
* three full copies (the storage-expensive upper bound).
"""

import functools

from repro.core.witnesses import DynamicVotingWithWitnesses
from repro.experiments.evaluator import evaluate_policy, poisson_times
from repro.experiments.report import ascii_table
from repro.experiments.runner import StudyParameters, default_horizon
from repro.experiments.testbed import testbed_topology
from repro.failures.profiles import testbed_profiles
from repro.failures.trace import generate_trace

FULL_PAIR = frozenset({1, 2})
WITNESS_SITE = 3
TRIO = frozenset({1, 2, 3})


def test_bench_witnesses(benchmark, artefact_sink):
    params = StudyParameters(
        horizon=default_horizon(15_000.0), warmup=360.0, batches=5,
        seed=1988,
    )
    topology = testbed_topology()
    trace = generate_trace(testbed_profiles(), params.horizon, params.seed)
    access = poisson_times(1.0, trace.horizon, params.seed)

    witness_factory = functools.partial(
        DynamicVotingWithWitnesses, witness_sites={WITNESS_SITE}
    )

    def run():
        two = evaluate_policy("LDV", topology, FULL_PAIR, trace,
                              warmup=params.warmup, batches=params.batches,
                              access_times=access)
        witnessed = evaluate_policy(witness_factory, topology, TRIO, trace,
                                    warmup=params.warmup,
                                    batches=params.batches,
                                    access_times=access)
        three = evaluate_policy("LDV", topology, TRIO, trace,
                                warmup=params.warmup,
                                batches=params.batches,
                                access_times=access)
        return two, witnessed, three

    two, witnessed, three = benchmark.pedantic(run, rounds=1, iterations=1)

    artefact_sink(
        "x3_witnesses",
        "Witness ablation, copies on sites 1 and 2 (grendel 3 as witness)\n"
        + ascii_table(
            ["variant", "unavailability", "mean down (d)"],
            [
                ["2 copies (LDV)", two.unavailability,
                 two.mean_down_duration],
                ["2 copies + witness", witnessed.unavailability,
                 witnessed.mean_down_duration],
                ["3 copies (LDV)", three.unavailability,
                 three.mean_down_duration],
            ],
        )
        + "\nA witness stores only (o, v, P) — no data — yet recovers "
        "most of the\navailability gap between two and three full copies.",
    )

    # The witness must help over a bare pair and cannot beat a real copy.
    assert witnessed.unavailability <= two.unavailability
    assert witnessed.unavailability >= three.unavailability * 0.5


def test_bench_witness_placement(benchmark, artefact_sink):
    """Where should the witness live?  Every candidate site, ranked."""
    from repro.experiments.witness_sweep import witness_placement_sweep

    params = StudyParameters(
        horizon=default_horizon(10_000.0), warmup=360.0, batches=4,
        seed=1988,
    )

    def run():
        return witness_placement_sweep(FULL_PAIR, params=params)

    placements, bare, best_triple = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    rows = [
        [f"site {p.witness_site} ({p.segment})", p.unavailability]
        for p in placements
    ]
    artefact_sink(
        "x3_witness_placement",
        f"Witness placement for full copies {sorted(FULL_PAIR)} "
        f"(bare pair: {bare:.6f}; best full triple: {best_triple:.6f})\n"
        + ascii_table(["witness location", "unavailability"], rows),
    )
    # Any witness beats the bare pair; a reliable main-segment witness
    # beats one stranded behind a gateway.
    assert placements[0].unavailability <= bare
    by_site = {p.witness_site: p.unavailability for p in placements}
    assert by_site[3] <= by_site[6]  # grendel (alpha) vs gremlin (beta)
