"""Seed robustness (experiment X10): the findings are not one lucky RNG.

Every headline ordering of Table 2 must hold for several independent
random seeds at a moderate horizon.  Absolute cell values move (that is
the point of confidence intervals); the policy ranking must not.
"""

from repro.experiments.configs import CONFIGURATIONS
from repro.experiments.report import ascii_table
from repro.experiments.runner import StudyParameters, default_horizon, run_study

SEEDS = (7, 1988, 20_26)
KEYS = ("A", "D", "F")


def test_bench_seed_robustness(benchmark, artefact_sink):
    horizon = default_horizon(15_000.0)

    def run():
        studies = {}
        for seed in SEEDS:
            params = StudyParameters(horizon=horizon, warmup=360.0,
                                     batches=5, seed=seed)
            studies[seed] = run_study(
                params,
                configurations=[CONFIGURATIONS[k] for k in KEYS],
            )
        return studies

    studies = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for seed in SEEDS:
        for key in KEYS:
            rows.append([
                f"seed {seed} / {key}",
                *(studies[seed][(key, p)].unavailability
                  for p in ("MCV", "DV", "LDV", "ODV", "TDV", "OTDV")),
            ])
    artefact_sink(
        "x10_seed_robustness",
        f"Three seeds, {horizon:.0f} days each — the orderings hold in "
        "every run\n"
        + ascii_table(
            ["run", "MCV", "DV", "LDV", "ODV", "TDV", "OTDV"], rows
        ),
    )

    for seed, cells in studies.items():
        def u(key, policy):
            return cells[(key, policy)].unavailability

        # Three-copy rows: DV is the worst policy.
        for key in KEYS:
            assert u(key, "DV") > u(key, "MCV"), (seed, key)
        # LDV always beats DV; the optimistic twin stays in its band.
        for key in KEYS:
            assert u(key, "LDV") < u(key, "DV"), (seed, key)
            assert u(key, "ODV") <= max(4 * u(key, "LDV"), 5e-4), (seed, key)
        # Topological wins wherever copies share a segment (A, F).
        for key in ("A", "F"):
            assert u(key, "TDV") <= 0.5 * u(key, "LDV"), (seed, key)
        # DV's configuration-F collapse is structural, not seed luck.
        assert u("F", "DV") > 0.05, seed