"""Disabled-profiler overhead guard.

Mirror of ``test_bench_tracer_overhead.py`` for the profiling hooks:
with no :class:`~repro.obs.prof.phases.PhaseProfiler` attached, the
kernel's hot loop pays only the ``profiler is not None`` check.  There
is no un-instrumented build to compare against, so the guard compares
the detached path against the same workload with a profiler attached —
which pays the check *plus* a dict increment per event.  If the
detached path is not clearly cheaper than even that, the
zero-cost-when-disabled claim is broken.

A second check bounds the *enabled* path on the study workload: a
profiled ``run_cell`` is opt-in and may cost something, but must stay
within 2x of the bare cell and change no results.
"""

import time

import pytest

from repro.experiments.configs import CONFIGURATIONS
from repro.experiments.runner import StudyParameters, run_cell
from repro.obs.prof import PhaseProfiler
from repro.sim.kernel import Simulation

EVENTS = 20_000


def _kernel_workload(profiler):
    sim = Simulation(profiler=profiler)
    count = 0

    def tick():
        nonlocal count
        count += 1
        if count < EVENTS:
            sim.schedule(1.0, tick, name="tick")

    sim.schedule(0.0, tick, name="tick")
    sim.run()
    return count


def _best_of(func, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_kernel_detached_profiler(benchmark):
    """Throughput of the instrumented kernel with no profiler attached."""
    assert benchmark(lambda: _kernel_workload(None)) == EVENTS


def test_detached_path_beats_attached_profiler():
    """The detached check must cost less than an attached profiler:
    that difference *is* the per-event counting the guard avoids."""
    profiler = PhaseProfiler()
    for _ in range(3):  # retries absorb scheduler noise
        detached = _best_of(lambda: _kernel_workload(None))
        attached = _best_of(lambda: _kernel_workload(profiler))
        if detached <= attached * 1.05:
            return
    pytest.fail(
        f"detached profiler path ({detached:.4f}s) is slower than an "
        f"attached profiler ({attached:.4f}s) by more than 5%"
    )


def test_study_cell_profiled_overhead_is_bounded():
    """The *enabled* path is allowed to cost something (it is opt-in),
    but a profiled study cell must not blow past 2x the bare cell, and
    must produce bit-identical results."""
    params = StudyParameters(horizon=4000.0, warmup=360.0, batches=4,
                             seed=11)
    config = CONFIGURATIONS["B"]

    def bare():
        return run_cell(config, "LDV", params)

    def profiled():
        return run_cell(config, "LDV", params, profiler=PhaseProfiler())

    assert bare().result == profiled().result
    for _ in range(3):
        bare_time = _best_of(bare, repeats=3)
        profiled_time = _best_of(profiled, repeats=3)
        if profiled_time <= bare_time * 2.0:
            return
    pytest.fail(
        f"phase profiling more than doubles a study cell: "
        f"{profiled_time:.4f}s vs {bare_time:.4f}s"
    )
