"""Message-overhead benchmark (experiment X2): the efficiency claim.

"Optimistic Dynamic Voting and Optimistic Topological Dynamic Voting
require much less message traffic than their non-optimistic counterparts
while achieving comparable, and in some case better, data availabilities."

Replays one shared failure history through the message-level engine for
each policy, with one access per day, and reports the message bill.
"""

from repro.core.registry import PAPER_POLICIES
from repro.experiments.evaluator import poisson_times
from repro.experiments.overhead import measure_overhead
from repro.experiments.report import ascii_table
from repro.experiments.testbed import testbed_topology
from repro.failures.profiles import testbed_profiles
from repro.failures.trace import generate_trace

COPIES = frozenset({1, 2, 4, 6})  # configuration F
DAYS = 730.0


def test_bench_message_overhead(benchmark, artefact_sink):
    topology = testbed_topology()
    trace = generate_trace(testbed_profiles(), DAYS, seed=1988)
    access_times = poisson_times(1.0, DAYS, seed=1988)

    def run():
        return {
            policy: measure_overhead(policy, topology, COPIES, trace,
                                     access_times)
            for policy in PAPER_POLICIES
        }

    bills = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [policy, r.counters.state_requests, r.counters.state_replies,
         r.counters.commits, r.counters.data_transfers,
         r.counters.total_messages, round(r.messages_per_day, 2),
         r.accesses_denied]
        for policy, r in bills.items()
    ]
    artefact_sink(
        "x2_message_overhead",
        "Message overhead, configuration F, two simulated years, "
        "one access/day\n"
        + ascii_table(
            ["policy", "requests", "replies", "commits", "data", "total",
             "msgs/day", "denied"],
            rows,
        ),
    )

    # The claims: ODV costs strictly less than every eager dynamic
    # protocol and polls about as rarely as MCV.
    assert bills["ODV"].counters.total_messages < bills["LDV"].counters.total_messages
    assert bills["OTDV"].counters.total_messages < bills["TDV"].counters.total_messages
    assert (
        abs(bills["ODV"].counters.state_requests
            - bills["MCV"].counters.state_requests)
        <= 0.02 * bills["MCV"].counters.state_requests
    )
