"""Microbenchmarks of the substrates (true timing benchmarks with
statistics, unlike the table-level pedantic runs): event kernel, the
partition oracle, quorum evaluation and trace generation.  These guard
against performance regressions that would make the paper-scale study
impractical."""

import random

from repro.core.registry import make_protocol
from repro.experiments.testbed import testbed_topology
from repro.failures.profiles import testbed_profiles
from repro.failures.trace import generate_trace
from repro.net.topology import single_segment
from repro.replica.state import ReplicaSet
from repro.sim.kernel import Simulation


def test_bench_kernel_event_throughput(benchmark):
    """Schedule-and-run 10k self-rescheduling events."""

    def run():
        sim = Simulation()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count

    assert benchmark(run) == 10_000


def test_bench_partition_oracle(benchmark):
    """Block computation over 1000 random up-sets of the testbed."""
    topology = testbed_topology()
    rng = random.Random(3)
    ups = [
        frozenset(s for s in range(1, 9) if rng.random() < 0.8)
        for _ in range(1000)
    ]

    def run():
        total = 0
        for up in ups:
            total += len(topology.blocks(up))
        return total

    assert benchmark(run) > 0


def test_bench_quorum_evaluation(benchmark):
    """The availability probe on the hot path of the simulator."""
    topology = testbed_topology()
    protocol = make_protocol("OTDV", ReplicaSet({1, 2, 4, 6}))
    rng = random.Random(5)
    views = [
        topology.view(frozenset(s for s in range(1, 9)
                                if rng.random() < 0.8))
        for _ in range(500)
    ]

    def run():
        return sum(1 for view in views if protocol.is_available(view))

    benchmark(run)


def test_bench_synchronize_fixpoint(benchmark):
    """Eager state maintenance across alternating fail/repair views."""
    topology = single_segment(6)
    views = [
        topology.view(frozenset(range(1, 7)) - {k % 6 + 1})
        for k in range(50)
    ]

    def run():
        protocol = make_protocol("LDV", ReplicaSet({1, 2, 3, 4, 5, 6}))
        for view in views:
            protocol.synchronize(view)
        return protocol.replicas.max_operation(protocol.copy_sites)

    assert benchmark(run) > 1


def test_bench_trace_generation(benchmark):
    """A decade of the eight-site testbed's failure history."""

    def run():
        return len(generate_trace(testbed_profiles(), 3650.0, seed=1))

    assert benchmark(run) > 100


def test_bench_evaluator_throughput(benchmark):
    """End-to-end cell evaluation: the unit of work behind every table
    (a decade of trace replayed against one eager policy)."""
    from repro.experiments.evaluator import evaluate_policy

    topology = testbed_topology()
    trace = generate_trace(testbed_profiles(), 3650.0, seed=2)

    def run():
        result = evaluate_policy(
            "LDV", topology, frozenset({1, 2, 4, 6}), trace,
            warmup=360.0, batches=5,
        )
        return result.synchronizations

    assert benchmark(run) > 100
