"""Access-rate ablation (experiment X1): where does ODV sit between MCV
and LDV as the file's access rate varies — and where does it *beat* LDV?

Regenerates the Section 4 narrative around configuration F ("This
phenomenon is the most apparent for configuration F ... This is exactly
what Optimistic Dynamic Voting does when the replicated file is accessed
once a day").
"""

from repro.experiments.configs import CONFIGURATIONS
from repro.experiments.report import ascii_table
from repro.experiments.runner import StudyParameters, default_horizon
from repro.experiments.sweep import access_rate_sweep

RATES = [0.1, 0.5, 1.0, 5.0, 20.0]


def test_bench_access_rate_sweep(benchmark, artefact_sink):
    params = StudyParameters(
        horizon=default_horizon(15_000.0), warmup=360.0, batches=5,
        seed=1988,
    )
    config = CONFIGURATIONS["F"]

    def run():
        points = access_rate_sweep(
            config, RATES, policies=("ODV", "OTDV"), params=params
        )
        reference = access_rate_sweep(
            config, [1.0], policies=("MCV", "LDV", "TDV"), params=params
        )
        return points, {p.policy: p.unavailability for p in reference}

    points, reference = benchmark.pedantic(run, rounds=1, iterations=1)

    odv = {p.accesses_per_day: p.unavailability
           for p in points if p.policy == "ODV"}
    otdv = {p.accesses_per_day: p.unavailability
            for p in points if p.policy == "OTDV"}
    rows = [[f"{rate:g}", odv[rate], otdv[rate]] for rate in RATES]
    table = ascii_table(["accesses/day", "ODV unavail", "OTDV unavail"], rows)
    artefact_sink(
        "x1_access_rate_sweep",
        f"Access-rate sweep, configuration {config.label}\n{table}\n"
        f"eager references: MCV {reference['MCV']:.6f}  "
        f"LDV {reference['LDV']:.6f}  TDV {reference['TDV']:.6f}",
    )

    # The paper's claim at one access per day: ODV <= LDV on config F.
    assert odv[1.0] <= reference["LDV"] * 1.2


def test_bench_access_pattern(benchmark, artefact_sink):
    """Timing, not just rate: the same three accesses per day, Poisson
    versus business-hours-only, on the optimistic policies.  Bursty
    daytime access leaves ODV's state stale all night — the realistic
    worst case for its optimism."""
    from repro.experiments.evaluator import (
        business_hours_times,
        evaluate_policy,
        poisson_times,
    )
    from repro.experiments.testbed import testbed_topology
    from repro.failures.profiles import testbed_profiles
    from repro.failures.trace import generate_trace

    params = StudyParameters(
        horizon=default_horizon(15_000.0), warmup=360.0, batches=5,
        seed=1988,
    )
    topology = testbed_topology()
    trace = generate_trace(testbed_profiles(), params.horizon, params.seed)
    streams = {
        "poisson 3/day": poisson_times(3.0, params.horizon, params.seed),
        "business hours 3/day": business_hours_times(
            3.0, params.horizon, params.seed
        ),
    }
    config = CONFIGURATIONS["B"]

    def run():
        cells = {}
        for label, access in streams.items():
            for policy in ("ODV", "OTDV"):
                cells[(label, policy)] = evaluate_policy(
                    policy, topology, config.copy_sites, trace,
                    warmup=params.warmup, batches=params.batches,
                    access_times=access,
                )
        return cells

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [label, cells[(label, "ODV")].unavailability,
         cells[(label, "OTDV")].unavailability]
        for label in streams
    ]
    artefact_sink(
        "x1_access_pattern",
        f"Access timing at equal daily rate, configuration {config.label}\n"
        + ascii_table(["pattern", "ODV", "OTDV"], rows),
    )
    # Both patterns must stay in the same availability regime — the
    # optimistic protocols tolerate bursty access (no order-of-magnitude
    # blowup from the idle nights).
    for policy in ("ODV", "OTDV"):
        poisson_u = cells[("poisson 3/day", policy)].unavailability
        bursty_u = cells[("business hours 3/day", policy)].unavailability
        assert bursty_u <= max(10 * poisson_u, 1e-3), (policy, bursty_u)
