# Common targets for the dynamic-voting reproduction.

PYTHON ?= python

.PHONY: install test bench bench-record bench-compare tables sweep validate examples clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

# test/bench run against the source tree directly; no install needed.
test:
	PYTHONPATH=src $(PYTHON) -m pytest tests/

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Append the next BENCH_<n>.json trajectory point (quick workloads).
bench-record:
	PYTHONPATH=src $(PYTHON) -m repro bench record --quick

# Gate the latest trajectory point against the committed baseline.
bench-compare:
	PYTHONPATH=src $(PYTHON) -m repro bench compare --baseline BENCH_0.json

# Paper-scale regeneration of Tables 2 and 3 (minutes, not seconds).
tables:
	REPRO_SIM_DAYS=200000 $(PYTHON) -m repro study

sweep:
	$(PYTHON) -m repro sweep --config F

validate:
	$(PYTHON) -m repro validate

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
