# Common targets for the dynamic-voting reproduction.

PYTHON ?= python

.PHONY: install test bench tables sweep validate examples clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Paper-scale regeneration of Tables 2 and 3 (minutes, not seconds).
tables:
	REPRO_SIM_DAYS=200000 $(PYTHON) -m repro study

sweep:
	$(PYTHON) -m repro sweep --config F

validate:
	$(PYTHON) -m repro validate

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
